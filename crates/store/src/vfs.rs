//! The real-filesystem [`Vfs`] backend.
//!
//! This module is the single place in the workspace where storage code
//! touches `std::fs`/`std::io` (aide-lint's determinism pass enforces
//! exactly that scope): everything above it — WAL, segments, recovery,
//! compaction — speaks only the [`Vfs`] trait, so the whole engine runs
//! unchanged over `MemVfs` (equivalence tests) and `FaultVfs` (crash
//! tests).
//!
//! Durability mapping:
//!
//! - [`Vfs::sync`] is `File::sync_all` on the file *plus* `sync_all` on
//!   its parent directory, so a freshly created WAL or segment file's
//!   directory entry is durable too (the classic create-then-fsync-dir
//!   requirement);
//! - [`Vfs::remove`] also syncs the parent directory, so compaction's
//!   oldest-first segment deletions cannot reorder across a crash;
//! - [`Vfs::read_range`] issues a single `read` call and returns
//!   whatever it yields — honest short reads, which callers loop over
//!   via [`aide_util::vfs::read_exact`].

use aide_util::vfs::{Vfs, VfsError, VfsErrorKind, VfsResult};
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A [`Vfs`] rooted at a real directory.
#[derive(Debug)]
pub struct RealVfs {
    root: PathBuf,
}

impl RealVfs {
    /// Creates a backend rooted at `root` (created on first use).
    pub fn new(root: impl AsRef<Path>) -> RealVfs {
        RealVfs {
            root: root.as_ref().to_path_buf(),
        }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> PathBuf {
        let mut full = self.root.clone();
        for part in path.split('/').filter(|p| !p.is_empty()) {
            full.push(part);
        }
        full
    }

    fn io_err(path: &str, e: &std::io::Error) -> VfsError {
        let kind = if e.kind() == std::io::ErrorKind::NotFound {
            VfsErrorKind::NotFound
        } else {
            VfsErrorKind::Io
        };
        VfsError::new(kind, path, e.to_string())
    }

    fn sync_parent(&self, path: &str) -> VfsResult<()> {
        if let Some(parent) = self.resolve(path).parent() {
            // Directory fsync: open the directory itself and sync_all.
            let dir = fs::File::open(parent).map_err(|e| Self::io_err(path, &e))?;
            dir.sync_all().map_err(|e| Self::io_err(path, &e))?;
        }
        Ok(())
    }
}

impl Vfs for RealVfs {
    fn read(&self, path: &str) -> VfsResult<Vec<u8>> {
        fs::read(self.resolve(path)).map_err(|e| Self::io_err(path, &e))
    }

    fn read_range(&self, path: &str, offset: u64, len: usize) -> VfsResult<Vec<u8>> {
        let mut f = fs::File::open(self.resolve(path)).map_err(|e| Self::io_err(path, &e))?;
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| Self::io_err(path, &e))?;
        let mut buf = vec![0u8; len];
        let n = f.read(&mut buf).map_err(|e| Self::io_err(path, &e))?;
        buf.truncate(n);
        Ok(buf)
    }

    fn append(&self, path: &str, data: &[u8]) -> VfsResult<()> {
        let mut f = fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.resolve(path))
            .map_err(|e| Self::io_err(path, &e))?;
        f.write_all(data).map_err(|e| Self::io_err(path, &e))
    }

    fn truncate(&self, path: &str, len: u64) -> VfsResult<()> {
        let f = fs::OpenOptions::new()
            .write(true)
            .open(self.resolve(path))
            .map_err(|e| Self::io_err(path, &e))?;
        f.set_len(len).map_err(|e| Self::io_err(path, &e))
    }

    fn sync(&self, path: &str) -> VfsResult<()> {
        let f = fs::File::open(self.resolve(path)).map_err(|e| Self::io_err(path, &e))?;
        f.sync_all().map_err(|e| Self::io_err(path, &e))?;
        self.sync_parent(path)
    }

    fn remove(&self, path: &str) -> VfsResult<bool> {
        match fs::remove_file(self.resolve(path)) {
            Ok(()) => {
                self.sync_parent(path)?;
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(Self::io_err(path, &e)),
        }
    }

    fn list(&self, dir: &str) -> VfsResult<Vec<String>> {
        let entries = match fs::read_dir(self.resolve(dir)) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Self::io_err(dir, &e)),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Self::io_err(dir, &e))?;
            let is_file = entry
                .file_type()
                .map_err(|e| Self::io_err(dir, &e))?
                .is_file();
            if is_file {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &str) -> VfsResult<()> {
        fs::create_dir_all(self.resolve(dir)).map_err(|e| Self::io_err(dir, &e))
    }

    fn len(&self, path: &str) -> VfsResult<Option<u64>> {
        match fs::metadata(self.resolve(path)) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(Self::io_err(path, &e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aide-store-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn real_vfs_basic_roundtrip() {
        let root = temp_root("basic");
        let v = RealVfs::new(&root);
        v.create_dir_all("shard_00").unwrap();
        assert_eq!(v.len("shard_00/wal").unwrap(), None);
        v.append("shard_00/wal", b"hello ").unwrap();
        v.append("shard_00/wal", b"world").unwrap();
        v.sync("shard_00/wal").unwrap();
        assert_eq!(v.read("shard_00/wal").unwrap(), b"hello world");
        assert_eq!(v.read_range("shard_00/wal", 6, 5).unwrap(), b"world");
        assert_eq!(v.read_range("shard_00/wal", 99, 5).unwrap(), b"");
        v.truncate("shard_00/wal", 5).unwrap();
        assert_eq!(v.read("shard_00/wal").unwrap(), b"hello");
        assert_eq!(v.list("shard_00").unwrap(), vec!["wal"]);
        assert!(v.list("nonexistent").unwrap().is_empty());
        assert!(v.remove("shard_00/wal").unwrap());
        assert!(!v.remove("shard_00/wal").unwrap());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_files_report_not_found() {
        let root = temp_root("missing");
        let v = RealVfs::new(&root);
        v.create_dir_all("").unwrap();
        assert_eq!(
            v.read("nope").unwrap_err().kind,
            aide_util::vfs::VfsErrorKind::NotFound
        );
        assert_eq!(
            v.truncate("nope", 0).unwrap_err().kind,
            aide_util::vfs::VfsErrorKind::NotFound
        );
        let _ = fs::remove_dir_all(&root);
    }
}
