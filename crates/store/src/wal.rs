//! The write-ahead log: a single append-only file with group commit.
//!
//! Every mutation (store or remove) is one [`frame`](crate::frame)
//! appended to the WAL and fsynced *before* the in-memory index reflects
//! it — the classic WAL rule, which is what makes recovery a pure replay.
//!
//! # Group commit
//!
//! An fsync costs the same whether it covers one frame or fifty, so
//! concurrent committers batch: each caller enqueues its frame into a
//! pending buffer and is assigned a sequence number; the first waiter to
//! find no flush in progress becomes the *leader*, takes the whole
//! buffer, appends and fsyncs it in one call each while the lock is
//! released, then wakes everyone whose sequence the batch covered.
//! Callers arriving during a flush simply join the next batch — under
//! write bursts the fsync count grows with batches, not with commits
//! (the `store.wal.batch_frames` histogram records the achieved group
//! sizes).
//!
//! # The commit gate
//!
//! Checkpointing must observe a quiescent WAL: it relocates every
//! WAL-resident record into segment files and then truncates the log, so
//! a commit racing with it could land between the copy and the truncate
//! and be lost. [`Wal::begin_commit`] / [`Wal::pause_commits`] expose a
//! shared/exclusive gate (commits shared, checkpoint exclusive); callers
//! hold their permit across commit *and* index update so a checkpoint
//! never sees an index entry pointing into log space it is about to
//! truncate.

use aide_util::sync::{lockrank, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use aide_util::vfs::{Vfs, VfsError};
use std::sync::Arc;

/// Shared-mode permit: commits may proceed while any of these are alive.
/// Carries the `wal` lock rank (24, between `sched` and `store`): the
/// gate is always acquired before any shard lock, and the debug-build
/// rank checker enforces that.
pub struct CommitPermit<'a> {
    _rank: lockrank::Held,
    _guard: RwLockReadGuard<'a, ()>,
}

/// Exclusive-mode permit: no commit is in flight and none can start.
/// Ranked like [`CommitPermit`].
pub struct Pause<'a> {
    _rank: lockrank::Held,
    _guard: RwLockWriteGuard<'a, ()>,
}

struct WalState {
    /// Logical length: durable bytes plus the pending buffer.
    appended_len: u64,
    /// Frames enqueued but not yet appended+fsynced.
    pending: Vec<u8>,
    pending_frames: u64,
    /// Sequence number assigned to the next enqueued frame.
    next_seq: u64,
    /// Every frame with sequence `< flushed_before` is durable.
    flushed_before: u64,
    /// A leader is currently appending+fsyncing outside the lock.
    flushing: bool,
    /// A flush failed; the log refuses further commits (the storage
    /// engine treats this as fail-stop, which is what the crash harness
    /// simulates anyway).
    broken: Option<VfsError>,
}

/// The write-ahead log over one [`Vfs`] file.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    path: String,
    gate: RwLock<()>,
    state: Mutex<WalState>,
    flushed: Condvar,
}

impl Wal {
    /// Wraps the WAL file at `path`, whose current durable length is
    /// `len` (as established by recovery).
    pub fn new(vfs: Arc<dyn Vfs>, path: String, len: u64) -> Wal {
        Wal {
            vfs,
            path,
            gate: RwLock::new(()),
            state: Mutex::new(WalState {
                appended_len: len,
                pending: Vec::new(),
                pending_frames: 0,
                next_seq: 0,
                flushed_before: 0,
                flushing: false,
                broken: None,
            }),
            flushed: Condvar::new(),
        }
    }

    /// Enters shared commit mode. Hold the permit across
    /// [`commit`](Wal::commit) *and* the index update it covers.
    pub fn begin_commit(&self) -> CommitPermit<'_> {
        CommitPermit {
            _rank: lockrank::acquire("wal", "wal:gate"),
            _guard: self.gate.read(),
        }
    }

    /// Blocks new commits and waits out in-flight ones (they hold the
    /// gate in shared mode until their index update lands).
    pub fn pause_commits(&self) -> Pause<'_> {
        Pause {
            _rank: lockrank::acquire("wal", "wal:gate"),
            _guard: self.gate.write(),
        }
    }

    /// Current logical length in bytes — the checkpoint trigger input.
    pub fn len(&self) -> u64 {
        self.state.lock().appended_len
    }

    /// True if the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Durably appends `frame`, returning the file offset it landed at.
    /// Returns only after the bytes are fsynced (possibly by another
    /// committer's batch flush).
    pub fn commit(&self, _permit: &CommitPermit<'_>, frame: &[u8]) -> Result<u64, VfsError> {
        let mut st = self.state.lock();
        if let Some(err) = &st.broken {
            return Err(err.clone());
        }
        let offset = st.appended_len;
        st.appended_len += frame.len() as u64;
        st.pending.extend_from_slice(frame);
        st.pending_frames += 1;
        let my_seq = st.next_seq;
        st.next_seq += 1;

        loop {
            if let Some(err) = &st.broken {
                return Err(err.clone());
            }
            if st.flushed_before > my_seq {
                return Ok(offset);
            }
            if !st.flushing {
                // Become the leader: flush everything enqueued so far.
                st.flushing = true;
                let batch = std::mem::take(&mut st.pending);
                let frames = st.pending_frames;
                st.pending_frames = 0;
                let batch_end = st.next_seq;
                drop(st);

                let result = self
                    .vfs
                    .append(&self.path, &batch)
                    .and_then(|()| self.vfs.sync(&self.path));

                st = self.state.lock();
                st.flushing = false;
                match result {
                    Ok(()) => {
                        st.flushed_before = batch_end;
                        aide_obs::counter("store.wal.append.bytes", batch.len() as u64);
                        aide_obs::counter("store.wal.fsync", 1);
                        aide_obs::observe("store.wal.batch_frames", frames);
                    }
                    Err(e) => {
                        st.broken = Some(e);
                    }
                }
                self.flushed.notify_all();
            } else {
                st = self.flushed.wait(st);
            }
        }
    }

    /// Truncates the log to empty. Call only under
    /// [`pause_commits`](Wal::pause_commits), after every WAL-resident
    /// record has been relocated to a synced segment.
    pub fn reset(&self, _pause: &Pause<'_>) -> Result<(), VfsError> {
        let mut st = self.state.lock();
        if let Some(err) = &st.broken {
            return Err(err.clone());
        }
        // Nothing can be pending or in flight: pause holds the gate
        // exclusively and committers keep their permits until done.
        if self.vfs.len(&self.path)?.is_some() {
            if let Err(e) = self
                .vfs
                .truncate(&self.path, 0)
                // aide-lint: allow(blocking-while-locked): cold path —
                // reset runs only under pause_commits, with no
                // committer in flight to stall on the state lock
                .and_then(|()| self.vfs.sync(&self.path))
            {
                st.broken = Some(e.clone());
                return Err(e);
            }
        }
        st.appended_len = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::vfs::{FaultScript, FaultVfs, MemVfs};

    #[test]
    fn commits_are_durable_and_offsets_sequential() {
        let vfs = MemVfs::shared();
        let wal = Wal::new(vfs.clone(), "wal".into(), 0);
        let p = wal.begin_commit();
        assert_eq!(wal.commit(&p, b"aaaa").unwrap(), 0);
        assert_eq!(wal.commit(&p, b"bb").unwrap(), 4);
        drop(p);
        assert_eq!(wal.len(), 6);
        assert_eq!(vfs.read("wal").unwrap(), b"aaaabb");
    }

    #[test]
    fn concurrent_commits_group_into_few_fsyncs() {
        let vfs = MemVfs::shared();
        let wal = Arc::new(Wal::new(vfs.clone(), "wal".into(), 0));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..50u8 {
                        let p = wal.begin_commit();
                        wal.commit(&p, &[t as u8, i]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.len(), 800);
        assert_eq!(vfs.read("wal").unwrap().len(), 800);
    }

    #[test]
    fn unsynced_commit_never_returns_ok() {
        // Kill point on the very first durability op: commit must report
        // the failure, and nothing claims durability.
        let vfs = FaultVfs::shared(FaultScript::honest(3).crash_after(0));
        let wal = Wal::new(vfs.clone(), "wal".into(), 0);
        let p = wal.begin_commit();
        assert!(wal.commit(&p, b"doomed").is_err());
        // Fail-stop: later commits refuse too.
        assert!(wal.commit(&p, b"after").is_err());
        drop(p);
        vfs.crash_and_revive();
        assert!(vfs.read("wal").is_err(), "nothing survived");
    }

    #[test]
    fn reset_truncates_durably() {
        let vfs = MemVfs::shared();
        let wal = Wal::new(vfs.clone(), "wal".into(), 0);
        let p = wal.begin_commit();
        wal.commit(&p, b"record").unwrap();
        drop(p);
        let pause = wal.pause_commits();
        wal.reset(&pause).unwrap();
        drop(pause);
        assert!(wal.is_empty());
        assert_eq!(vfs.read("wal").unwrap(), b"");
        let p = wal.begin_commit();
        assert_eq!(wal.commit(&p, b"x").unwrap(), 0, "offsets restart");
    }
}
