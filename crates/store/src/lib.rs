//! aide-store: the crash-safe persistent storage engine.
//!
//! This crate puts the tracker's archive store on disk. It implements
//! the same all-`&self` [`Repository`](aide_rcs::repo::Repository)
//! trait that `MemRepository` does, so every layer above it — the
//! snapshot service, the engine, the experiment drivers — runs
//! unchanged over either backend; `MemRepository` stays as the
//! reference implementation the equivalence suite compares against.
//!
//! The moving parts, bottom-up:
//!
//! - [`frame`] — the checksummed record codec shared by the WAL and
//!   segment files; detects torn tails at the exact byte they begin.
//! - [`wal`] — the write-ahead log with group commit: concurrent
//!   committers batch into shared fsyncs, and a shared/exclusive gate
//!   lets checkpoints observe a quiescent log.
//! - [`repo`] — [`DiskRepository`]: sharded in-memory index over
//!   append-only files, checkpointing, compaction, recovery-on-open,
//!   and the optional background compactor thread.
//! - [`vfs`] — [`RealVfs`], the only module in the workspace that
//!   touches `std::fs`/`std::io` (aide-lint enforces the scope). The
//!   engine itself speaks only `aide_util::vfs::Vfs`, so the entire
//!   stack — recovery included — runs deterministically over `MemVfs`
//!   and under injected faults over `FaultVfs`.
//!
//! Durability contract: a `store` or `remove` returns `Ok` only after
//! its WAL frame is fsynced; recovery after any crash yields a state
//! that is a prefix of acknowledged history (never a torn record, never
//! a resurrected delete). The crash suite drives a workload over
//! `FaultVfs`, kills it at every injected durability point, reopens,
//! and checks exactly that.

pub mod frame;
pub mod repo;
pub mod vfs;
pub mod wal;

pub use repo::{spawn_compactor, CompactorHandle, DiskRepository, StoreOptions, STORE_SHARDS};
pub use vfs::RealVfs;
