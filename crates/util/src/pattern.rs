//! A small regular-expression engine for w3newer configuration patterns.
//!
//! Table 1 of the paper shows a w3newer configuration file whose left-hand
//! column is a perl pattern ("perl syntax requires that `.` be escaped"),
//! matched against URLs with first-match-wins semantics. This module
//! implements the subset those configurations use — literals, `.`,
//! `*`/`+`/`?` repetition, character classes, grouping, alternation and
//! anchors — as a Thompson-NFA "Pike VM", so matching is linear in the
//! input and immune to the pathological backtracking a naive engine hits
//! on patterns like `(a+)+`.

use std::fmt;

/// A compiled pattern.
///
/// # Examples
///
/// ```
/// use aide_util::pattern::Pattern;
///
/// let p = Pattern::new(r"http://www\.yahoo\.com/.*").unwrap();
/// assert!(p.matches("http://www.yahoo.com/finance"));
/// assert!(!p.matches("http://www2yahoo.com/"));
/// ```
#[derive(Debug, Clone)]
pub struct Pattern {
    source: String,
    prog: Vec<Inst>,
    anchored_start: bool,
}

/// Error from [`Pattern::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the pattern source where the error was detected.
    pub offset: usize,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for PatternError {}

#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Empty,
    Char(char),
    AnyChar,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    Concat(Vec<Ast>),
    Alternate(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Quest(Box<Ast>),
    EndAnchor,
}

#[derive(Debug, Clone)]
enum Inst {
    Char(char),
    Any,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    Split(usize, usize),
    Jmp(usize),
    End,
    Match,
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Parser {
        Parser {
            chars: src.chars().collect(),
            pos: 0,
        }
    }

    fn err(&self, message: &str) -> PatternError {
        let offset = self.chars[..self.pos.min(self.chars.len())]
            .iter()
            .map(|c| c.len_utf8())
            .sum();
        PatternError {
            message: message.to_string(),
            offset,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alternate(&mut self) -> Result<Ast, PatternError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        match branches.pop() {
            Some(only) if branches.is_empty() => Ok(only),
            Some(last) => {
                branches.push(last);
                Ok(Ast::Alternate(branches))
            }
            None => Ok(Ast::Empty),
        }
    }

    fn parse_concat(&mut self) -> Result<Ast, PatternError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        match items.pop() {
            None => Ok(Ast::Empty),
            Some(only) if items.is_empty() => Ok(only),
            Some(last) => {
                items.push(last);
                Ok(Ast::Concat(items))
            }
        }
    }

    fn parse_repeat(&mut self) -> Result<Ast, PatternError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some('*') => {
                self.bump();
                Ok(Ast::Star(Box::new(atom)))
            }
            Some('+') => {
                self.bump();
                Ok(Ast::Plus(Box::new(atom)))
            }
            Some('?') => {
                self.bump();
                Ok(Ast::Quest(Box::new(atom)))
            }
            _ => Ok(atom),
        }
    }

    fn parse_atom(&mut self) -> Result<Ast, PatternError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alternate()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::AnyChar),
            Some('$') => Ok(Ast::EndAnchor),
            Some('*') | Some('+') | Some('?') => Err(self.err("repetition with nothing to repeat")),
            Some('\\') => match self.bump() {
                None => Err(self.err("trailing backslash")),
                Some('d') => Ok(Ast::Class {
                    negated: false,
                    ranges: vec![('0', '9')],
                }),
                Some('w') => Ok(Ast::Class {
                    negated: false,
                    ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
                }),
                Some('s') => Ok(Ast::Class {
                    negated: false,
                    ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                }),
                Some(c) => Ok(Ast::Char(c)),
            },
            Some(c) => Ok(Ast::Char(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, PatternError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        let mut first = true;
        loop {
            match self.bump() {
                None => return Err(self.err("unclosed character class")),
                Some(']') if !first => break,
                Some(c) => {
                    let lo = if c == '\\' {
                        self.bump()
                            .ok_or_else(|| self.err("trailing backslash in class"))?
                    } else {
                        c
                    };
                    if self.peek() == Some('-')
                        && self
                            .chars
                            .get(self.pos + 1)
                            .copied()
                            .is_some_and(|n| n != ']')
                    {
                        self.bump(); // the '-'
                        let hi = match self.bump() {
                            Some('\\') => self
                                .bump()
                                .ok_or_else(|| self.err("trailing backslash in class"))?,
                            Some(h) => h,
                            None => return Err(self.err("unclosed character class")),
                        };
                        if hi < lo {
                            return Err(self.err("inverted range in character class"));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
            first = false;
        }
        Ok(Ast::Class { negated, ranges })
    }
}

fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(c) => prog.push(Inst::Char(*c)),
        Ast::AnyChar => prog.push(Inst::Any),
        Ast::Class { negated, ranges } => prog.push(Inst::Class {
            negated: *negated,
            ranges: ranges.clone(),
        }),
        Ast::EndAnchor => prog.push(Inst::End),
        Ast::Concat(items) => {
            for item in items {
                compile(item, prog);
            }
        }
        Ast::Alternate(branches) => {
            // Chain of splits; each branch jumps to the common exit.
            let mut jmp_slots = Vec::new();
            for (i, b) in branches.iter().enumerate() {
                if i + 1 < branches.len() {
                    let split_at = prog.len();
                    prog.push(Inst::Split(0, 0));
                    compile(b, prog);
                    jmp_slots.push(prog.len());
                    prog.push(Inst::Jmp(0));
                    let next = prog.len();
                    prog[split_at] = Inst::Split(split_at + 1, next);
                } else {
                    compile(b, prog);
                }
            }
            let end = prog.len();
            for slot in jmp_slots {
                prog[slot] = Inst::Jmp(end);
            }
        }
        Ast::Star(inner) => {
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            compile(inner, prog);
            prog.push(Inst::Jmp(split_at));
            let after = prog.len();
            prog[split_at] = Inst::Split(split_at + 1, after);
        }
        Ast::Plus(inner) => {
            let body = prog.len();
            compile(inner, prog);
            let split_at = prog.len();
            prog.push(Inst::Split(body, split_at + 1));
        }
        Ast::Quest(inner) => {
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            compile(inner, prog);
            let after = prog.len();
            prog[split_at] = Inst::Split(split_at + 1, after);
        }
    }
}

impl Pattern {
    /// Compiles `source` into a pattern.
    ///
    /// A leading `^` anchors the match at the start of the input;
    /// otherwise the pattern may match anywhere (perl search semantics).
    pub fn new(source: &str) -> Result<Pattern, PatternError> {
        let (anchored_start, body) = match source.strip_prefix('^') {
            Some(rest) => (true, rest),
            None => (false, source),
        };
        let mut parser = Parser::new(body);
        let ast = parser.parse_alternate()?;
        if parser.pos != parser.chars.len() {
            return Err(parser.err("unexpected character"));
        }
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Match);
        Ok(Pattern {
            source: source.to_string(),
            prog,
            anchored_start,
        })
    }

    /// Returns the original pattern source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Returns true if the pattern matches anywhere in `input`
    /// (or at the start, for `^`-anchored patterns).
    pub fn matches(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        if self.anchored_start {
            self.run(&chars, 0)
        } else {
            (0..=chars.len()).any(|start| self.run(&chars, start))
        }
    }

    /// Returns true if the pattern matches the whole of `input`, as if it
    /// were written `^pattern$`.
    pub fn matches_fully(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        self.run_full(&chars)
    }

    fn add_thread(&self, list: &mut Vec<usize>, on_list: &mut [bool], pc: usize, at_end: bool) {
        if on_list[pc] {
            return;
        }
        on_list[pc] = true;
        match &self.prog[pc] {
            Inst::Jmp(t) => self.add_thread(list, on_list, *t, at_end),
            Inst::Split(a, b) => {
                self.add_thread(list, on_list, *a, at_end);
                self.add_thread(list, on_list, *b, at_end);
            }
            Inst::End => {
                if at_end {
                    self.add_thread(list, on_list, pc + 1, at_end);
                }
            }
            _ => list.push(pc),
        }
    }

    /// Pike-VM simulation from `start`; returns true on the first match
    /// (unanchored at the end).
    fn run(&self, chars: &[char], start: usize) -> bool {
        let n = self.prog.len();
        let mut clist = Vec::new();
        let mut on = vec![false; n];
        self.add_thread(&mut clist, &mut on, 0, start == chars.len());
        if clist.iter().any(|&pc| matches!(self.prog[pc], Inst::Match)) {
            return true;
        }
        let mut pos = start;
        while pos < chars.len() {
            let c = chars[pos];
            pos += 1;
            let at_end = pos == chars.len();
            let mut nlist = Vec::new();
            let mut non = vec![false; n];
            for &pc in &clist {
                let step = match &self.prog[pc] {
                    Inst::Char(pc_c) => *pc_c == c,
                    Inst::Any => true,
                    Inst::Class { negated, ranges } => {
                        let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                        inside != *negated
                    }
                    Inst::Match => {
                        return true;
                    }
                    _ => false,
                };
                if step {
                    self.add_thread(&mut nlist, &mut non, pc + 1, at_end);
                }
            }
            if nlist.iter().any(|&pc| matches!(self.prog[pc], Inst::Match)) {
                return true;
            }
            clist = nlist;
            if clist.is_empty() {
                return false;
            }
        }
        clist.iter().any(|&pc| matches!(self.prog[pc], Inst::Match))
    }

    /// Pike-VM simulation requiring the match to consume all input.
    fn run_full(&self, chars: &[char]) -> bool {
        let n = self.prog.len();
        let mut clist = Vec::new();
        let mut on = vec![false; n];
        self.add_thread(&mut clist, &mut on, 0, chars.is_empty());
        for (pos, &c) in chars.iter().enumerate() {
            let at_end = pos + 1 == chars.len();
            let mut nlist = Vec::new();
            let mut non = vec![false; n];
            for &pc in &clist {
                let step = match &self.prog[pc] {
                    Inst::Char(pc_c) => *pc_c == c,
                    Inst::Any => true,
                    Inst::Class { negated, ranges } => {
                        let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                        inside != *negated
                    }
                    _ => false,
                };
                if step {
                    self.add_thread(&mut nlist, &mut non, pc + 1, at_end);
                }
            }
            clist = nlist;
            if clist.is_empty() {
                return false;
            }
        }
        clist.iter().any(|&pc| matches!(self.prog[pc], Inst::Match))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Pattern {
        Pattern::new(s).unwrap_or_else(|e| panic!("pattern {s:?}: {e}"))
    }

    #[test]
    fn literal_search_is_unanchored() {
        assert!(p("att").matches("http://www.att.com/"));
        assert!(!p("att").matches("http://www.mit.edu/"));
    }

    #[test]
    fn escaped_dot_is_literal() {
        assert!(p(r"www\.yahoo\.com").matches("http://www.yahoo.com/"));
        assert!(!p(r"www\.yahoo\.com").matches("http://wwwXyahooXcom/"));
        assert!(
            p("www.yahoo.com").matches("http://wwwXyahooXcom/"),
            "unescaped dot is wildcard"
        );
    }

    #[test]
    fn table1_patterns() {
        // The actual patterns from Table 1 of the paper.
        let yahoo = p(r"http://www\.yahoo\.com/.*");
        assert!(yahoo.matches("http://www.yahoo.com/headlines/"));
        let att = p(r"http://.*\.att\.com/.*");
        assert!(att.matches("http://www.research.att.com/people/"));
        assert!(!att.matches("http://www.ibm.com/"));
        let file = p("file:.*");
        assert!(file.matches("file:/home/user/notes.html"));
        let dilbert = p(r"http://www\.unitedmedia\.com/comics/dilbert/");
        assert!(dilbert.matches("http://www.unitedmedia.com/comics/dilbert/"));
    }

    #[test]
    fn star_plus_quest() {
        assert!(p("ab*c").matches_fully("ac"));
        assert!(p("ab*c").matches_fully("abbbc"));
        assert!(!p("ab+c").matches_fully("ac"));
        assert!(p("ab+c").matches_fully("abc"));
        assert!(p("ab?c").matches_fully("ac"));
        assert!(p("ab?c").matches_fully("abc"));
        assert!(!p("ab?c").matches_fully("abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        let x = p("^http://(www|ftp)\\.example\\.(com|org)/");
        assert!(x.matches("http://www.example.com/x"));
        assert!(x.matches("http://ftp.example.org/"));
        assert!(!x.matches("http://mail.example.com/"));
        assert!(p("(ab)+").matches_fully("ababab"));
        assert!(!p("(ab)+").matches_fully("aba"));
    }

    #[test]
    fn character_classes() {
        assert!(p("[a-z]+").matches_fully("hello"));
        assert!(!p("[a-z]+").matches_fully("Hello"));
        assert!(p("[^0-9]+").matches_fully("no-digits!"));
        assert!(!p("[^0-9]+").matches_fully("a1b"));
        assert!(p(r"[\]]").matches("]"));
        assert!(p("[-a]").matches("-"), "leading - after ranges is literal");
    }

    #[test]
    fn escape_shorthands() {
        assert!(p(r"\d+").matches_fully("12345"));
        assert!(p(r"\w+").matches_fully("foo_bar9"));
        assert!(p(r"a\sb").matches_fully("a b"));
    }

    #[test]
    fn anchors() {
        assert!(p("^http").matches("http://x/"));
        assert!(!p("^http").matches("see http://x/"));
        assert!(p("html$").matches("index.html"));
        assert!(!p("html$").matches("index.html.bak"));
        assert!(p("^$").matches(""));
        assert!(!p("^$").matches("x"));
    }

    #[test]
    fn pathological_pattern_is_fast() {
        // A backtracking engine would take exponential time here.
        let pat = p("(a+)+b");
        let input = "a".repeat(200);
        assert!(!pat.matches(&input));
        assert!(pat.matches(&format!("{input}b")));
    }

    #[test]
    fn parse_errors() {
        assert!(Pattern::new("(").is_err());
        assert!(Pattern::new("a)").is_err());
        assert!(Pattern::new("[abc").is_err());
        assert!(Pattern::new("*a").is_err());
        assert!(Pattern::new("a\\").is_err());
        assert!(Pattern::new("[z-a]").is_err());
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(p("").matches(""));
        assert!(p("").matches("anything"));
        assert!(p(".*").matches("anything"));
    }

    #[test]
    fn unicode_input() {
        assert!(p("café").matches("visit café now"));
        assert!(p(".").matches("é"));
    }
}
