//! Virtual time: timestamps, durations and a shared simulated clock.
//!
//! All AIDE components are written against [`Clock`], so an entire
//! multi-month "deployment" (the paper reports on roughly half a year of
//! use, §7) runs deterministically in milliseconds of real time.
//!
//! [`Timestamp`] counts whole seconds since the Unix epoch, which is the
//! resolution HTTP `Last-Modified` and RCS datestamps share. Formatting
//! helpers produce the two 1995-era renderings the tools exchange:
//! RFC-1123 dates for HTTP headers and `YYYY.MM.DD.hh.mm.ss` for RCS.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in time, in whole seconds since `1970-01-01T00:00:00Z`.
///
/// # Examples
///
/// ```
/// use aide_util::time::Timestamp;
///
/// let t = Timestamp::from_ymd_hms(1995, 9, 29, 12, 0, 0);
/// assert_eq!(t.to_rcs_date(), "1995.09.29.12.00.00");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of time, in whole seconds.
///
/// Parses and displays in the `w3newer` threshold syntax: combinations of
/// days (`d`), hours (`h`), minutes (`m`) and seconds (`s`), e.g. `2d`,
/// `12h`, or `1d12h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length duration (w3newer's "check on every run").
    pub const ZERO: Duration = Duration(0);

    /// Constructs a duration from a number of seconds.
    pub const fn seconds(s: u64) -> Duration {
        Duration(s)
    }

    /// Constructs a duration from a number of minutes.
    pub const fn minutes(m: u64) -> Duration {
        Duration(m * 60)
    }

    /// Constructs a duration from a number of hours.
    pub const fn hours(h: u64) -> Duration {
        Duration(h * 3600)
    }

    /// Constructs a duration from a number of days.
    pub const fn days(d: u64) -> Duration {
        Duration(d * 86_400)
    }

    /// Returns the duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Parses the w3newer threshold syntax.
    ///
    /// Accepts a concatenation of `<n>d`, `<n>h`, `<n>m`, `<n>s` components
    /// (at least one), or a bare integer meaning seconds. `0` therefore
    /// parses as [`Duration::ZERO`].
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_util::time::Duration;
    ///
    /// assert_eq!(Duration::parse("2d").unwrap(), Duration::days(2));
    /// assert_eq!(
    ///     Duration::parse("1d12h").unwrap(),
    ///     Duration::seconds(36 * 3600)
    /// );
    /// assert_eq!(Duration::parse("0").unwrap(), Duration::ZERO);
    /// assert!(Duration::parse("abc").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<Duration, DurationParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(DurationParseError::Empty);
        }
        let mut total: u64 = 0;
        let mut num: Option<u64> = None;
        for ch in s.chars() {
            match ch {
                '0'..='9' => {
                    let d = (ch as u8 - b'0') as u64;
                    num = Some(
                        num.unwrap_or(0)
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(d))
                            .ok_or(DurationParseError::Overflow)?,
                    );
                }
                'd' | 'D' | 'h' | 'H' | 'm' | 'M' | 's' | 'S' => {
                    let n = num.take().ok_or(DurationParseError::MissingNumber)?;
                    let unit = match ch.to_ascii_lowercase() {
                        'd' => 86_400,
                        'h' => 3600,
                        'm' => 60,
                        _ => 1,
                    };
                    total = n
                        .checked_mul(unit)
                        .and_then(|x| total.checked_add(x))
                        .ok_or(DurationParseError::Overflow)?;
                }
                c if c.is_whitespace() => {}
                c => return Err(DurationParseError::BadChar(c)),
            }
        }
        if let Some(n) = num {
            // A trailing bare number counts as seconds ("90" == 90s).
            total = total.checked_add(n).ok_or(DurationParseError::Overflow)?;
        }
        Ok(Duration(total))
    }
}

/// Error from [`Duration::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurationParseError {
    /// The input was empty or all whitespace.
    Empty,
    /// A unit letter appeared with no preceding number.
    MissingNumber,
    /// A character outside the `[0-9dhms]` alphabet appeared.
    BadChar(char),
    /// The value does not fit in 64 bits of seconds.
    Overflow,
}

impl fmt::Display for DurationParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurationParseError::Empty => write!(f, "empty duration"),
            DurationParseError::MissingNumber => write!(f, "unit letter without a number"),
            DurationParseError::BadChar(c) => write!(f, "unexpected character {c:?} in duration"),
            DurationParseError::Overflow => write!(f, "duration too large"),
        }
    }
}

impl std::error::Error for DurationParseError {}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut left = self.0;
        if left == 0 {
            return write!(f, "0");
        }
        let days = left / 86_400;
        left %= 86_400;
        let hours = left / 3600;
        left %= 3600;
        let mins = left / 60;
        let secs = left % 60;
        let mut wrote = false;
        for (n, u) in [(days, 'd'), (hours, 'h'), (mins, 'm'), (secs, 's')] {
            if n > 0 {
                write!(f, "{n}{u}")?;
                wrote = true;
            }
        }
        if !wrote {
            write!(f, "0")?;
        }
        Ok(())
    }
}

impl std::ops::Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

const DAYS_IN_MONTH: [u64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const DAY_NAMES: [&str; 7] = ["Thu", "Fri", "Sat", "Sun", "Mon", "Tue", "Wed"];

fn is_leap(year: u64) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_year(year: u64) -> u64 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

/// Calendar fields of a [`Timestamp`], in UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalendarDate {
    /// Full year, e.g. `1995`.
    pub year: u64,
    /// Month `1..=12`.
    pub month: u64,
    /// Day of month `1..=31`.
    pub day: u64,
    /// Hour `0..=23`.
    pub hour: u64,
    /// Minute `0..=59`.
    pub minute: u64,
    /// Second `0..=59`.
    pub second: u64,
    /// Day of week, `0` = Thursday (the epoch's weekday).
    pub weekday: u64,
}

impl Timestamp {
    /// The Unix epoch.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Builds a timestamp from UTC calendar fields.
    ///
    /// # Panics
    ///
    /// Panics if `month` is outside `1..=12`, `day` outside the month, or a
    /// time field is out of range; these indicate programmer error in test
    /// fixtures rather than runtime input.
    pub fn from_ymd_hms(year: u64, month: u64, day: u64, hour: u64, min: u64, sec: u64) -> Self {
        assert!((1..=12).contains(&month), "month out of range");
        assert!(hour < 24 && min < 60 && sec < 60, "time out of range");
        assert!(year >= 1970, "years before 1970 unsupported");
        let mut days: u64 = 0;
        for y in 1970..year {
            days += days_in_year(y);
        }
        for (m, dim) in DAYS_IN_MONTH.iter().enumerate().take((month - 1) as usize) {
            days += dim;
            if m == 1 && is_leap(year) {
                days += 1;
            }
        }
        let dim = DAYS_IN_MONTH[(month - 1) as usize] + u64::from(month == 2 && is_leap(year));
        assert!((1..=dim).contains(&day), "day out of range");
        days += day - 1;
        Timestamp(days * 86_400 + hour * 3600 + min * 60 + sec)
    }

    /// Decomposes into UTC calendar fields.
    pub fn calendar(self) -> CalendarDate {
        let mut days = self.0 / 86_400;
        let rem = self.0 % 86_400;
        let weekday = days % 7;
        let mut year = 1970;
        loop {
            let diy = days_in_year(year);
            if days < diy {
                break;
            }
            days -= diy;
            year += 1;
        }
        let mut month = 1u64;
        loop {
            let m = (month - 1) as usize;
            let dim = DAYS_IN_MONTH[m] + u64::from(m == 1 && is_leap(year));
            if days < dim {
                break;
            }
            days -= dim;
            month += 1;
        }
        CalendarDate {
            year,
            month,
            day: days + 1,
            hour: rem / 3600,
            minute: (rem % 3600) / 60,
            second: rem % 60,
            weekday,
        }
    }

    /// Formats as an RFC-1123 HTTP date: `Fri, 29 Sep 1995 12:00:00 GMT`.
    pub fn to_http_date(self) -> String {
        let c = self.calendar();
        format!(
            "{}, {:02} {} {} {:02}:{:02}:{:02} GMT",
            DAY_NAMES[c.weekday as usize],
            c.day,
            MONTH_NAMES[(c.month - 1) as usize],
            c.year,
            c.hour,
            c.minute,
            c.second
        )
    }

    /// Formats as an RCS datestamp: `1995.09.29.12.00.00`.
    pub fn to_rcs_date(self) -> String {
        let c = self.calendar();
        format!(
            "{:04}.{:02}.{:02}.{:02}.{:02}.{:02}",
            c.year, c.month, c.day, c.hour, c.minute, c.second
        )
    }

    /// Parses an RFC-1123 HTTP date produced by [`Timestamp::to_http_date`]
    /// (`Fri, 29 Sep 1995 12:00:00 GMT`). The weekday name is ignored —
    /// senders get it wrong often enough that RFC 7231 tells recipients
    /// to use only the date fields — but the shape must match exactly:
    /// this is the strict `IMF-fixdate` form, not the obsolete RFC-850
    /// or asctime variants.
    pub fn parse_http_date(s: &str) -> Option<Timestamp> {
        let s = s.trim();
        let rest = s.split_once(", ").map(|(_, r)| r)?;
        let rest = rest.strip_suffix(" GMT")?;
        // rest = "29 Sep 1995 12:00:00"
        let mut parts = rest.split(' ');
        let day: u64 = parts.next()?.parse().ok()?;
        let mon_name = parts.next()?;
        let month = MONTH_NAMES.iter().position(|m| *m == mon_name)? as u64 + 1;
        let year: u64 = parts.next()?.parse().ok()?;
        let hms = parts.next()?;
        if parts.next().is_some() {
            return None;
        }
        let mut t = hms.split(':');
        let hour: u64 = t.next()?.parse().ok()?;
        let min: u64 = t.next()?.parse().ok()?;
        let sec: u64 = t.next()?.parse().ok()?;
        if t.next().is_some() {
            return None;
        }
        if year < 1970 || hour >= 24 || min >= 60 || sec >= 60 {
            return None;
        }
        let dim = DAYS_IN_MONTH[(month - 1) as usize] + u64::from(month == 2 && is_leap(year));
        if !(1..=dim).contains(&day) {
            return None;
        }
        Some(Timestamp::from_ymd_hms(year, month, day, hour, min, sec))
    }

    /// Parses an RCS datestamp produced by [`Timestamp::to_rcs_date`].
    pub fn parse_rcs_date(s: &str) -> Option<Timestamp> {
        let parts: Vec<&str> = s.trim().split('.').collect();
        if parts.len() != 6 {
            return None;
        }
        let nums: Vec<u64> = parts
            .iter()
            .map(|p| p.parse().ok())
            .collect::<Option<_>>()?;
        let (y, mo, d, h, mi, se) = (nums[0], nums[1], nums[2], nums[3], nums[4], nums[5]);
        if !(1..=12).contains(&mo) || h >= 24 || mi >= 60 || se >= 60 || y < 1970 {
            return None;
        }
        let dim = DAYS_IN_MONTH[(mo - 1) as usize] + u64::from(mo == 2 && is_leap(y));
        if !(1..=dim).contains(&d) {
            return None;
        }
        Some(Timestamp::from_ymd_hms(y, mo, d, h, mi, se))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_http_date())
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Cloning a `Clock` yields a handle onto the same underlying time source,
/// so the simulated web, the tracker, and the snapshot service all observe
/// one timeline.
///
/// # Examples
///
/// ```
/// use aide_util::time::{Clock, Duration};
///
/// let clock = Clock::new();
/// let t0 = clock.now();
/// clock.advance(Duration::days(1));
/// assert_eq!(clock.now() - t0, Duration::days(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock starting at the Unix epoch.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Creates a clock starting at `t`.
    pub fn starting_at(t: Timestamp) -> Clock {
        Clock {
            now: Arc::new(AtomicU64::new(t.0)),
        }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> Timestamp {
        // aide-lint: allow(seqcst): the virtual clock is the causal
        // backbone of every simulation — all reads and advances share
        // one total order rather than relying on per-site reasoning
        Timestamp(self.now.load(Ordering::SeqCst))
    }

    /// The current virtual time as raw seconds since the epoch — the
    /// form the observability layer's span API takes (`aide_obs` sits
    /// below this crate in the dependency graph and cannot see
    /// [`Timestamp`]).
    pub fn now_secs(&self) -> u64 {
        // aide-lint: allow(seqcst): see `now`
        self.now.load(Ordering::SeqCst)
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        // aide-lint: allow(seqcst): see `now`
        self.now.fetch_add(d.0, Ordering::SeqCst);
    }

    /// Sets the clock to `t`. Time never moves backwards: setting an
    /// earlier time is a no-op.
    pub fn set(&self, t: Timestamp) {
        // aide-lint: allow(seqcst): see `now`
        self.now.fetch_max(t.0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_parse_basic_units() {
        assert_eq!(Duration::parse("2d").unwrap(), Duration::days(2));
        assert_eq!(Duration::parse("12h").unwrap(), Duration::hours(12));
        assert_eq!(Duration::parse("30m").unwrap(), Duration::minutes(30));
        assert_eq!(Duration::parse("45s").unwrap(), Duration::seconds(45));
    }

    #[test]
    fn duration_parse_compound() {
        assert_eq!(
            Duration::parse("1d12h").unwrap(),
            Duration::hours(36),
            "1d12h should be 36 hours"
        );
        assert_eq!(
            Duration::parse("1d 2h 3m 4s").unwrap(),
            Duration::seconds(86_400 + 7200 + 180 + 4)
        );
    }

    #[test]
    fn duration_parse_bare_number_is_seconds() {
        assert_eq!(Duration::parse("0").unwrap(), Duration::ZERO);
        assert_eq!(Duration::parse("90").unwrap(), Duration::seconds(90));
    }

    #[test]
    fn duration_parse_errors() {
        assert_eq!(Duration::parse(""), Err(DurationParseError::Empty));
        assert_eq!(Duration::parse("d"), Err(DurationParseError::MissingNumber));
        assert_eq!(Duration::parse("2x"), Err(DurationParseError::BadChar('x')));
    }

    #[test]
    fn duration_display_roundtrip() {
        for s in ["2d", "12h", "1d12h", "3m", "2d3h4m5s", "0"] {
            let d = Duration::parse(s).unwrap();
            let shown = d.to_string();
            assert_eq!(Duration::parse(&shown).unwrap(), d, "roundtrip of {s}");
        }
    }

    #[test]
    fn epoch_calendar() {
        let c = Timestamp::EPOCH.calendar();
        assert_eq!((c.year, c.month, c.day), (1970, 1, 1));
        assert_eq!(
            Timestamp::EPOCH.to_http_date(),
            "Thu, 01 Jan 1970 00:00:00 GMT"
        );
    }

    #[test]
    fn known_dates() {
        // 1995-09-29 was a Friday.
        let t = Timestamp::from_ymd_hms(1995, 9, 29, 12, 0, 0);
        assert_eq!(t.to_http_date(), "Fri, 29 Sep 1995 12:00:00 GMT");
        // Leap day 1996-02-29 existed.
        let leap = Timestamp::from_ymd_hms(1996, 2, 29, 0, 0, 0);
        assert_eq!(leap.calendar().day, 29);
        // Day after leap day.
        let after = leap + Duration::days(1);
        let c = after.calendar();
        assert_eq!((c.month, c.day), (3, 1));
    }

    #[test]
    fn http_date_roundtrip() {
        for t in [
            Timestamp::EPOCH,
            Timestamp::from_ymd_hms(1995, 9, 29, 12, 0, 0),
            Timestamp::from_ymd_hms(1996, 2, 29, 23, 59, 59),
            Timestamp::from_ymd_hms(2026, 8, 7, 6, 5, 4),
        ] {
            assert_eq!(Timestamp::parse_http_date(&t.to_http_date()), Some(t));
        }
        // Weekday name is not verified, only shape.
        assert_eq!(
            Timestamp::parse_http_date("Mon, 29 Sep 1995 12:00:00 GMT"),
            Some(Timestamp::from_ymd_hms(1995, 9, 29, 12, 0, 0))
        );
    }

    #[test]
    fn http_date_rejects_garbage() {
        for bad in [
            "",
            "29 Sep 1995 12:00:00 GMT",
            "Fri, 29 Sep 1995 12:00:00",
            "Fri, 32 Sep 1995 12:00:00 GMT",
            "Fri, 29 Xxx 1995 12:00:00 GMT",
            "Fri, 29 Sep 1995 25:00:00 GMT",
            "Fri, 29 Sep 1969 12:00:00 GMT",
            "Fri, 29 Sep 1995 12:00:00 GMT extra",
            "Friday, 29-Sep-95 12:00:00 GMT",
        ] {
            assert_eq!(Timestamp::parse_http_date(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn rcs_date_roundtrip() {
        let t = Timestamp::from_ymd_hms(1995, 11, 3, 8, 49, 37);
        assert_eq!(t.to_rcs_date(), "1995.11.03.08.49.37");
        assert_eq!(Timestamp::parse_rcs_date(&t.to_rcs_date()), Some(t));
    }

    #[test]
    fn rcs_date_rejects_garbage() {
        assert_eq!(Timestamp::parse_rcs_date("1995.13.01.00.00.00"), None);
        assert_eq!(Timestamp::parse_rcs_date("1995.02.30.00.00.00"), None);
        assert_eq!(Timestamp::parse_rcs_date("hello"), None);
        assert_eq!(Timestamp::parse_rcs_date("1995.09.29"), None);
    }

    #[test]
    fn calendar_roundtrip_sweep() {
        // Every 100,003 seconds across three decades.
        let mut t = 0u64;
        while t < 1_000_000_000 {
            let ts = Timestamp(t);
            let c = ts.calendar();
            let back = Timestamp::from_ymd_hms(c.year, c.month, c.day, c.hour, c.minute, c.second);
            assert_eq!(back, ts, "roundtrip at {t}");
            t += 100_003;
        }
    }

    #[test]
    fn clock_is_shared_between_handles() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(Duration::hours(5));
        assert_eq!(b.now(), Timestamp(5 * 3600));
    }

    #[test]
    fn clock_never_rewinds() {
        let c = Clock::starting_at(Timestamp(1000));
        c.set(Timestamp(500));
        assert_eq!(c.now(), Timestamp(1000));
        c.set(Timestamp(2000));
        assert_eq!(c.now(), Timestamp(2000));
    }

    #[test]
    fn timestamp_arithmetic_saturates() {
        assert_eq!(Timestamp(5) - Duration::days(1), Timestamp(0));
        assert_eq!(Timestamp(5) - Timestamp(10), Duration::ZERO);
    }
}
