//! Poison-free synchronization primitives and a minimal worker pool.
//!
//! Thin wrappers over `std::sync` with `parking_lot`-style ergonomics:
//! `lock()` / `read()` / `write()` return guards directly instead of a
//! `LockResult`. A panic while holding a lock poisons the underlying
//! `std` primitive; these wrappers recover the guard anyway, because all
//! guarded state in this codebase stays structurally valid across panics
//! (counters, maps of immutable values) and the alternative — unwrapping
//! at every call site — turns one panicking thread into a cascade.
//!
//! [`parallel_map`] is the shared fan-out helper: scoped threads pulling
//! work items off an atomic counter, with results merged back in input
//! order so callers are deterministic regardless of scheduling. It is the
//! same shape as the checker pool in `w3newer`, extracted here so other
//! crates (e.g. the diff substrate's per-gap scoring) can reuse it
//! without a `rayon` dependency.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{self, PoisonError};

/// Applies `f` to every element of `items` on up to `workers` scoped
/// threads and returns the results in input order.
///
/// The output is identical for any worker count (including 1, which runs
/// inline with no threads spawned); only wall-clock time varies. Workers
/// claim indices from a shared atomic counter, so uneven per-item cost
/// load-balances naturally.
///
/// # Examples
///
/// ```
/// use aide_util::sync::parallel_map;
///
/// let squares = parallel_map(&[1, 2, 3, 4], 3, |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // aide-lint: allow(no-panic, panic-reach): a worker panic
            // must propagate to the caller, not be swallowed into a
            // partial result
            indexed.extend(h.join().expect("parallel_map worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A mutual-exclusion lock whose guard access never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable paired with [`Mutex`], with the same
/// poison-recovering policy as the lock wrappers. Needed by the storage
/// engine's group commit (waiters park until the leader's fsync covers
/// their sequence number); lives here because [`MutexGuard`]'s inner
/// `std` guard is private to this module.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// reacquires the lock.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            inner: self
                .inner
                .wait(guard.inner)
                .unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Blocks like [`wait`](Condvar::wait) until `condition` holds.
    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose guard access never fails.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub mod lockrank {
    //! The workspace lock-order table and a debug-build runtime checker.
    //!
    //! [`TABLE`] is the single source of truth for the lock-ordering
    //! discipline documented in DESIGN.md §4d/§4h: a thread may only
    //! acquire locks of non-decreasing rank, and at most one lock of any
    //! `exclusive` class at a time. The static checker (`aide-lint`'s
    //! `lock-order` pass) enforces the same table lexically; this module
    //! enforces it dynamically on every named-lock acquisition when
    //! `debug_assertions` are on, and compiles to nothing in release
    //! builds.

    /// One class of lock in the global acquisition order.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct LockClass {
        /// Class name, as used by waiver comments and diagnostics.
        pub name: &'static str,
        /// Acquisition rank: a thread holding rank `r` may only acquire
        /// locks of rank `>= r`.
        pub rank: u32,
        /// Whether at most one lock of this class may be held per thread.
        pub exclusive: bool,
    }

    /// The lock-rank table (DESIGN.md §4h). Order of acquisition is
    /// ascending rank: single-flight key, then per-URL named lock, then
    /// per-user named lock, then the scheduler state lock (aide-sched;
    /// held while snapshotting rate state, released or still-held when
    /// the snapshot is persisted through the store's per-shard lock),
    /// then the WAL commit gate (shared for committers, exclusive for
    /// checkpoint pause — always taken before any shard lock), then the
    /// storage engine's per-shard lock (held across WAL commits while
    /// the caller still holds the URL lock), then structure
    /// (shard/bucket) guards, which are leaves.
    pub const TABLE: &[LockClass] = &[
        LockClass {
            name: "flight",
            rank: 5,
            exclusive: true,
        },
        LockClass {
            name: "url",
            rank: 10,
            exclusive: true,
        },
        LockClass {
            name: "user",
            rank: 20,
            exclusive: true,
        },
        LockClass {
            name: "sched",
            rank: 22,
            exclusive: true,
        },
        LockClass {
            name: "wal",
            rank: 24,
            exclusive: false,
        },
        LockClass {
            name: "store",
            rank: 25,
            exclusive: true,
        },
        LockClass {
            name: "structure",
            rank: 30,
            exclusive: false,
        },
    ];

    /// Looks up a class by name.
    pub fn class(name: &str) -> Option<&'static LockClass> {
        TABLE.iter().find(|c| c.name == name)
    }

    #[cfg(debug_assertions)]
    mod dynamic {
        use super::LockClass;
        use std::cell::RefCell;
        use std::sync::atomic::{AtomicU64, Ordering};

        static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

        thread_local! {
            static HELD: RefCell<Vec<(u64, &'static LockClass, String)>> =
                const { RefCell::new(Vec::new()) };
        }

        pub(super) fn note_acquire(class: &'static LockClass, key: &str) -> u64 {
            let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                for (_, c, k) in held.iter() {
                    if c.rank > class.rank {
                        // aide-lint: allow(no-panic): the runtime checker's whole job is to abort on a lock-order violation
                        panic!(
                            "lock-order inversion: acquiring {} lock {key:?} while holding {} lock {k:?} (rank {} > {})",
                            class.name, c.name, c.rank, class.rank
                        );
                    }
                    if class.exclusive && c.name == class.name {
                        // aide-lint: allow(no-panic): the runtime checker's whole job is to abort on a double acquisition
                        panic!(
                            "double acquisition of exclusive {} lock class: already hold {k:?}, acquiring {key:?}",
                            class.name
                        );
                    }
                }
                held.push((token, class, key.to_string()));
            });
            token
        }

        pub(super) fn note_release(token: u64) {
            // The guard may be dropped on a different thread than it was
            // acquired on; in that case the entry is simply not found and
            // tracking for that lock ends at the acquiring thread.
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(i) = held.iter().position(|(t, _, _)| *t == token) {
                    held.remove(i);
                }
            });
        }
    }

    /// A held-lock record; popping happens on drop. Zero-sized and inert
    /// in release builds.
    #[derive(Debug)]
    pub struct Held {
        #[cfg(debug_assertions)]
        token: u64,
    }

    impl Drop for Held {
        fn drop(&mut self) {
            #[cfg(debug_assertions)]
            dynamic::note_release(self.token);
        }
    }

    /// Records the acquisition of a lock of class `name` for `key`,
    /// validating it against the locks this thread already holds. In
    /// debug builds a rank inversion or exclusive-class double
    /// acquisition aborts immediately with a diagnostic; in release
    /// builds this is a no-op.
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_util::sync::lockrank;
    ///
    /// let url = lockrank::acquire("url", "url:http://x/");
    /// let user = lockrank::acquire("user", "user:fred");
    /// drop(user);
    /// drop(url);
    /// ```
    pub fn acquire(name: &'static str, key: &str) -> Held {
        #[cfg(debug_assertions)]
        {
            // aide-lint: allow(no-panic): unknown class names are a checker-integration bug, not a runtime condition
            let class = class(name).unwrap_or_else(|| panic!("unknown lock class {name:?}"));
            Held {
                token: dynamic::note_acquire(class, key),
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (name, key);
            Held {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn parallel_map_orders_results() {
        let items: Vec<usize> = (0..97).collect();
        let serial = parallel_map(&items, 1, |i, &x| i * 1000 + x);
        for workers in [2, 3, 8, 200] {
            assert_eq!(parallel_map(&items, workers, |i, &x| i * 1000 + x), serial);
        }
    }

    #[test]
    fn parallel_map_empty_and_tiny() {
        let none: Vec<u8> = Vec::new();
        assert!(parallel_map(&none, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[9], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn parallel_map_actually_runs_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        parallel_map(&items, 4, |_, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) >= 2, "no overlap observed");
    }

    /// Runs `f` on its own thread so a panicking lock-order check cannot
    /// pollute this thread's held-lock stack for later tests.
    fn on_thread(f: impl FnOnce() + Send + 'static) -> std::thread::Result<()> {
        std::thread::spawn(f).join()
    }

    #[test]
    fn lockrank_accepts_documented_order() {
        on_thread(|| {
            let f = lockrank::acquire("flight", "diff:k");
            drop(f);
            let url = lockrank::acquire("url", "url:http://x/");
            let user = lockrank::acquire("user", "user:fred");
            let sched = lockrank::acquire("sched", "sched:state");
            let wal = lockrank::acquire("wal", "wal:gate");
            let store = lockrank::acquire("store", "store:shard:7");
            let s1 = lockrank::acquire("structure", "shard:3");
            let s2 = lockrank::acquire("structure", "shard:4");
            drop((s1, s2, store, wal, sched, user, url));
        })
        .unwrap();
    }

    #[test]
    fn lockrank_release_unwinds_exclusivity() {
        on_thread(|| {
            for i in 0..3 {
                let _g = lockrank::acquire("url", &format!("url:http://h{i}/"));
            }
        })
        .unwrap();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lockrank_rejects_inversion() {
        let r = on_thread(|| {
            let _user = lockrank::acquire("user", "user:fred");
            let _url = lockrank::acquire("url", "url:http://x/");
        });
        assert!(r.is_err(), "user-then-url must abort in debug builds");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn lockrank_rejects_double_exclusive() {
        let r = on_thread(|| {
            let _a = lockrank::acquire("url", "url:http://a/");
            let _b = lockrank::acquire("url", "url:http://b/");
        });
        assert!(
            r.is_err(),
            "two URL locks at once must abort in debug builds"
        );
    }

    #[test]
    fn lockrank_structure_is_shared() {
        on_thread(|| {
            let _a = lockrank::acquire("structure", "shard:0");
            let _b = lockrank::acquire("structure", "shard:1");
        })
        .unwrap();
    }

    #[test]
    fn lockrank_table_is_sorted_and_named() {
        let mut prev = 0;
        for c in lockrank::TABLE {
            assert!(c.rank >= prev, "table must be rank-sorted");
            prev = c.rank;
            assert!(lockrank::class(c.name).is_some());
        }
        assert!(lockrank::class("nonesuch").is_none());
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock usable after a holder panicked");
    }
}
