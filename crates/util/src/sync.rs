//! Poison-free synchronization primitives.
//!
//! Thin wrappers over `std::sync` with `parking_lot`-style ergonomics:
//! `lock()` / `read()` / `write()` return guards directly instead of a
//! `LockResult`. A panic while holding a lock poisons the underlying
//! `std` primitive; these wrappers recover the guard anyway, because all
//! guarded state in this codebase stays structurally valid across panics
//! (counters, maps of immutable values) and the alternative — unwrapping
//! at every call site — turns one panicking thread into a cascade.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose guard access never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose guard access never fails.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock usable after a holder panicked");
    }
}
