//! Content checksums for change detection.
//!
//! URL-minder "uses a checksum of the content of a page, so it can detect
//! changes in pages that do not provide a `Last-Modified` date, such as
//! output from CGI scripts" (§2.1); `w3new` falls back to the same trick.
//! This module provides the two checksums AIDE components use: CRC-32
//! (IEEE polynomial, as `cksum` would have produced) and 64-bit FNV-1a for
//! hash-table keys such as diff-cache entries.

/// Combined page checksum: length plus CRC, the fields a 1995 `cksum`
/// emitted, which together make accidental collisions on page content
/// vanishingly rare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageChecksum {
    /// CRC-32 (IEEE) of the content.
    pub crc: u32,
    /// Content length in bytes.
    pub len: u64,
}

impl PageChecksum {
    /// Computes the checksum of `content`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_util::checksum::PageChecksum;
    ///
    /// let a = PageChecksum::of(b"<HTML>hello</HTML>");
    /// let b = PageChecksum::of(b"<HTML>hello!</HTML>");
    /// assert_ne!(a, b);
    /// assert_eq!(a, PageChecksum::of(b"<HTML>hello</HTML>"));
    /// ```
    pub fn of(content: &[u8]) -> PageChecksum {
        PageChecksum {
            crc: crc32(content),
            len: content.len() as u64,
        }
    }
}

/// CRC-32 lookup table for the IEEE 802.3 polynomial (reflected 0xEDB88320).
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// Computes the CRC-32 (IEEE) of `data`.
///
/// # Examples
///
/// ```
/// // The catalogued check value for "123456789".
/// assert_eq!(aide_util::checksum::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Computes the 64-bit FNV-1a hash of `data`.
///
/// Used for in-memory cache keys, not for content comparison.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Incremental FNV-1a hasher for composite keys.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xCBF2_9CE4_8422_2325)
    }
}

impl Fnv1a {
    /// Creates a new hasher with the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Returns the current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo").update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn page_checksum_detects_single_byte_flip() {
        let base = b"<HTML><BODY>Count: 41</BODY></HTML>".to_vec();
        let mut flipped = base.clone();
        flipped[20] = b'2';
        assert_ne!(PageChecksum::of(&base), PageChecksum::of(&flipped));
    }

    #[test]
    fn page_checksum_length_disambiguates() {
        let a = PageChecksum::of(b"xy");
        let b = PageChecksum::of(b"xyz");
        assert_ne!(a.len, b.len);
    }
}
