//! A virtual filesystem seam for durable storage.
//!
//! The storage engine (`aide-store`) never touches `std::fs` directly: it
//! goes through the [`Vfs`] trait, which has three implementations:
//!
//! - `RealVfs` (in `aide-store`, the one module allowed to use `std::fs`)
//!   for production deployments;
//! - [`MemVfs`] here: a plain in-memory filesystem where every write is
//!   immediately durable — the fast deterministic backend for equivalence
//!   tests and benches that do not care about crashes;
//! - [`FaultVfs`] here: an in-memory filesystem with an explicit
//!   *durable/volatile* split and a scripted fault model in the spirit of
//!   simweb's `FaultPlan` — torn writes, short reads, silently lost
//!   fsyncs, and a crash-after-N-ops kill point. The crash-recovery suite
//!   enumerates every kill point, calls [`FaultVfs::crash_and_revive`],
//!   reopens the store, and asserts prefix consistency.
//!
//! Paths are plain `/`-separated relative strings (the store composes
//! them itself: `shard_03/wal`); the trait deliberately has no notion of
//! current directory, permissions, or symlinks. Durability is modeled
//! strictly: nothing written through [`FaultVfs`] survives a crash until
//! [`Vfs::sync`] succeeds on that path, which is exactly the contract a
//! write-ahead log must assume of a POSIX file.

use crate::checksum::fnv1a64;
use crate::rng::Rng;
use crate::sync::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Why a [`Vfs`] operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfsErrorKind {
    /// The path does not exist.
    NotFound,
    /// The backend reported an I/O failure (real or injected disk error).
    Io,
    /// A scripted fault fired: the simulated process is "dead" until the
    /// harness calls [`FaultVfs::crash_and_revive`].
    Injected,
}

/// A [`Vfs`] operation failure: which path, what kind, and a detail
/// message suitable for wrapping into `RepoError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfsError {
    /// What class of failure occurred.
    pub kind: VfsErrorKind,
    /// The path the operation targeted.
    pub path: String,
    /// Human-readable detail (backend message or injection site).
    pub detail: String,
}

impl VfsError {
    /// Builds an error for `path`.
    pub fn new(kind: VfsErrorKind, path: &str, detail: impl Into<String>) -> VfsError {
        VfsError {
            kind,
            path: path.to_string(),
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`VfsErrorKind::NotFound`] error.
    pub fn not_found(path: &str) -> VfsError {
        VfsError::new(VfsErrorKind::NotFound, path, "no such file")
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            VfsErrorKind::NotFound => "not found",
            VfsErrorKind::Io => "i/o error",
            VfsErrorKind::Injected => "injected fault",
        };
        write!(f, "{}: {} ({})", self.path, kind, self.detail)
    }
}

impl std::error::Error for VfsError {}

/// Result alias for [`Vfs`] operations.
pub type VfsResult<T> = Result<T, VfsError>;

/// The filesystem operations the storage engine needs, and no more.
///
/// All methods take `&self`: implementations are internally synchronized
/// and callers provide higher-level ordering (the store serializes
/// per-shard mutation under its own lock). The contract mirrors POSIX
/// where it matters for durability:
///
/// - [`append`](Vfs::append) extends a file (creating it if absent) but
///   guarantees nothing about what survives a crash;
/// - [`sync`](Vfs::sync) is the only durability point — after it returns
///   `Ok`, the file's current bytes survive a crash (a lying disk is
///   modeled by [`FaultVfs`]'s fsync-loss fault);
/// - [`read_range`](Vfs::read_range) may return *fewer* bytes than asked
///   (a short read); callers that need exactness must loop.
pub trait Vfs: Send + Sync {
    /// Reads the whole file.
    fn read(&self, path: &str) -> VfsResult<Vec<u8>>;

    /// Reads up to `len` bytes starting at `offset`. Returns the bytes
    /// actually available, which may be fewer than `len` (short read or
    /// end of file); an empty result at a valid offset means end of file.
    fn read_range(&self, path: &str, offset: u64, len: usize) -> VfsResult<Vec<u8>>;

    /// Appends `data` to the file, creating it if absent.
    fn append(&self, path: &str, data: &[u8]) -> VfsResult<()>;

    /// Truncates the file to `len` bytes (used by recovery to drop a torn
    /// tail). Truncating a missing file is an error.
    fn truncate(&self, path: &str, len: u64) -> VfsResult<()>;

    /// Forces the file's current contents to durable storage.
    fn sync(&self, path: &str) -> VfsResult<()>;

    /// Removes the file. Removing a missing file is not an error (returns
    /// `Ok(false)`).
    fn remove(&self, path: &str) -> VfsResult<bool>;

    /// Lists the file names (not full paths, no directories) directly
    /// inside `dir`, sorted. A missing directory lists as empty.
    fn list(&self, dir: &str) -> VfsResult<Vec<String>>;

    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &str) -> VfsResult<()>;

    /// The file's current length in bytes, or `None` if it is absent.
    fn len(&self, path: &str) -> VfsResult<Option<u64>>;
}

fn list_files(files: &BTreeMap<String, Vec<u8>>, dir: &str) -> Vec<String> {
    let prefix = if dir.is_empty() || dir.ends_with('/') {
        dir.to_string()
    } else {
        format!("{dir}/")
    };
    files
        .range(prefix.clone()..)
        .take_while(|(p, _)| p.starts_with(&prefix))
        .filter_map(|(p, _)| {
            let rest = &p[prefix.len()..];
            if rest.is_empty() || rest.contains('/') {
                None
            } else {
                Some(rest.to_string())
            }
        })
        .collect()
}

/// An in-memory [`Vfs`] where every write is immediately durable and
/// nothing ever fails. The reference backend for equivalence tests.
///
/// # Examples
///
/// ```
/// use aide_util::vfs::{MemVfs, Vfs};
///
/// let fs = MemVfs::new();
/// fs.append("dir/a", b"hello").unwrap();
/// fs.append("dir/a", b" world").unwrap();
/// assert_eq!(fs.read("dir/a").unwrap(), b"hello world");
/// assert_eq!(fs.list("dir").unwrap(), vec!["a".to_string()]);
/// ```
#[derive(Default)]
pub struct MemVfs {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemVfs {
    /// Creates an empty in-memory filesystem.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// Creates an empty in-memory filesystem behind an `Arc`.
    pub fn shared() -> Arc<MemVfs> {
        Arc::new(MemVfs::new())
    }
}

impl Vfs for MemVfs {
    fn read(&self, path: &str) -> VfsResult<Vec<u8>> {
        self.files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| VfsError::not_found(path))
    }

    fn read_range(&self, path: &str, offset: u64, len: usize) -> VfsResult<Vec<u8>> {
        let files = self.files.lock();
        let data = files.get(path).ok_or_else(|| VfsError::not_found(path))?;
        Ok(slice_range(data, offset, len))
    }

    fn append(&self, path: &str, data: &[u8]) -> VfsResult<()> {
        self.files
            .lock()
            .entry(path.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> VfsResult<()> {
        let mut files = self.files.lock();
        let data = files
            .get_mut(path)
            .ok_or_else(|| VfsError::not_found(path))?;
        data.truncate(len.min(data.len() as u64) as usize);
        Ok(())
    }

    fn sync(&self, _path: &str) -> VfsResult<()> {
        Ok(())
    }

    fn remove(&self, path: &str) -> VfsResult<bool> {
        Ok(self.files.lock().remove(path).is_some())
    }

    fn list(&self, dir: &str) -> VfsResult<Vec<String>> {
        Ok(list_files(&self.files.lock(), dir))
    }

    fn create_dir_all(&self, _dir: &str) -> VfsResult<()> {
        Ok(())
    }

    fn len(&self, path: &str) -> VfsResult<Option<u64>> {
        Ok(self.files.lock().get(path).map(|d| d.len() as u64))
    }
}

fn slice_range(data: &[u8], offset: u64, len: usize) -> Vec<u8> {
    let start = offset.min(data.len() as u64) as usize;
    let end = start.saturating_add(len).min(data.len());
    data[start..end].to_vec()
}

/// The scripted fault model for [`FaultVfs`]. All decisions are pure
/// functions of `(seed, path, per-kind op counter)`, so a given script
/// replays identically — the property the CI crash-determinism step
/// relies on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultScript {
    /// Seed for every injection draw.
    pub seed: u64,
    /// Kill point: the N-th durability op (append/truncate/remove/sync,
    /// zero-based) fails with [`VfsErrorKind::Injected`] and the
    /// filesystem plays dead until [`FaultVfs::crash_and_revive`].
    pub crash_after_ops: Option<u64>,
    /// If the kill point lands on an append, persist a seeded *prefix* of
    /// the data to the volatile layer first — a torn write.
    pub torn_final_write: bool,
    /// Probability a `read_range` returns fewer bytes than asked.
    pub short_read_rate: f64,
    /// Probability a `sync` returns `Ok` without actually making the file
    /// durable — the lying-disk model.
    pub fsync_loss_rate: f64,
}

impl FaultScript {
    /// A script that never injects anything (a durable/volatile split
    /// with faithfully honest fsync).
    pub fn honest(seed: u64) -> FaultScript {
        FaultScript {
            seed,
            crash_after_ops: None,
            torn_final_write: false,
            short_read_rate: 0.0,
            fsync_loss_rate: 0.0,
        }
    }

    /// Sets the kill point (builder style).
    pub fn crash_after(mut self, ops: u64) -> FaultScript {
        self.crash_after_ops = Some(ops);
        self
    }

    /// Makes the dying write torn (builder style).
    pub fn torn(mut self) -> FaultScript {
        self.torn_final_write = true;
        self
    }

    /// Sets the short-read rate (builder style).
    pub fn short_reads(mut self, rate: f64) -> FaultScript {
        self.short_read_rate = rate;
        self
    }

    /// Sets the fsync-loss rate (builder style).
    pub fn fsync_loss(mut self, rate: f64) -> FaultScript {
        self.fsync_loss_rate = rate;
        self
    }
}

/// Counters of what a [`FaultVfs`] has done and injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultVfsStats {
    /// Durability ops performed (append/truncate/remove/sync), including
    /// the one that died at the kill point.
    pub durability_ops: u64,
    /// `read_range` calls served.
    pub range_reads: u64,
    /// Syncs that silently lost data (fsync-loss fault).
    pub lost_syncs: u64,
    /// Appends that persisted only a prefix (torn-write fault).
    pub torn_writes: u64,
    /// Range reads that returned fewer bytes than asked.
    pub short_reads: u64,
    /// Crashes simulated via [`FaultVfs::crash_and_revive`].
    pub crashes: u64,
}

struct FaultState {
    /// What survives a crash: the last synced image of each file.
    durable: BTreeMap<String, Vec<u8>>,
    /// The live view the process sees: durable plus unsynced writes.
    volatile: BTreeMap<String, Vec<u8>>,
    /// Paths whose volatile content differs from durable (sync targets).
    dirty: BTreeSet<String>,
    script: FaultScript,
    stats: FaultVfsStats,
    /// Set once the kill point fires; every durability op fails until
    /// `crash_and_revive`.
    dead: bool,
}

/// An in-memory [`Vfs`] with an explicit durable/volatile split and a
/// deterministic fault script — the crash-test double for `RealVfs`.
///
/// Writes land in the volatile layer; only [`Vfs::sync`] promotes a file
/// to the durable layer. [`FaultVfs::crash_and_revive`] discards the
/// volatile layer (simulating a power cut) and clears the kill point so
/// the harness can reopen the store and inspect what survived.
///
/// # Examples
///
/// ```
/// use aide_util::vfs::{FaultScript, FaultVfs, Vfs};
///
/// let fs = FaultVfs::new(FaultScript::honest(7));
/// fs.append("wal", b"record-1").unwrap();
/// fs.sync("wal").unwrap();
/// fs.append("wal", b"record-2").unwrap(); // never synced
/// fs.crash_and_revive();
/// assert_eq!(fs.read("wal").unwrap(), b"record-1"); // unsynced tail gone
/// ```
pub struct FaultVfs {
    state: Mutex<FaultState>,
}

impl FaultVfs {
    /// Creates an empty filesystem running `script`.
    pub fn new(script: FaultScript) -> FaultVfs {
        FaultVfs {
            state: Mutex::new(FaultState {
                durable: BTreeMap::new(),
                volatile: BTreeMap::new(),
                dirty: BTreeSet::new(),
                script,
                stats: FaultVfsStats::default(),
                dead: false,
            }),
        }
    }

    /// Creates an empty filesystem behind an `Arc`.
    pub fn shared(script: FaultScript) -> Arc<FaultVfs> {
        Arc::new(FaultVfs::new(script))
    }

    /// Simulates a power cut and a restart: the volatile layer is reset
    /// to the durable image, the dead flag and kill point are cleared.
    /// The store can then be reopened over this same filesystem to
    /// exercise recovery.
    pub fn crash_and_revive(&self) {
        let mut st = self.state.lock();
        st.volatile = st.durable.clone();
        st.dirty.clear();
        st.dead = false;
        st.script.crash_after_ops = None;
        st.stats.crashes += 1;
    }

    /// Replaces the fault script (counters keep running).
    pub fn set_script(&self, script: FaultScript) {
        self.state.lock().script = script;
    }

    /// Injection and traffic counters so far.
    pub fn stats(&self) -> FaultVfsStats {
        self.state.lock().stats
    }

    /// Durability ops performed so far — the kill-point enumeration space
    /// for the crash suite.
    pub fn durability_ops(&self) -> u64 {
        self.state.lock().stats.durability_ops
    }

    /// A deterministic per-decision generator: independent stream per
    /// `(seed, path, op-kind, counter)`.
    fn draw(script: &FaultScript, path: &str, kind: u64, counter: u64) -> Rng {
        let mut h = script.seed ^ fnv1a64(path.as_bytes());
        h = h
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(counter)
            .rotate_left(29)
            ^ kind;
        Rng::new(h)
    }

    /// Charges one durability op; returns `Err` if this op is the kill
    /// point or the filesystem is already dead. On the kill point, `torn`
    /// receives the seeded keep-fraction if the dying write should tear.
    fn charge_op(st: &mut FaultState, path: &str, op: &str) -> Result<Option<f64>, VfsError> {
        if st.dead {
            return Err(VfsError::new(
                VfsErrorKind::Injected,
                path,
                format!("{op} after simulated crash"),
            ));
        }
        let n = st.stats.durability_ops;
        st.stats.durability_ops += 1;
        if st.script.crash_after_ops == Some(n) {
            st.dead = true;
            let torn = if st.script.torn_final_write && op == "append" {
                Some(Self::draw(&st.script, path, 1, n).f64())
            } else {
                None
            };
            if torn.is_some() {
                st.stats.torn_writes += 1;
            }
            return if let Some(frac) = torn {
                Ok(Some(frac))
            } else {
                Err(VfsError::new(
                    VfsErrorKind::Injected,
                    path,
                    format!("kill point at {op} op {n}"),
                ))
            };
        }
        Ok(None)
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &str) -> VfsResult<Vec<u8>> {
        self.state
            .lock()
            .volatile
            .get(path)
            .cloned()
            .ok_or_else(|| VfsError::not_found(path))
    }

    fn read_range(&self, path: &str, offset: u64, len: usize) -> VfsResult<Vec<u8>> {
        let mut st = self.state.lock();
        st.stats.range_reads += 1;
        let n = st.stats.range_reads;
        let rate = st.script.short_read_rate;
        let short = rate > 0.0 && Self::draw(&st.script, path, 2, n).chance(rate);
        let data = st
            .volatile
            .get(path)
            .ok_or_else(|| VfsError::not_found(path))?;
        let mut out = slice_range(data, offset, len);
        if short && !out.is_empty() {
            let keep = (out.len() as f64 * Self::draw(&st.script, path, 3, n).f64()) as usize;
            out.truncate(keep);
            st.stats.short_reads += 1;
        }
        Ok(out)
    }

    fn append(&self, path: &str, data: &[u8]) -> VfsResult<()> {
        let mut st = self.state.lock();
        match Self::charge_op(&mut st, path, "append")? {
            Some(frac) => {
                // Torn write: a prefix reaches the volatile layer, then
                // the "process" dies mid-call.
                let keep = (data.len() as f64 * frac) as usize;
                st.volatile
                    .entry(path.to_string())
                    .or_default()
                    .extend_from_slice(&data[..keep]);
                st.dirty.insert(path.to_string());
                Err(VfsError::new(
                    VfsErrorKind::Injected,
                    path,
                    format!("torn write: {keep} of {} bytes", data.len()),
                ))
            }
            None => {
                st.volatile
                    .entry(path.to_string())
                    .or_default()
                    .extend_from_slice(data);
                st.dirty.insert(path.to_string());
                Ok(())
            }
        }
    }

    fn truncate(&self, path: &str, len: u64) -> VfsResult<()> {
        let mut st = self.state.lock();
        Self::charge_op(&mut st, path, "truncate")?;
        let data = st
            .volatile
            .get_mut(path)
            .ok_or_else(|| VfsError::not_found(path))?;
        data.truncate(len.min(data.len() as u64) as usize);
        st.dirty.insert(path.to_string());
        Ok(())
    }

    fn sync(&self, path: &str) -> VfsResult<()> {
        let mut st = self.state.lock();
        Self::charge_op(&mut st, path, "sync")?;
        let n = st.stats.durability_ops;
        let rate = st.script.fsync_loss_rate;
        if rate > 0.0 && Self::draw(&st.script, path, 4, n).chance(rate) {
            // The disk lies: report success, persist nothing.
            st.stats.lost_syncs += 1;
            return Ok(());
        }
        match st.volatile.get(path).cloned() {
            Some(data) => {
                st.durable.insert(path.to_string(), data);
            }
            None => {
                st.durable.remove(path);
            }
        }
        st.dirty.remove(path);
        Ok(())
    }

    fn remove(&self, path: &str) -> VfsResult<bool> {
        let mut st = self.state.lock();
        Self::charge_op(&mut st, path, "remove")?;
        let existed = st.volatile.remove(path).is_some();
        // Removal is durable once the *directory* is synced; this model
        // folds that into the remove itself (conservative for recovery:
        // a removed-but-durable file never resurrects in our layout
        // because compaction deletes oldest-first).
        st.durable.remove(path);
        st.dirty.remove(path);
        Ok(existed)
    }

    fn list(&self, dir: &str) -> VfsResult<Vec<String>> {
        Ok(list_files(&self.state.lock().volatile, dir))
    }

    fn create_dir_all(&self, _dir: &str) -> VfsResult<()> {
        Ok(())
    }

    fn len(&self, path: &str) -> VfsResult<Option<u64>> {
        Ok(self.state.lock().volatile.get(path).map(|d| d.len() as u64))
    }
}

/// Reads exactly `len` bytes at `offset`, looping over short reads. Fails
/// with [`VfsErrorKind::Io`] if the file ends (or reads stop making
/// progress) before `len` bytes arrive.
pub fn read_exact(vfs: &dyn Vfs, path: &str, offset: u64, len: usize) -> VfsResult<Vec<u8>> {
    let mut out = Vec::with_capacity(len);
    let mut stalls = 0u32;
    while out.len() < len {
        let chunk = vfs.read_range(path, offset + out.len() as u64, len - out.len())?;
        if chunk.is_empty() {
            stalls += 1;
            // End of file, or a short read that yielded nothing: give a
            // few retries (the fault model can short-read repeatedly),
            // then report the truncation.
            if stalls > 8 {
                return Err(VfsError::new(
                    VfsErrorKind::Io,
                    path,
                    format!(
                        "short file: wanted {len} bytes at {offset}, got {}",
                        out.len()
                    ),
                ));
            }
        } else {
            stalls = 0;
            out.extend_from_slice(&chunk);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_roundtrips() {
        let fs = MemVfs::new();
        assert_eq!(fs.len("a").unwrap(), None);
        fs.append("a", b"one").unwrap();
        fs.append("a", b"two").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"onetwo");
        assert_eq!(fs.read_range("a", 3, 3).unwrap(), b"two");
        assert_eq!(fs.read_range("a", 3, 99).unwrap(), b"two");
        assert_eq!(fs.read_range("a", 99, 4).unwrap(), b"");
        fs.truncate("a", 3).unwrap();
        assert_eq!(fs.read("a").unwrap(), b"one");
        assert_eq!(fs.len("a").unwrap(), Some(3));
        assert!(fs.remove("a").unwrap());
        assert!(!fs.remove("a").unwrap());
        assert_eq!(fs.read("a").unwrap_err().kind, VfsErrorKind::NotFound);
    }

    #[test]
    fn mem_vfs_lists_only_direct_children() {
        let fs = MemVfs::new();
        fs.append("root/a", b"x").unwrap();
        fs.append("root/b", b"x").unwrap();
        fs.append("root/sub/c", b"x").unwrap();
        fs.append("other/d", b"x").unwrap();
        assert_eq!(fs.list("root").unwrap(), vec!["a", "b"]);
        assert_eq!(fs.list("root/sub").unwrap(), vec!["c"]);
        assert!(fs.list("missing").unwrap().is_empty());
    }

    #[test]
    fn fault_vfs_unsynced_writes_die_in_a_crash() {
        let fs = FaultVfs::new(FaultScript::honest(1));
        fs.append("wal", b"aaa").unwrap();
        fs.sync("wal").unwrap();
        fs.append("wal", b"bbb").unwrap();
        fs.crash_and_revive();
        assert_eq!(fs.read("wal").unwrap(), b"aaa");
        // A never-synced file vanishes entirely.
        fs.append("tmp", b"x").unwrap();
        fs.crash_and_revive();
        assert_eq!(fs.read("tmp").unwrap_err().kind, VfsErrorKind::NotFound);
    }

    #[test]
    fn kill_point_fires_once_and_plays_dead() {
        let fs = FaultVfs::new(FaultScript::honest(2).crash_after(1));
        fs.append("f", b"one").unwrap(); // op 0
        let err = fs.append("f", b"two").unwrap_err(); // op 1: kill point
        assert_eq!(err.kind, VfsErrorKind::Injected);
        // Dead until revived: further durability ops fail, reads still work.
        assert_eq!(
            fs.append("f", b"x").unwrap_err().kind,
            VfsErrorKind::Injected
        );
        assert_eq!(fs.read("f").unwrap(), b"one");
        fs.crash_and_revive();
        // Nothing was synced, so the crash erased everything.
        assert_eq!(fs.read("f").unwrap_err().kind, VfsErrorKind::NotFound);
        fs.append("f", b"fresh").unwrap();
        assert_eq!(fs.read("f").unwrap(), b"fresh");
    }

    #[test]
    fn torn_write_persists_a_strict_prefix() {
        let payload = vec![7u8; 1000];
        for seed in 0..20 {
            let fs = FaultVfs::new(FaultScript::honest(seed).crash_after(1).torn());
            fs.append("f", b"base").unwrap();
            let err = fs.append("f", &payload).unwrap_err();
            assert_eq!(err.kind, VfsErrorKind::Injected);
            let now = fs.read("f").unwrap();
            assert!(now.len() >= 4 && now.len() < 4 + payload.len());
            assert!(now.starts_with(b"base"));
        }
    }

    #[test]
    fn fsync_loss_silently_drops_durability() {
        let fs = FaultVfs::new(FaultScript::honest(3).fsync_loss(1.0));
        fs.append("f", b"data").unwrap();
        fs.sync("f").unwrap(); // reports OK, persists nothing
        fs.crash_and_revive();
        assert_eq!(fs.read("f").unwrap_err().kind, VfsErrorKind::NotFound);
        assert_eq!(fs.stats().lost_syncs, 1);
    }

    #[test]
    fn short_reads_are_injected_and_read_exact_recovers() {
        let fs = FaultVfs::new(FaultScript::honest(4).short_reads(0.7));
        fs.append("f", &vec![9u8; 4096]).unwrap();
        let got = read_exact(&fs, "f", 100, 2000).unwrap();
        assert_eq!(got, vec![9u8; 2000]);
        assert!(fs.stats().short_reads > 0, "rate 0.7 over many reads");
    }

    #[test]
    fn read_exact_reports_truncation() {
        let fs = MemVfs::new();
        fs.append("f", b"tiny").unwrap();
        let err = read_exact(&fs, "f", 0, 100).unwrap_err();
        assert_eq!(err.kind, VfsErrorKind::Io);
    }

    #[test]
    fn scripts_replay_deterministically() {
        let run = |seed| {
            let fs = FaultVfs::new(FaultScript::honest(seed).short_reads(0.5).fsync_loss(0.3));
            for i in 0..50u8 {
                fs.append("f", &[i; 64]).unwrap();
                let _ = fs.sync("f");
                let _ = fs.read_range("f", (i as u64) * 3, 40);
            }
            fs.crash_and_revive();
            (fs.read("f").ok(), fs.stats())
        };
        assert_eq!(run(11), run(11));
        let ((a, sa), (b, sb)) = (run(11), run(12));
        assert!(a != b || sa != sb, "different seeds should diverge");
    }

    #[test]
    fn remove_is_durable_and_idempotent() {
        let fs = FaultVfs::new(FaultScript::honest(5));
        fs.append("f", b"x").unwrap();
        fs.sync("f").unwrap();
        assert!(fs.remove("f").unwrap());
        assert!(!fs.remove("f").unwrap());
        fs.crash_and_revive();
        assert_eq!(fs.read("f").unwrap_err().kind, VfsErrorKind::NotFound);
    }
}
