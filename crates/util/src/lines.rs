//! Line-splitting helpers shared by the diff and RCS crates.
//!
//! Both UNIX `diff` and RCS treat a file as a sequence of lines where the
//! final line may or may not end in a newline; that distinction must
//! survive a split/join round trip or RCS check-out would corrupt files.

/// Splits `text` into lines, each *retaining* its trailing `\n` if present.
///
/// Joining the result with no separator reproduces `text` exactly.
///
/// # Examples
///
/// ```
/// use aide_util::lines::split_keep_newlines;
///
/// let lines = split_keep_newlines("a\nb\nc");
/// assert_eq!(lines, vec!["a\n", "b\n", "c"]);
/// assert_eq!(lines.concat(), "a\nb\nc");
/// ```
pub fn split_keep_newlines(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            out.push(&text[start..=i]);
            start = i + 1;
        }
    }
    if start < text.len() {
        out.push(&text[start..]);
    }
    out
}

/// Splits `text` into lines *without* their newlines, recording whether the
/// text ended with a final newline.
///
/// # Examples
///
/// ```
/// use aide_util::lines::split_lines;
///
/// let (lines, trailing) = split_lines("a\nb\n");
/// assert_eq!(lines, vec!["a", "b"]);
/// assert!(trailing);
/// ```
pub fn split_lines(text: &str) -> (Vec<&str>, bool) {
    if text.is_empty() {
        return (Vec::new(), false);
    }
    let trailing = text.ends_with('\n');
    let body = if trailing {
        &text[..text.len() - 1]
    } else {
        text
    };
    (body.split('\n').collect(), trailing)
}

/// Joins lines produced by [`split_lines`] back into text.
pub fn join_lines(lines: &[impl AsRef<str>], trailing_newline: bool) -> String {
    let mut out = String::new();
    for (i, l) in lines.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(l.as_ref());
    }
    if trailing_newline && !lines.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_newlines_roundtrip() {
        for text in ["", "a", "a\n", "a\nb", "a\nb\n", "\n", "\n\n", "a\n\nb"] {
            assert_eq!(
                split_keep_newlines(text).concat(),
                text,
                "roundtrip {text:?}"
            );
        }
    }

    #[test]
    fn split_join_roundtrip() {
        for text in ["", "a", "a\n", "a\nb", "a\nb\n", "\n", "\n\n"] {
            let (lines, trailing) = split_lines(text);
            assert_eq!(join_lines(&lines, trailing), text, "roundtrip {text:?}");
        }
    }

    #[test]
    fn empty_text_has_no_lines() {
        assert!(split_keep_newlines("").is_empty());
        let (lines, trailing) = split_lines("");
        assert!(lines.is_empty());
        assert!(!trailing);
    }

    #[test]
    fn lone_newline_is_one_empty_line() {
        let (lines, trailing) = split_lines("\n");
        assert_eq!(lines, vec![""]);
        assert!(trailing);
    }
}
