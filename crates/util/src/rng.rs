//! A small deterministic PRNG.
//!
//! Xorshift64* seeded through splitmix64. Statistically fine for workload
//! generation and fault-plan draws, stable forever (unlike external
//! crates whose streams shift between versions), and trivially cloneable
//! for forked substreams. Lives in `util` so both the workload drivers
//! and the simulated Web's fault injection draw from the same generator
//! (the determinism invariant: one algorithm, one stream shape,
//! everywhere).

/// Deterministic pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use aide_util::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Rng {
        // splitmix64 scrambles weak seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng { state: z | 1 }
    }

    /// Forks an independent substream (e.g. one per URL).
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping (tiny bias acceptable for
        // workloads).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform usize in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a random element of a nonempty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Zipf-like rank sample over `n` items with exponent ~1: small ranks
    /// are much more likely — the classic popularity skew of web pages.
    pub fn zipf(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Inverse-CDF approximation for s=1: harmonic weights.
        let h = (n as f64).ln() + 0.5772;
        let target = self.f64() * h;
        let r = target.exp().floor() as usize;
        r.min(n - 1)
    }

    /// Geometric-ish sample: number of failures before success with
    /// probability `p`, capped at `max`.
    pub fn geometric(&mut self, p: f64, max: u64) -> u64 {
        let mut k = 0;
        while k < max && !self.chance(p) {
            k += 1;
        }
        k
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_works() {
        let mut r = Rng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn below_bounds() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        for _ in 0..100 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(5);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Rng::new(6);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_to_small_ranks() {
        let mut r = Rng::new(8);
        let mut low = 0;
        for _ in 0..10_000 {
            if r.zipf(1000) < 10 {
                low += 1;
            }
        }
        // Zipf s=1 over 1000 items puts a large share of mass on the top
        // ten ranks.
        assert!(low > 2_000, "low-rank mass {low}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely to be identity"
        );
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::new(10);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn geometric_capped() {
        let mut r = Rng::new(11);
        for _ in 0..100 {
            assert!(r.geometric(0.01, 5) <= 5);
        }
        for _ in 0..100 {
            assert_eq!(r.geometric(1.0, 5), 0);
        }
    }
}
