//! Shared substrate utilities for the AIDE reproduction.
//!
//! This crate holds the small pieces every other crate needs and that the
//! 1996 environment provided for free:
//!
//! - [`time`]: a virtual clock and timestamp/duration types. The paper's
//!   tools run off wall-clock time (`Last-Modified` headers, RCS datestamps,
//!   w3newer thresholds like `2d` or `12h`); experiments here run against a
//!   deterministic simulated clock instead.
//! - [`checksum`]: page-content checksums (CRC-32 and FNV-1a). `w3new` /
//!   `w3newer` checksum whole pages when no `Last-Modified` date is
//!   available, as URL-minder did.
//! - [`pattern`]: a small regular-expression engine covering the perl
//!   subset that w3newer configuration files use (Table 1 of the paper).
//! - [`robots`]: the robot exclusion protocol (`robots.txt`), which
//!   w3newer voluntarily obeys (§3.1).
//! - [`lines`]: line splitting helpers shared by the diff and RCS crates.
//! - [`sync`]: poison-free `Mutex`/`RwLock` wrappers shared by every
//!   concurrent component (the build environment is offline, so no
//!   external lock crate is available).
//! - [`rng`]: the deterministic xorshift64* PRNG shared by the workload
//!   generators and the simulated Web's fault injection.
//! - [`vfs`]: the virtual-filesystem seam the storage engine writes
//!   through, with in-memory and fault-injecting implementations (the
//!   real-filesystem one lives in `aide-store`, the only module allowed
//!   to touch `std::fs`).

pub mod checksum;
pub mod lines;
pub mod pattern;
pub mod rng;
pub mod robots;
pub mod sync;
pub mod time;
pub mod vfs;

pub use checksum::{crc32, fnv1a64, PageChecksum};
pub use pattern::Pattern;
pub use rng::Rng;
pub use robots::RobotsTxt;
pub use time::{Clock, Duration, Timestamp};
