//! The robot exclusion protocol (`/robots.txt`).
//!
//! §3.1 of the paper: a site "may disallow retrieval of this URL by
//! 'robots'... Currently, programs only voluntarily follow the 'robot
//! exclusion protocol', the convention that defines the use of
//! robots.txt. Although w3newer currently obeys this protocol, it is not
//! clear that it should". This module implements the 1994 convention
//! ([A Standard for Robot Exclusion]): `User-agent` record groups with
//! `Disallow` path prefixes, first matching group wins.
//!
//! [A Standard for Robot Exclusion]: http://web.nexor.co.uk/mak/doc/robots/norobots.html

/// A parsed `robots.txt` file.
///
/// # Examples
///
/// ```
/// use aide_util::robots::RobotsTxt;
///
/// let robots = RobotsTxt::parse(
///     "User-agent: *\nDisallow: /cgi-bin/\nDisallow: /private\n",
/// );
/// assert!(!robots.allows("w3newer", "/cgi-bin/counter"));
/// assert!(robots.allows("w3newer", "/public/index.html"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RobotsTxt {
    groups: Vec<Group>,
}

#[derive(Debug, Clone, Default)]
struct Group {
    agents: Vec<String>,
    disallow: Vec<String>,
}

impl RobotsTxt {
    /// Parses the text of a `robots.txt` file.
    ///
    /// Unknown fields and malformed lines are ignored, as the convention
    /// requires; an unparsable file therefore permits everything rather
    /// than locking robots out.
    pub fn parse(text: &str) -> RobotsTxt {
        let mut groups: Vec<Group> = Vec::new();
        let mut current: Option<Group> = None;
        // Per the 1994 convention, a blank line ends a record; consecutive
        // User-agent lines share one record.
        let mut last_was_agent = false;
        for raw in text.lines() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                if let Some(g) = current.take() {
                    if !g.agents.is_empty() {
                        groups.push(g);
                    }
                }
                last_was_agent = false;
                continue;
            }
            let Some(colon) = line.find(':') else {
                continue;
            };
            let field = line[..colon].trim().to_ascii_lowercase();
            let value = line[colon + 1..].trim().to_string();
            match field.as_str() {
                "user-agent" => {
                    if !last_was_agent {
                        if let Some(g) = current.take() {
                            if !g.agents.is_empty() {
                                groups.push(g);
                            }
                        }
                        current = Some(Group::default());
                    }
                    if let Some(g) = current.as_mut() {
                        g.agents.push(value.to_ascii_lowercase());
                    } else {
                        current = Some(Group {
                            agents: vec![value.to_ascii_lowercase()],
                            disallow: Vec::new(),
                        });
                    }
                    last_was_agent = true;
                }
                "disallow" => {
                    last_was_agent = false;
                    if let Some(g) = current.as_mut() {
                        // An empty Disallow means "allow everything".
                        if !value.is_empty() {
                            g.disallow.push(value);
                        }
                    }
                }
                _ => {
                    last_was_agent = false;
                }
            }
        }
        if let Some(g) = current.take() {
            if !g.agents.is_empty() {
                groups.push(g);
            }
        }
        RobotsTxt { groups }
    }

    /// An empty policy that allows everything.
    pub fn allow_all() -> RobotsTxt {
        RobotsTxt::default()
    }

    /// A policy that disallows all paths for all agents.
    pub fn deny_all() -> RobotsTxt {
        RobotsTxt {
            groups: vec![Group {
                agents: vec!["*".to_string()],
                disallow: vec!["/".to_string()],
            }],
        }
    }

    /// Returns whether `agent` may fetch `path`.
    ///
    /// The most specific matching `User-agent` group applies: an exact
    /// (substring) agent match takes precedence over the `*` group. Within
    /// the chosen group, any `Disallow` prefix match forbids the fetch.
    pub fn allows(&self, agent: &str, path: &str) -> bool {
        let agent = agent.to_ascii_lowercase();
        let specific = self.groups.iter().find(|g| {
            g.agents
                .iter()
                .any(|a| a != "*" && (agent.contains(a.as_str()) || a.contains(agent.as_str())))
        });
        let group = specific.or_else(|| {
            self.groups
                .iter()
                .find(|g| g.agents.iter().any(|a| a == "*"))
        });
        match group {
            None => true,
            Some(g) => !g.disallow.iter().any(|d| path.starts_with(d.as_str())),
        }
    }

    /// Returns true if the file contains no records at all.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_file_allows_all() {
        let r = RobotsTxt::parse("");
        assert!(r.allows("anybot", "/anything"));
        assert!(r.is_empty());
    }

    #[test]
    fn wildcard_group() {
        let r = RobotsTxt::parse("User-agent: *\nDisallow: /tmp/\n");
        assert!(!r.allows("w3newer", "/tmp/scratch.html"));
        assert!(r.allows("w3newer", "/docs/tmp.html"));
    }

    #[test]
    fn specific_agent_overrides_wildcard() {
        let r = RobotsTxt::parse(
            "User-agent: webcrawler\nDisallow: /\n\nUser-agent: *\nDisallow: /private/\n",
        );
        assert!(!r.allows("WebCrawler/1.0", "/index.html"));
        assert!(r.allows("w3newer", "/index.html"));
        assert!(!r.allows("w3newer", "/private/x"));
    }

    #[test]
    fn empty_disallow_allows_everything() {
        let r =
            RobotsTxt::parse("User-agent: friendlybot\nDisallow:\n\nUser-agent: *\nDisallow: /\n");
        assert!(r.allows("friendlybot", "/deep/page.html"));
        assert!(!r.allows("otherbot", "/deep/page.html"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let r = RobotsTxt::parse(
            "# keep robots out of cgi\nUser-agent: * # everyone\nDisallow: /cgi-bin/ # scripts\n",
        );
        assert!(!r.allows("bot", "/cgi-bin/test"));
    }

    #[test]
    fn shared_record_for_multiple_agents() {
        let r = RobotsTxt::parse("User-agent: alpha\nUser-agent: beta\nDisallow: /x/\n");
        assert!(!r.allows("alpha", "/x/1"));
        assert!(!r.allows("beta", "/x/1"));
        assert!(r.allows("gamma", "/x/1"));
    }

    #[test]
    fn blank_line_separates_records() {
        let r =
            RobotsTxt::parse("User-agent: a\nDisallow: /one/\n\nUser-agent: b\nDisallow: /two/\n");
        assert!(!r.allows("a", "/one/p"));
        assert!(r.allows("a", "/two/p"));
        assert!(!r.allows("b", "/two/p"));
        assert!(r.allows("b", "/one/p"));
    }

    #[test]
    fn deny_all_constructor() {
        let r = RobotsTxt::deny_all();
        assert!(!r.allows("anything", "/"));
        assert!(!r.allows("anything", "/a/b/c.html"));
    }

    #[test]
    fn malformed_lines_ignored() {
        let r = RobotsTxt::parse("garbage line\nUser-agent *\nDisallow: /x/\n");
        // "User-agent *" lacks a colon so no record exists; Disallow floats.
        assert!(r.allows("bot", "/x/p"));
    }
}
