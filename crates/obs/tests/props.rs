//! Property tests for the histogram implementation.
//!
//! Invariants:
//! - bucket bounds are strictly increasing (construction rejects
//!   anything else, and sorted-deduped generated bounds are accepted);
//! - every observation lands in exactly one bucket: the per-bucket
//!   totals always sum to `count`, and `sum` is the exact total of the
//!   observed values;
//! - each observation lands in the *correct* bucket (first bound `>=`
//!   value, else overflow), checked against a naive reference;
//! - snapshots are insensitive to recording order.

use aide_obs::MetricsRegistry;
use proptest::prelude::*;

/// Sorted, deduplicated, non-empty bounds.
fn bounds_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..10_000, 1..10).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// Reference bucketing: index of the first bound `>=` value, else the
/// overflow slot.
fn reference_bucket(bounds: &[u64], value: u64) -> usize {
    bounds
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(bounds.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucket_totals_preserve_count_and_sum(
        bounds in bounds_strategy(),
        values in proptest::collection::vec(0u64..20_000, 0..60),
    ) {
        let r = MetricsRegistry::new();
        for &v in &values {
            r.observe_with("h", v, &bounds);
        }
        let snap = r.snapshot();
        if values.is_empty() {
            prop_assert!(snap.histograms.is_empty() || snap.histograms["h"].count == 0);
        } else {
            let h = &snap.histograms["h"];
            prop_assert_eq!(h.bounds.clone(), bounds.clone(), "bounds preserved");
            prop_assert!(h.bounds.windows(2).all(|w| w[0] < w[1]), "bounds monotone");
            prop_assert_eq!(h.buckets.len(), bounds.len() + 1);
            prop_assert_eq!(h.buckets.iter().sum::<u64>(), values.len() as u64);
            prop_assert_eq!(h.count, values.len() as u64);
            prop_assert_eq!(h.sum, values.iter().sum::<u64>());
        }
    }

    #[test]
    fn observations_land_in_the_reference_bucket(
        bounds in bounds_strategy(),
        values in proptest::collection::vec(0u64..20_000, 1..60),
    ) {
        let r = MetricsRegistry::new();
        let mut want = vec![0u64; bounds.len() + 1];
        for &v in &values {
            r.observe_with("h", v, &bounds);
            want[reference_bucket(&bounds, v)] += 1;
        }
        prop_assert_eq!(r.snapshot().histograms["h"].buckets.clone(), want);
    }

    #[test]
    fn snapshot_is_recording_order_independent(
        bounds in bounds_strategy(),
        values in proptest::collection::vec(0u64..20_000, 1..40),
    ) {
        let fwd = MetricsRegistry::new();
        for &v in &values {
            fwd.observe_with("h", v, &bounds);
        }
        let rev = MetricsRegistry::new();
        for &v in values.iter().rev() {
            rev.observe_with("h", v, &bounds);
        }
        prop_assert_eq!(fwd.snapshot(), rev.snapshot());
        prop_assert_eq!(fwd.render_json(), rev.render_json());
    }
}
