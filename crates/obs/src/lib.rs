//! Deterministic observability for the AIDE pipeline: metrics and spans.
//!
//! This crate is the measurement layer ISSUE 4 asked for — a
//! zero-dependency (std-only, mirroring how `aide_util::sync` replaced
//! parking_lot) registry of **counters**, **gauges**, and fixed-bucket
//! **histograms**, plus lightweight **span** records driven by the
//! repository's virtual clock. It has two jobs:
//!
//! 1. **Cost nothing when off.** Instrumentation sites across the
//!    workspace call the free functions in this crate
//!    ([`counter`], [`observe`], [`span`], …). With no subscriber
//!    installed each call is a single relaxed atomic load and an
//!    immediate return, and every report, diff, and experiment output
//!    stays byte-identical to an uninstrumented build.
//! 2. **Be deterministic when on.** All recorded quantities are derived
//!    from deterministic work (token counts, DP cells, retry backoff
//!    computed from seeded jitter, virtual-clock seconds) — never from
//!    wall-clock time — so two same-seed runs produce *identical*
//!    snapshots, and exports are rendered in sorted order so the
//!    serialized form is byte-identical too. This is the same
//!    replayability contract the simulated web and the fault planner
//!    already obey.
//!
//! # Architecture
//!
//! The global subscriber follows the `log`/`tracing` pattern: a process
//! holds at most one [`MetricsRegistry`] installed via [`install`], and
//! instrumented code records through free functions that bail out on a
//! single `AtomicBool` when nothing is installed. Tests and tools that
//! want isolation instead create a private `MetricsRegistry` and record
//! into it directly — the registry API and the global API are the same.
//!
//! Because this crate must sit *below* `aide-util` in the dependency
//! graph (everything links it), it cannot see the virtual `Clock` type;
//! span timestamps are plain `u64` seconds that callers read off their
//! own clock handle (`clock.now_secs()`).
//!
//! # Example
//!
//! ```
//! use aide_obs::MetricsRegistry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let previous = aide_obs::install(registry.clone());
//! aide_obs::counter("demo.widgets", 3);
//! aide_obs::observe("demo.sizes", 42);
//! aide_obs::span("demo.run", 100, 160);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["demo.widgets"], 3);
//! assert_eq!(snap.histograms["demo.sizes"].count, 1);
//! aide_obs::uninstall();
//! # let _ = previous;
//! ```

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default histogram bucket upper bounds: roughly exponential, wide
/// enough for token counts, DP cell counts, and backoff seconds alike.
pub const DEFAULT_BOUNDS: &[u64] = &[
    1, 2, 4, 8, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 1_048_576,
];

/// A completed span: a named interval on the virtual timeline.
///
/// Spans nest by dotted name (`aide.run_tracker` contains
/// `w3newer.run`); the hierarchy is a naming convention, not a pointer
/// graph, which keeps recording allocation-light and export trivially
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanEvent {
    /// Dotted span name, e.g. `w3newer.run`.
    pub name: String,
    /// Virtual-clock second the span started at.
    pub start_secs: u64,
    /// Virtual-clock second the span ended at (CPU-only spans end at
    /// their start second — the virtual clock does not advance for
    /// computation, only for simulated waiting).
    pub end_secs: u64,
}

/// A fixed-bucket histogram: monotone upper bounds plus an overflow
/// bucket, a total count, and a running sum.
#[derive(Debug)]
struct Histogram {
    /// Strictly increasing bucket upper bounds (inclusive).
    bounds: Vec<u64>,
    /// One counter per bound plus a final overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value view of one histogram, produced by
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Strictly increasing bucket upper bounds (inclusive).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `buckets.len() == bounds.len() + 1`,
    /// the last entry counting observations above every bound.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// observation (`0.0 ..= 1.0`), zero when empty. Observations in
    /// the overflow bucket report the last finite bound — quantiles
    /// from a bucketed histogram are resolution-limited by
    /// construction, and a saturated top bucket means "at least this".
    /// Deterministic: pure integer walk over the snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // ceil(q * count), clamped to [1, count]: the rank of the
        // observation the quantile names.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .or(self.bounds.last())
                    .copied()
                    .unwrap_or(0);
            }
        }
        self.bounds.last().copied().unwrap_or(0)
    }
}

/// Plain-value snapshot of an entire registry: `BTreeMap`s so iteration
/// (and therefore every export) is in sorted, deterministic order, and
/// spans sorted by `(name, start, end)` so worker interleaving cannot
/// perturb the serialized form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Monotone event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins values published at export time.
    pub gauges: BTreeMap<String, u64>,
    /// Distributions of per-event quantities.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Completed spans, sorted.
    pub spans: Vec<SpanEvent>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as sorted plain text, one metric per line:
    ///
    /// ```text
    /// counter w3newer.url.changed 3
    /// gauge snapshot.diff_cache.hits 17
    /// histogram htmldiff.tokenize.tokens count=4 sum=5120 mean=1280 buckets=[...]
    /// span w3newer.run 100..160
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge {name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} mean={} buckets=[",
                h.count,
                h.sum,
                h.mean()
            ));
            for (i, (bound, n)) in h.bounds.iter().zip(&h.buckets).enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("le{bound}:{n}"));
            }
            if !h.bounds.is_empty() {
                out.push(' ');
            }
            out.push_str(&format!(
                "inf:{}]\n",
                h.buckets.last().copied().unwrap_or(0)
            ));
        }
        for s in &self.spans {
            out.push_str(&format!(
                "span {} {}..{}\n",
                s.name, s.start_secs, s.end_secs
            ));
        }
        out
    }

    /// Renders the snapshot as a deterministic JSON document (sorted
    /// keys, no whitespace dependence on insertion order). Metric names
    /// are dotted identifiers; arbitrary strings are escaped anyway.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(
            &mut out,
            self.counters
                .iter()
                .map(|(k, v)| (k.as_str(), v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k.as_str(), v.to_string())),
        );
        out.push_str("},\n  \"histograms\": {");
        push_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
                let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                (
                    k.as_str(),
                    format!(
                        "{{\"count\": {}, \"sum\": {}, \"bounds\": [{}], \"buckets\": [{}]}}",
                        h.count,
                        h.sum,
                        bounds.join(", "),
                        buckets.join(", ")
                    ),
                )
            }),
        );
        out.push_str("},\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"start\": {}, \"end\": {}}}",
                json_string(&s.name),
                s.start_secs,
                s.end_secs
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, String)>) {
    let mut first = true;
    let mut any = false;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        any = true;
        out.push_str(&format!("\n    {}: {v}", json_string(k)));
    }
    if any {
        out.push_str("\n  ");
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// FNV-1a. Metric names are short (~20-byte) dotted identifiers chosen
/// by this workspace, not attacker-controlled keys, so the default
/// SipHash's DoS resistance buys nothing here and its per-record cost
/// is the single largest term in the enabled hot path.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

type FnvMap<V> = HashMap<String, V, std::hash::BuildHasherDefault<Fnv>>;

/// A registry of counters, gauges, histograms, and spans.
///
/// Metrics are created lazily on first use and keyed by name; snapshots
/// and exports iterate names in sorted order, so serialized output is
/// independent of registration and recording order. All recording
/// methods take `&self` and are safe to call from many threads.
///
/// Internally the maps are hashed, not ordered — a record is one hash
/// lookup, not a string-compare tree walk — and
/// [`snapshot`](MetricsRegistry::snapshot) sorts into `BTreeMap`s at
/// export time, which is where the determinism contract actually lives.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<FnvMap<Arc<AtomicU64>>>,
    gauges: RwLock<FnvMap<Arc<AtomicU64>>>,
    histograms: RwLock<FnvMap<Arc<Histogram>>>,
    spans: Mutex<Vec<SpanEvent>>,
}

fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero first if
    /// needed.
    pub fn counter(&self, name: &str, delta: u64) {
        // Record in place under the read guard — the common case pays
        // one hash lookup and one atomic add, no `Arc` refcount
        // traffic. (The guard is released before the miss path takes
        // the write lock: the `if let` has no else branch.)
        if let Some(c) = read_lock(&self.counters).get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        write_lock(&self.counters)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: u64) {
        if let Some(g) = read_lock(&self.gauges).get(name) {
            g.store(value, Ordering::Relaxed);
            return;
        }
        write_lock(&self.gauges)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .store(value, Ordering::Relaxed);
    }

    /// Records `value` into the histogram `name` using
    /// [`DEFAULT_BOUNDS`].
    pub fn observe(&self, name: &str, value: u64) {
        self.observe_with(name, value, DEFAULT_BOUNDS);
    }

    /// Records `value` into the histogram `name`, creating it with
    /// `bounds` on first use. A histogram's bounds are fixed at
    /// creation; later calls with different bounds record into the
    /// existing buckets.
    ///
    /// # Panics
    ///
    /// Panics if a new histogram's `bounds` are not strictly
    /// increasing.
    pub fn observe_with(&self, name: &str, value: u64, bounds: &[u64]) {
        // Same shape as `counter`: record under the read guard, and
        // release it (end of the else-less `if let`) before the miss
        // path takes the write lock — an `if let … else` here would
        // hold the read guard into the else branch and self-deadlock.
        if let Some(h) = read_lock(&self.histograms).get(name) {
            h.observe(value);
            return;
        }
        write_lock(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .observe(value);
    }

    /// Records a completed span. `start_secs`/`end_secs` are virtual
    /// clock readings supplied by the caller.
    pub fn span(&self, name: &str, start_secs: u64, end_secs: u64) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SpanEvent {
                name: name.to_string(),
                start_secs,
                end_secs,
            });
    }

    /// Takes a plain-value snapshot; spans come back sorted by
    /// `(name, start, end)` so the result is order-independent.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = read_lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = read_lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = read_lock(&self.histograms)
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone();
        spans.sort();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }

    /// Shorthand for `snapshot().render_text()`.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    /// Shorthand for `snapshot().render_json()`.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SUBSCRIBER: RwLock<Option<Arc<MetricsRegistry>>> = RwLock::new(None);
/// Bumped under the `SUBSCRIBER` write lock on every install/uninstall,
/// so a thread-local cache can validate its `Arc` with one atomic load
/// instead of taking the `RwLock` on every record.
static EPOCH: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CACHED: std::cell::RefCell<(u64, Option<Arc<MetricsRegistry>>)> =
        const { std::cell::RefCell::new((0, None)) };
}

/// Installs `registry` as the process-wide subscriber, returning any
/// previous one. Instrumentation across the workspace records into it
/// until [`uninstall`] (or another `install`) replaces it.
pub fn install(registry: Arc<MetricsRegistry>) -> Option<Arc<MetricsRegistry>> {
    let mut slot = write_lock(&SUBSCRIBER);
    let prev = slot.replace(registry);
    EPOCH.fetch_add(1, Ordering::Release);
    // The registry itself is published by the SUBSCRIBER lock; the flag
    // only gates the fast path, so Release (pairing with EPOCH) is enough.
    ENABLED.store(true, Ordering::Release);
    prev
}

/// Removes the process-wide subscriber, returning it. After this,
/// instrumentation is back to its single-atomic-load fast path.
pub fn uninstall() -> Option<Arc<MetricsRegistry>> {
    let mut slot = write_lock(&SUBSCRIBER);
    ENABLED.store(false, Ordering::Release);
    EPOCH.fetch_add(1, Ordering::Release);
    slot.take()
}

/// True when a subscriber is installed. This is the fast path every
/// instrumentation site checks first: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The currently installed subscriber, if any. Exporters use this to
/// render the registry that instrumentation has been feeding.
pub fn current() -> Option<Arc<MetricsRegistry>> {
    if !enabled() {
        return None;
    }
    read_lock(&SUBSCRIBER).clone()
}

#[inline]
fn with<F: FnOnce(&MetricsRegistry)>(f: F) {
    if !enabled() {
        return;
    }
    let mut f = Some(f);
    let handled = CACHED
        .try_with(|cache| {
            let Ok(mut cache) = cache.try_borrow_mut() else {
                return false;
            };
            if cache.0 != EPOCH.load(Ordering::Acquire) {
                // Refresh under the read lock; the epoch only moves
                // under the write lock, so re-reading it here pins the
                // epoch of the value we cloned.
                let slot = read_lock(&SUBSCRIBER);
                cache.1 = slot.clone();
                cache.0 = EPOCH.load(Ordering::Acquire);
            }
            if let (Some(r), Some(f)) = (&cache.1, f.take()) {
                f(r);
            }
            true
        })
        .unwrap_or(false);
    if handled {
        return;
    }
    // TLS destructor or reentrancy edge: fall back to the direct path.
    if let (Some(r), Some(f)) = (&*read_lock(&SUBSCRIBER), f.take()) {
        f(r);
    }
}

/// Adds `delta` to counter `name` on the installed subscriber; no-op
/// without one.
#[inline]
pub fn counter(name: &str, delta: u64) {
    with(|r| r.counter(name, delta));
}

/// Sets gauge `name` to `value` on the installed subscriber; no-op
/// without one.
#[inline]
pub fn gauge(name: &str, value: u64) {
    with(|r| r.gauge(name, value));
}

/// Records `value` into histogram `name` ([`DEFAULT_BOUNDS`]) on the
/// installed subscriber; no-op without one.
#[inline]
pub fn observe(name: &str, value: u64) {
    with(|r| r.observe(name, value));
}

/// Records `value` into histogram `name` with explicit `bounds` on the
/// installed subscriber; no-op without one.
#[inline]
pub fn observe_with(name: &str, value: u64, bounds: &[u64]) {
    with(|r| r.observe_with(name, value, bounds));
}

/// Records a completed span on the installed subscriber; no-op without
/// one. Timestamps are virtual-clock seconds from the caller's clock.
#[inline]
pub fn span(name: &str, start_secs: u64, end_secs: u64) {
    with(|r| r.span(name, start_secs, end_secs));
}

/// If the environment variable `var` names a path, writes the installed
/// subscriber's JSON snapshot there and returns `true`. Mirrors the
/// `AIDE_FAULT_DUMP` convention used by the fault-tolerance suite; the
/// conventional variable is `AIDE_OBS_JSON`.
// aide-lint: allow(vfs-boundary): the dump writes outside the archive's
// durability contract — a diagnostics file the crash suite never reads
pub fn dump_json_env(var: &str) -> std::io::Result<bool> {
    // aide-lint: allow(determinism): the AIDE_OBS_JSON escape hatch is
    // the documented env-driven dump convention (§4g); callers opt in
    let Ok(path) = std::env::var(var) else {
        return Ok(false);
    };
    if path.is_empty() {
        return Ok(false);
    }
    let Some(reg) = current() else {
        return Ok(false);
    };
    // aide-lint: allow(vfs-boundary): same diagnostics escape hatch
    std::fs::write(&path, reg.render_json())?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b.two", 2);
        r.counter("a.one", 1);
        r.counter("b.two", 3);
        let s = r.snapshot();
        let names: Vec<&String> = s.counters.keys().collect();
        assert_eq!(names, ["a.one", "b.two"]);
        assert_eq!(s.counters["b.two"], 5);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = MetricsRegistry::new();
        r.gauge("g", 10);
        r.gauge("g", 7);
        assert_eq!(r.snapshot().gauges["g"], 7);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let r = MetricsRegistry::new();
        for v in [0, 1, 2, 3, 100, 2_000_000] {
            r.observe_with("h", v, &[1, 10, 1000]);
        }
        let h = &r.snapshot().histograms["h"];
        assert_eq!(h.buckets, vec![2, 2, 1, 1]);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 2_000_106);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let r = MetricsRegistry::new();
        r.observe_with("bad", 1, &[10, 5]);
    }

    #[test]
    fn spans_sort_deterministically() {
        let r = MetricsRegistry::new();
        r.span("z", 5, 6);
        r.span("a", 9, 9);
        r.span("a", 1, 2);
        let spans = r.snapshot().spans;
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].start_secs, 1);
        assert_eq!(spans[2].name, "z");
    }

    #[test]
    fn text_and_json_are_deterministic_across_recording_order() {
        let ab = MetricsRegistry::new();
        ab.counter("a", 1);
        ab.counter("b", 2);
        ab.observe("h", 3);
        let ba = MetricsRegistry::new();
        ba.observe("h", 3);
        ba.counter("b", 2);
        ba.counter("a", 1);
        assert_eq!(ab.render_text(), ba.render_text());
        assert_eq!(ab.render_json(), ba.render_json());
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn global_free_functions_are_inert_without_subscriber() {
        // Must not panic or record anywhere.
        counter("x", 1);
        gauge("x", 1);
        observe("x", 1);
        span("x", 0, 1);
        assert!(current().is_none() || enabled());
    }
}
