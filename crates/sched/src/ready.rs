//! O(1) highest-expected-gain dequeue via quantized gain classes.
//!
//! A strict max-priority-queue over a million ready polls would put an
//! O(log n) comparison sort on the hot dequeue path. The scheduler
//! doesn't need strict order: expected gain is already an estimate, so
//! quantizing it into 64 classes loses nothing the estimator could
//! defend. With one FIFO per class and a one-word occupancy bitmap,
//! `push` is a class computation plus a queue append, and `pop` is a
//! `leading_zeros` on the bitmap plus a queue pop — both O(1), both
//! branch-predictable.
//!
//! Ties within a class dequeue FIFO, which keeps the order
//! deterministic and starvation-free.

use std::collections::VecDeque;

/// Number of gain classes (and bits in the occupancy word).
pub const CLASSES: usize = 64;

/// Quantizes a probability in millionths into a gain class `0..=63`.
///
/// # Examples
///
/// ```
/// use aide_sched::ready::gain_class;
/// assert_eq!(gain_class(0), 0);
/// assert_eq!(gain_class(500_000), 31);
/// assert_eq!(gain_class(1_000_000), 63);
/// ```
pub fn gain_class(p_millionths: u64) -> u8 {
    let c = p_millionths * CLASSES as u64 / 1_000_001;
    c.min(CLASSES as u64 - 1) as u8
}

/// Per-class FIFOs plus an occupancy bitmap: bit `c` set means class
/// `c` is non-empty.
#[derive(Debug, Clone, Default)]
pub struct GainQueues {
    queues: Vec<VecDeque<u32>>,
    occupied: u64,
    len: usize,
}

impl GainQueues {
    /// Empty queues.
    pub fn new() -> GainQueues {
        GainQueues {
            queues: (0..CLASSES).map(|_| VecDeque::new()).collect(),
            occupied: 0,
            len: 0,
        }
    }

    /// Queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `id` in gain class `class` (clamped to 63). O(1).
    pub fn push(&mut self, class: u8, id: u32) {
        let c = (class as usize).min(CLASSES - 1);
        if self.queues.is_empty() {
            self.queues = (0..CLASSES).map(|_| VecDeque::new()).collect();
        }
        self.queues[c].push_back(id);
        self.occupied |= 1u64 << c;
        self.len += 1;
    }

    /// Dequeues from the highest non-empty class, FIFO within the
    /// class. O(1).
    pub fn pop(&mut self) -> Option<(u8, u32)> {
        if self.occupied == 0 {
            return None;
        }
        let c = (63 - self.occupied.leading_zeros()) as usize;
        let id = self.queues[c].pop_front()?;
        if self.queues[c].is_empty() {
            self.occupied &= !(1u64 << c);
        }
        self.len -= 1;
        Some((c as u8, id))
    }

    /// The highest non-empty class, if any, without dequeuing.
    pub fn peek_class(&self) -> Option<u8> {
        if self.occupied == 0 {
            None
        } else {
            Some((63 - self.occupied.leading_zeros()) as u8)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_highest_class_fifo_within() {
        let mut q = GainQueues::new();
        q.push(10, 1);
        q.push(63, 2);
        q.push(10, 3);
        q.push(40, 4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((63, 2)));
        assert_eq!(q.pop(), Some((40, 4)));
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((10, 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn class_overflow_clamps() {
        let mut q = GainQueues::new();
        q.push(200, 9);
        assert_eq!(q.peek_class(), Some(63));
        assert_eq!(q.pop(), Some((63, 9)));
    }

    #[test]
    fn default_value_is_usable() {
        let mut q = GainQueues::default();
        assert!(q.pop().is_none());
        q.push(0, 7);
        assert_eq!(q.pop(), Some((0, 7)));
    }

    #[test]
    fn gain_class_spans_the_range() {
        assert_eq!(gain_class(0), 0);
        assert_eq!(gain_class(15_625), 0);
        assert_eq!(gain_class(15_626), 1);
        assert_eq!(gain_class(999_999), 63);
        assert_eq!(gain_class(1_000_000), 63);
        let mut prev = 0;
        for p in (0..=1_000_000).step_by(7_777) {
            let c = gain_class(p);
            assert!(c >= prev, "classes must be monotone in gain");
            prev = c;
        }
    }
}
