//! The budgeted adaptive poll scheduler.
//!
//! [`AdaptiveScheduler`] glues the three mechanisms together:
//!
//! 1. the [`crate::estimator`] turns poll verdicts into per-URL change
//!    rates;
//! 2. the [`crate::wheel`] wakes each URL when its *expected freshness
//!    gain* `1 − e^(−λΔ)` crosses the configured horizon;
//! 3. the [`crate::ready`] queues hand out the highest-gain wakeups
//!    under a global per-call budget and per-host politeness (at most
//!    one in-flight poll per host, matching the w3newer worker pool's
//!    discipline).
//!
//! Breaker integration is cooperative: when a host's circuit opens
//! (see `aide_w3newer::breaker`), the owner calls
//! [`AdaptiveScheduler::park_host`] and every wakeup for that host
//! accumulates in its wait queue instead of burning budget; on
//! half-open, [`AdaptiveScheduler::release_host`] re-queues the backlog
//! at its current (by then higher) gain.
//!
//! All state sits behind one mutex ranked `sched` (rank 22) in the
//! workspace lock table — below the store shard lock, so a holder may
//! persist rate state through [`crate::persist`] without inverting the
//! documented order. Callers already holding `url`/`user` locks may
//! call in freely.
//!
//! The scheduler also serves w3newer's simpler in-run needs through
//! [`AdaptiveScheduler::gate_poll`] / [`AdaptiveScheduler::record`],
//! which use only the estimator (no wheel entry required) — that is
//! the `SchedulePolicy::Adaptive` integration path.

use crate::estimator::{PriorRules, RateBook};
use crate::fixp;
use crate::ready::{gain_class, GainQueues};
use crate::wheel::{TimerWheel, WheelOps};
use aide_util::sync::{lockrank, Mutex};
use aide_util::time::{Duration, Timestamp};
use std::collections::{BTreeMap, VecDeque};

/// Histogram bounds for expected-gain distributions (millionths).
const GAIN_BOUNDS: &[u64] = &[
    10_000, 50_000, 100_000, 250_000, 500_000, 750_000, 900_000, 1_000_000,
];

/// Histogram bounds for budget utilization (permille).
const UTIL_BOUNDS: &[u64] = &[100, 250, 500, 750, 900, 1_000];

/// Tuning knobs. The defaults poll a URL once it is coin-flip likely
/// to have changed, but never more than hourly nor less than monthly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Re-poll when the expected gain reaches this many millionths
    /// (500_000 = "probably changed by now").
    pub target_gain_millionths: u64,
    /// Floor between polls of one URL, whatever its estimated rate.
    pub min_interval: Duration,
    /// Ceiling between polls: even near-static pages get a look.
    pub max_interval: Duration,
    /// Maximum tickets handed out per [`AdaptiveScheduler::next_polls`]
    /// call — the global request budget per scheduling round.
    pub budget: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            target_gain_millionths: 500_000,
            min_interval: Duration::hours(1),
            max_interval: Duration::days(30),
            budget: 64,
        }
    }
}

/// One admitted poll: do it, then call
/// [`AdaptiveScheduler::complete`] with the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollTicket {
    /// Dense scheduler id (stable per URL).
    pub id: u32,
    /// The URL to poll.
    pub url: String,
    /// Its politeness host.
    pub host: String,
    /// Expected gain at dequeue time, in millionths.
    pub gain_millionths: u64,
}

/// Verdict of [`AdaptiveScheduler::gate_poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Expected gain justifies a poll.
    Poll {
        /// Expected gain in millionths.
        p_millionths: u64,
    },
    /// Not worth a request yet.
    Skip {
        /// Expected gain in millionths.
        p_millionths: u64,
    },
}

#[derive(Debug)]
struct UrlEntry {
    url: String,
    host: u32,
}

#[derive(Debug)]
struct HostState {
    busy: bool,
    parked: bool,
    waiting: VecDeque<u32>,
}

#[derive(Debug)]
struct State {
    book: RateBook,
    wheel: TimerWheel,
    ready: GainQueues,
    urls: Vec<UrlEntry>,
    by_url: BTreeMap<String, u32>,
    hosts: Vec<HostState>,
    host_names: Vec<String>,
    by_host: BTreeMap<String, u32>,
    fired: Vec<u32>,
}

/// The adaptive scheduler. All methods take `&self`; internal state is
/// one `sched`-ranked mutex, so a `&AdaptiveScheduler` can be shared
/// across worker threads.
#[derive(Debug)]
pub struct AdaptiveScheduler {
    cfg: SchedulerConfig,
    /// `−ln(1 − target_gain)` in micro-units, precomputed once.
    k_micro: u64,
    state: Mutex<State>,
}

impl AdaptiveScheduler {
    /// A scheduler with the given knobs and cold-start prior rules.
    pub fn new(cfg: SchedulerConfig, priors: PriorRules) -> AdaptiveScheduler {
        Self::with_book(cfg, RateBook::new(priors))
    }

    /// A scheduler warm-started from an existing rate book (see
    /// [`crate::persist::load`]).
    pub fn with_book(cfg: SchedulerConfig, book: RateBook) -> AdaptiveScheduler {
        AdaptiveScheduler {
            cfg,
            k_micro: fixp::neg_log1m_micro(cfg.target_gain_millionths),
            state: Mutex::new(State {
                book,
                wheel: TimerWheel::new(0),
                ready: GainQueues::new(),
                urls: Vec::new(),
                by_url: BTreeMap::new(),
                hosts: Vec::new(),
                host_names: Vec::new(),
                by_host: BTreeMap::new(),
                fired: Vec::new(),
            }),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    fn locked(&self) -> (lockrank::Held, impl std::ops::DerefMut<Target = State> + '_) {
        let held = lockrank::acquire("sched", "sched:state");
        (held, self.state.lock())
    }

    /// Registers `url` under politeness `host` and arms its first
    /// wakeup (cold URLs are due immediately: the estimator needs a
    /// baseline poll before it can say anything). Returns the stable
    /// scheduler id; re-tracking an existing URL is a no-op.
    pub fn track(&self, url: &str, host: &str, now: Timestamp) -> u32 {
        let (_held, mut st) = self.locked();
        let st = &mut *st;
        if let Some(&id) = st.by_url.get(url) {
            return id;
        }
        let host_id = match st.by_host.get(host) {
            Some(&h) => h,
            None => {
                let h = st.hosts.len() as u32;
                st.hosts.push(HostState {
                    busy: false,
                    parked: false,
                    waiting: VecDeque::new(),
                });
                st.host_names.push(host.to_string());
                st.by_host.insert(host.to_string(), h);
                h
            }
        };
        let id = st.urls.len() as u32;
        st.urls.push(UrlEntry {
            url: url.to_string(),
            host: host_id,
        });
        st.by_url.insert(url.to_string(), id);
        st.book.rate(url); // materialize the prior
        st.wheel.insert(id, now.0);
        id
    }

    /// Number of tracked URLs.
    pub fn tracked(&self) -> usize {
        let (_held, st) = self.locked();
        st.urls.len()
    }

    /// Advances the virtual clock to `now` and returns up to
    /// `config().budget` tickets, highest expected gain first, at most
    /// one in-flight per host.
    pub fn next_polls(&self, now: Timestamp) -> Vec<PollTicket> {
        let (_held, mut st) = self.locked();
        let st = &mut *st;
        let mut ops = WheelOps::default();
        let mut fired = std::mem::take(&mut st.fired);
        fired.clear();
        st.wheel.advance_to(now.0, &mut fired, &mut ops);
        aide_obs::counter("sched.fired", fired.len() as u64);
        // File each wakeup: parked hosts absorb theirs, the rest go to
        // the gain queues.
        for &id in &fired {
            let host = st.urls[id as usize].host as usize;
            if st.hosts[host].parked {
                st.hosts[host].waiting.push_back(id);
                aide_obs::counter("sched.requeue.parked", 1);
            } else {
                let p = st.book.p_changed_at(&st.urls[id as usize].url, now);
                st.ready.push(gain_class(p), id);
            }
        }
        st.fired = fired;
        // Dequeue under budget and politeness.
        let budget = self.cfg.budget.max(1);
        let mut tickets = Vec::new();
        while tickets.len() < budget as usize {
            let Some((_class, id)) = st.ready.pop() else {
                break;
            };
            let entry = &st.urls[id as usize];
            let host = entry.host as usize;
            if st.hosts[host].parked {
                st.hosts[host].waiting.push_back(id);
                aide_obs::counter("sched.requeue.parked", 1);
                continue;
            }
            if st.hosts[host].busy {
                st.hosts[host].waiting.push_back(id);
                aide_obs::counter("sched.defer.host_busy", 1);
                continue;
            }
            st.hosts[host].busy = true;
            let p = st.book.p_changed_at(&st.urls[id as usize].url, now);
            aide_obs::observe_with("sched.gain.millionths", p, GAIN_BOUNDS);
            tickets.push(PollTicket {
                id,
                url: st.urls[id as usize].url.clone(),
                host: st.host_names[host].clone(),
                gain_millionths: p,
            });
        }
        aide_obs::counter("sched.dequeue", tickets.len() as u64);
        aide_obs::observe("sched.dequeue.ops", ops.touches());
        aide_obs::observe_with(
            "sched.budget.utilization_permille",
            tickets.len() as u64 * 1_000 / budget as u64,
            UTIL_BOUNDS,
        );
        tickets
    }

    /// Reports a ticket's verdict: updates the estimator, frees the
    /// host (admitting its next waiter, if any), and re-arms the URL's
    /// wakeup for when its expected gain next crosses the horizon.
    pub fn complete(&self, id: u32, changed: bool, now: Timestamp) {
        let (_held, mut st) = self.locked();
        let st = &mut *st;
        if id as usize >= st.urls.len() {
            return;
        }
        let url = st.urls[id as usize].url.clone();
        observe_counted(&mut st.book, &url, changed, now);
        let host = st.urls[id as usize].host as usize;
        st.hosts[host].busy = false;
        if !st.hosts[host].parked {
            if let Some(next) = st.hosts[host].waiting.pop_front() {
                let p = st.book.p_changed_at(&st.urls[next as usize].url, now);
                st.ready.push(gain_class(p), next);
            }
        }
        let dt = self.reschedule_secs(st, &url);
        st.wheel.insert(id, now.0 + dt);
    }

    /// Seconds until `url`'s expected gain reaches the target, clamped
    /// to the configured interval bounds.
    fn reschedule_secs(&self, st: &mut State, url: &str) -> u64 {
        let rate = st.book.rate(url).rate_nanohz();
        let lo = self.cfg.min_interval.as_secs().max(1);
        let hi = self.cfg.max_interval.as_secs().max(lo);
        fixp::secs_to_gain(rate, self.k_micro).clamp(lo, hi)
    }

    /// Parks `host` (breaker opened): its wakeups queue up instead of
    /// competing for budget. Idempotent; unknown hosts are ignored.
    pub fn park_host(&self, host: &str) {
        let (_held, mut st) = self.locked();
        let st = &mut *st;
        if let Some(&h) = st.by_host.get(host) {
            if !st.hosts[h as usize].parked {
                st.hosts[h as usize].parked = true;
                aide_obs::counter("sched.host.parked", 1);
            }
        }
    }

    /// Un-parks `host` (breaker half-open): its queued wakeups re-enter
    /// the gain queues at their current — by now higher — gain.
    pub fn release_host(&self, host: &str, now: Timestamp) {
        let (_held, mut st) = self.locked();
        let st = &mut *st;
        if let Some(&h) = st.by_host.get(host) {
            if !st.hosts[h as usize].parked {
                return;
            }
            st.hosts[h as usize].parked = false;
            aide_obs::counter("sched.host.released", 1);
            let mut waiting = std::mem::take(&mut st.hosts[h as usize].waiting);
            aide_obs::counter("sched.host.requeued", waiting.len() as u64);
            for id in waiting.drain(..) {
                let p = st.book.p_changed_at(&st.urls[id as usize].url, now);
                st.ready.push(gain_class(p), id);
            }
        }
    }

    /// The estimator-only gate for w3newer's `SchedulePolicy::Adaptive`:
    /// is `url` worth a request at `now`? No wheel entry needed — the
    /// tracker run itself is the clock.
    pub fn gate_poll(&self, url: &str, now: Timestamp) -> Gate {
        let (_held, mut st) = self.locked();
        let st = &mut *st;
        let rate = *st.book.rate(url);
        let decision = match rate.last_poll {
            // Never polled: the baseline poll is always worth it.
            None => Gate::Poll {
                p_millionths: fixp::MILLION,
            },
            Some(prev) => {
                let elapsed = now - prev;
                let p = rate.p_changed_millionths(elapsed);
                if elapsed < self.cfg.min_interval {
                    Gate::Skip { p_millionths: p }
                } else if elapsed >= self.cfg.max_interval || p >= self.cfg.target_gain_millionths {
                    Gate::Poll { p_millionths: p }
                } else {
                    Gate::Skip { p_millionths: p }
                }
            }
        };
        match decision {
            Gate::Poll { .. } => aide_obs::counter("sched.poll.admitted", 1),
            Gate::Skip { .. } => aide_obs::counter("sched.poll.gated", 1),
        }
        decision
    }

    /// Records a poll verdict for an untracked-or-tracked `url` without
    /// ticket bookkeeping — w3newer's post-check hook.
    pub fn record(&self, url: &str, changed: bool, now: Timestamp) {
        let (_held, mut st) = self.locked();
        observe_counted(&mut st.book, url, changed, now);
    }

    /// The current posterior rate for `url` in nano-changes/second, if
    /// the estimator has state for it. (Named distinctly from
    /// [`crate::estimator::UrlRate::rate_nanohz`], the per-record accessor
    /// it delegates to.)
    pub fn url_rate_nanohz(&self, url: &str) -> Option<u64> {
        let (_held, st) = self.locked();
        st.book.get(url).map(|r| r.rate_nanohz())
    }

    /// Serializes the rate book (see [`crate::estimator::RateBook::emit`]).
    pub fn snapshot_rates(&self) -> String {
        let (_held, st) = self.locked();
        st.book.emit()
    }

    /// Exports occupancy gauges: wheel entries, ready-queue length,
    /// parked hosts, tracked URLs.
    pub fn publish_gauges(&self) {
        if !aide_obs::enabled() {
            return;
        }
        let (_held, st) = self.locked();
        aide_obs::gauge("sched.wheel.entries", st.wheel.len() as u64);
        aide_obs::gauge("sched.ready.len", st.ready.len() as u64);
        let parked = st.hosts.iter().filter(|h| h.parked).count();
        aide_obs::gauge("sched.hosts.parked", parked as u64);
        aide_obs::gauge("sched.urls.tracked", st.urls.len() as u64);
    }
}

/// `RateBook::observe` plus the verdict counters.
fn observe_counted(book: &mut RateBook, url: &str, changed: bool, now: Timestamp) {
    book.observe(url, changed, now);
    if changed {
        aide_obs::counter("sched.observe.changed", 1);
    } else {
        aide_obs::counter("sched.observe.unchanged", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::RatePrior;

    const HOUR: u64 = 3_600;
    const DAY: u64 = 86_400;

    fn sched(budget: u32) -> AdaptiveScheduler {
        let cfg = SchedulerConfig {
            budget,
            ..SchedulerConfig::default()
        };
        AdaptiveScheduler::new(cfg, PriorRules::default())
    }

    #[test]
    fn cold_urls_fire_immediately_and_reschedule_after_completion() {
        let s = sched(8);
        let t0 = Timestamp(1_000);
        s.track("http://a.example/x", "a.example", t0);
        s.track("http://b.example/y", "b.example", t0);
        let polls = s.next_polls(t0 + Duration::seconds(1));
        assert_eq!(polls.len(), 2, "cold URLs need baseline polls");
        assert!(polls.iter().all(|p| p.gain_millionths == 1_000_000));
        for p in &polls {
            s.complete(p.id, false, t0 + Duration::seconds(1));
        }
        // Immediately after the baseline, nothing is due.
        assert!(s.next_polls(t0 + Duration::seconds(2)).is_empty());
        // A week out, the 1/week-prior URLs are due again.
        let later = t0 + Duration::days(8);
        let polls = s.next_polls(later);
        assert_eq!(polls.len(), 2);
    }

    #[test]
    fn budget_caps_each_round() {
        let s = sched(3);
        let t0 = Timestamp(0);
        for i in 0..10 {
            s.track(
                &format!("http://h{i}.example/"),
                &format!("h{i}.example"),
                t0,
            );
        }
        let first = s.next_polls(Timestamp(5));
        assert_eq!(first.len(), 3);
        // Undequeued wakeups stay ready for the next round.
        let second = s.next_polls(Timestamp(6));
        assert_eq!(second.len(), 3);
        let all: Vec<u32> = first.iter().chain(&second).map(|p| p.id).collect();
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "no double-issued tickets");
    }

    #[test]
    fn one_in_flight_per_host() {
        let s = sched(8);
        let t0 = Timestamp(0);
        for i in 0..4 {
            s.track(&format!("http://same.example/{i}"), "same.example", t0);
        }
        let polls = s.next_polls(Timestamp(5));
        assert_eq!(polls.len(), 1, "politeness: one per host");
        // While in flight, nothing else from the host is admitted.
        assert!(s.next_polls(Timestamp(6)).is_empty());
        s.complete(polls[0].id, false, Timestamp(7));
        let next = s.next_polls(Timestamp(8));
        assert_eq!(next.len(), 1);
        assert_ne!(next[0].id, polls[0].id);
    }

    #[test]
    fn volatile_urls_win_the_budget() {
        let cfg = SchedulerConfig {
            budget: 1,
            min_interval: Duration::seconds(1),
            ..SchedulerConfig::default()
        };
        let priors = PriorRules::new(RatePrior::WEEKLY)
            .rule("http://news\\..*", RatePrior::per(Duration::hours(2)))
            .unwrap();
        let s = AdaptiveScheduler::new(cfg, priors);
        let t0 = Timestamp(0);
        s.track("http://news.example/", "news.example", t0);
        s.track("http://quiet.example/", "quiet.example", t0);
        // Baselines for both.
        for _ in 0..2 {
            for p in s.next_polls(Timestamp(1)) {
                s.complete(p.id, false, Timestamp(1));
            }
        }
        // Five days out both are due again, but the news page is
        // near-certain to have changed (class 63) while the weekly page
        // is only about even odds (class ~32): gain order must win.
        let polls = s.next_polls(Timestamp(5 * DAY));
        assert_eq!(polls.len(), 1);
        assert_eq!(polls[0].url, "http://news.example/");
    }

    #[test]
    fn parked_hosts_wait_and_release_requeues() {
        let s = sched(8);
        let t0 = Timestamp(0);
        s.track("http://flaky.example/a", "flaky.example", t0);
        s.track("http://ok.example/b", "ok.example", t0);
        s.park_host("flaky.example");
        let polls = s.next_polls(Timestamp(5));
        assert_eq!(polls.len(), 1);
        assert_eq!(polls[0].host, "ok.example");
        // Parked wakeups survive further rounds without firing.
        assert!(s.next_polls(Timestamp(10)).is_empty());
        s.release_host("flaky.example", Timestamp(11));
        let polls = s.next_polls(Timestamp(12));
        assert_eq!(polls.len(), 1);
        assert_eq!(polls[0].host, "flaky.example");
    }

    #[test]
    fn gate_poll_learns_to_skip_stable_urls() {
        let cfg = SchedulerConfig {
            min_interval: Duration::hours(1),
            ..SchedulerConfig::default()
        };
        let s = AdaptiveScheduler::new(cfg, PriorRules::default());
        let url = "http://stable.example/";
        // First contact always polls.
        assert!(matches!(s.gate_poll(url, Timestamp(0)), Gate::Poll { .. }));
        s.record(url, false, Timestamp(0));
        // An hour later a 1/week page is nowhere near coin-flip odds.
        let t = Timestamp(2 * HOUR);
        assert!(matches!(s.gate_poll(url, t), Gate::Skip { .. }));
        // But within min_interval it is always a skip...
        assert!(matches!(
            s.gate_poll(url, Timestamp(HOUR / 2)),
            Gate::Skip { .. }
        ));
        // ...and past max_interval always a poll.
        let t = Timestamp(40 * DAY);
        assert!(matches!(s.gate_poll(url, t), Gate::Poll { .. }));
    }

    #[test]
    fn gate_and_record_are_deterministic() {
        let run = || {
            let s = sched(4);
            let mut log = String::new();
            for i in 0..50u64 {
                let t = Timestamp(i * HOUR);
                let url = format!("http://h{}.example/", i % 7);
                match s.gate_poll(&url, t) {
                    Gate::Poll { p_millionths } => {
                        log.push_str(&format!("poll {url} {p_millionths}\n"));
                        s.record(&url, i % 3 == 0, t);
                    }
                    Gate::Skip { p_millionths } => {
                        log.push_str(&format!("skip {url} {p_millionths}\n"));
                    }
                }
            }
            log.push_str(&s.snapshot_rates());
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tracked_count_and_idempotent_track() {
        let s = sched(4);
        let a = s.track("http://a/", "a", Timestamp(0));
        let b = s.track("http://b/", "b", Timestamp(0));
        assert_ne!(a, b);
        assert_eq!(s.track("http://a/", "a", Timestamp(50)), a);
        assert_eq!(s.tracked(), 2);
    }
}
