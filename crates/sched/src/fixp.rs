//! Deterministic fixed-point exponential math.
//!
//! The scheduler's freshness model needs `1 − e^(−λΔ)` — the
//! probability that a Poisson process with rate `λ` produced at least
//! one event in a window of length `Δ`. Floating point would make that
//! value (and therefore every schedule, every experiment JSON byte)
//! depend on the host's rounding mode and math library, so everything
//! here is integer arithmetic in *millionths*: a probability of
//! `500_000` means 0.5, and rates are carried in nano-changes per
//! second (`nanohz`, 10⁻⁹ s⁻¹ — one change per week ≈ 1_653 nanohz).
//!
//! Accuracy is a few parts in 10⁵ over the useful range, which is far
//! below the resolution the gain quantizer (64 classes) can observe.

/// One million — the fixed-point scale for probabilities ("millionths")
/// and for the exponent argument ("micro-units").
pub const MILLION: u64 = 1_000_000;

/// Exponent magnitude beyond which `e^(−x)` is zero in millionths.
/// `e^(−14) ≈ 8.3e-7` rounds below one millionth.
const EXP_FLOOR_MICRO: u64 = 14 * MILLION;

/// `e^(−1)` in millionths.
const E_INV_MICRO: u128 = 367_879;

/// Computes `e^(−x)` in millionths, where `x` is in micro-units
/// (`x_micro = 1_500_000` means `x = 1.5`).
///
/// The fractional part is evaluated as `(e^(−f/4))⁴` with a five-term
/// Taylor series on `f/4 ≤ 0.25` (truncation error < 1e-5), and the
/// integer part by repeated multiplication with a stored `e^(−1)`.
///
/// # Examples
///
/// ```
/// use aide_sched::fixp::neg_exp_millionths;
/// assert_eq!(neg_exp_millionths(0), 1_000_000);
/// // e^(-0.693147) = 0.5
/// let half = neg_exp_millionths(693_147);
/// assert!((half as i64 - 500_000).abs() < 200, "{half}");
/// assert_eq!(neg_exp_millionths(50_000_000), 0);
/// ```
pub fn neg_exp_millionths(x_micro: u64) -> u64 {
    if x_micro >= EXP_FLOOR_MICRO {
        return 0;
    }
    let n = x_micro / MILLION;
    let f = x_micro % MILLION;
    let m = MILLION as u128;
    // e^(−q) for q = f/4 ≤ 0.25, Taylor to the q⁴ term.
    let q = (f / 4) as u128;
    let q2 = q * q / m;
    let q3 = q2 * q / m;
    let q4 = q3 * q / m;
    let e_q = (m + q2 / 2 + q4 / 24).saturating_sub(q + q3 / 6);
    // Square twice: e^(−f) = (e^(−q))⁴.
    let sq = e_q * e_q / m;
    let mut acc = sq * sq / m;
    for _ in 0..n {
        acc = acc * E_INV_MICRO / m;
    }
    acc as u64
}

/// Probability (in millionths) that a Poisson process of `rate_nanohz`
/// changed at least once over `elapsed_secs`: `1 − e^(−λΔ)`.
///
/// # Examples
///
/// ```
/// use aide_sched::fixp::p_changed_millionths;
/// // One change per day, observed for a day: 1 − e⁻¹ ≈ 0.632.
/// let rate = 1_000_000_000 / 86_400;
/// let p = p_changed_millionths(rate, 86_400);
/// assert!((p as i64 - 632_121).abs() < 600, "{p}");
/// assert_eq!(p_changed_millionths(rate, 0), 0);
/// ```
pub fn p_changed_millionths(rate_nanohz: u64, elapsed_secs: u64) -> u64 {
    // λΔ in micro-units: nanohz · s = 10⁻⁹, so divide by 10³.
    let x = (rate_nanohz as u128) * (elapsed_secs as u128) / 1_000;
    let x = x.min(EXP_FLOOR_MICRO as u128) as u64;
    MILLION - neg_exp_millionths(x)
}

/// Solves `1 − e^(−x) = target` for `x` (micro-units) by bisection
/// against [`neg_exp_millionths`], so the inverse is consistent with
/// the forward map to the last integer digit. `target` is clamped to
/// `[1, 999_999]` millionths.
///
/// The result is the *horizon constant* `K = −ln(1 − p*)`: a URL whose
/// estimated rate is `λ` reaches expected gain `p*` after `K/λ`
/// seconds, which is how the scheduler turns a rate into a due time.
///
/// # Examples
///
/// ```
/// use aide_sched::fixp::neg_log1m_micro;
/// // −ln(0.5) = 0.693147
/// let k = neg_log1m_micro(500_000);
/// assert!((k as i64 - 693_147).abs() < 300, "{k}");
/// ```
pub fn neg_log1m_micro(target_millionths: u64) -> u64 {
    let target = target_millionths.clamp(1, MILLION - 1);
    let goal = MILLION - target; // want largest x with e^(−x) ≥ goal… see below
    let (mut lo, mut hi) = (0u64, EXP_FLOOR_MICRO);
    // Invariant: neg_exp(lo) ≥ goal > neg_exp(hi); return the boundary.
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if neg_exp_millionths(mid) >= goal {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Seconds until a process at `rate_nanohz` reaches the gain horizon
/// `k_micro` (from [`neg_log1m_micro`]): `ceil(K/λ)`, saturating and
/// never below one second.
pub fn secs_to_gain(rate_nanohz: u64, k_micro: u64) -> u64 {
    let rate = rate_nanohz.max(1) as u128;
    // K micro-units → λΔ micro-units needs Δ = K·10³/nanohz seconds.
    let t = ((k_micro as u128) * 1_000).div_ceil(rate);
    (t.min(u64::MAX as u128) as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_exp_reference_points() {
        // (x micro, e^-x millionths) reference values.
        let cases: &[(u64, u64)] = &[
            (0, 1_000_000),
            (100_000, 904_837),
            (250_000, 778_801),
            (500_000, 606_531),
            (1_000_000, 367_879),
            (2_000_000, 135_335),
            (3_000_000, 49_787),
            (5_000_000, 6_738),
            (10_000_000, 45),
        ];
        for &(x, want) in cases {
            let got = neg_exp_millionths(x);
            let err = (got as i64 - want as i64).abs();
            assert!(err <= 120, "e^-({x}µ): got {got}, want {want}");
        }
    }

    #[test]
    fn neg_exp_is_weakly_monotone_on_a_grid() {
        let mut prev = neg_exp_millionths(0);
        for x in (0..4_000_000).step_by(9_973) {
            let v = neg_exp_millionths(x);
            // Allow a ±2 ripple at segment boundaries from truncation.
            assert!(v <= prev + 2, "non-monotone: e^-({x}µ)={v} after {prev}");
            prev = v;
        }
    }

    #[test]
    fn p_changed_grows_with_elapsed_and_rate() {
        let day = 86_400;
        let rate = 1_000_000_000 / day; // 1/day in nanohz
        assert_eq!(p_changed_millionths(rate, 0), 0);
        let p1 = p_changed_millionths(rate, day / 2);
        let p2 = p_changed_millionths(rate, day);
        let p3 = p_changed_millionths(rate, 10 * day);
        assert!(p1 < p2 && p2 < p3, "{p1} {p2} {p3}");
        assert!(p3 > 999_900, "ten mean periods ≈ certain: {p3}");
        assert!(
            p_changed_millionths(rate * 4, day / 2) > p1,
            "faster page, same window, more gain"
        );
    }

    #[test]
    fn inverse_roundtrips_through_forward_map() {
        for target in [10_000, 100_000, 333_333, 500_000, 800_000, 990_000] {
            let k = neg_log1m_micro(target);
            let p = MILLION - neg_exp_millionths(k);
            let err = (p as i64 - target as i64).abs();
            assert!(err <= 150, "target {target}: K={k} gives p={p}");
        }
    }

    #[test]
    fn secs_to_gain_scales_inversely_with_rate() {
        let k = neg_log1m_micro(500_000); // ≈ 0.693 in micro
        let day = 86_400;
        let daily = 1_000_000_000 / day;
        let t = secs_to_gain(daily, k);
        // Half-life of a 1/day process is ~0.693 days ≈ 59_888 s.
        let want = 59_888;
        assert!((t as i64 - want).abs() < 600, "{t}");
        assert_eq!(secs_to_gain(daily * 2, k), t.div_ceil(2));
        assert!(secs_to_gain(0, k) >= 1, "zero rate must not divide by zero");
    }
}
