//! Rate-book persistence through the `Repository` seam.
//!
//! Estimator state is expensive to re-learn — a URL polled weekly takes
//! months to converge — so it must survive restarts. Rather than invent
//! a file format and a durability story, the serialized book
//! ([`crate::estimator::RateBook::emit`]) is checked into an RCS
//! [`Archive`] stored under a reserved repository key: the disk backend
//! then gives it the same WAL + crash-recovery guarantees as every
//! archived page, for free, and operators can read the history of rate
//! snapshots with the ordinary log/checkout tooling.
//!
//! Callers already holding the scheduler's `sched`-ranked lock may call
//! [`save`]/[`load`] directly: the store's shard lock ranks above
//! `sched` in the workspace table, so the nesting is legal.

use crate::estimator::{PriorRules, RateBook, RateParseError};
use aide_rcs::archive::{Archive, ArchiveError};
use aide_rcs::repo::{RepoError, Repository};
use aide_util::time::Timestamp;
use std::fmt;

/// The reserved repository key for scheduler rate state. The `aide:`
/// scheme cannot collide with tracked page URLs.
pub const RATE_BOOK_KEY: &str = "aide:sched/rate-book";

/// Author recorded on rate-book check-ins.
const AUTHOR: &str = "aide-sched";

/// Error from [`save`]/[`load`].
#[derive(Debug)]
pub enum PersistError {
    /// The repository failed.
    Repo(RepoError),
    /// The archive rejected the check-in (e.g. clock regression).
    Archive(ArchiveError),
    /// A stored book failed to parse.
    Parse(RateParseError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Repo(e) => write!(f, "rate book repository: {e}"),
            PersistError::Archive(e) => write!(f, "rate book archive: {e}"),
            PersistError::Parse(e) => write!(f, "rate book: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<RepoError> for PersistError {
    fn from(e: RepoError) -> Self {
        PersistError::Repo(e)
    }
}

impl From<ArchiveError> for PersistError {
    fn from(e: ArchiveError) -> Self {
        PersistError::Archive(e)
    }
}

/// Checks the book into the repository under [`RATE_BOOK_KEY`] as a new
/// revision (or the initial one), dated `now`. An unchanged book is a
/// no-op revision-wise but still round-trips through the store.
pub fn save(book: &RateBook, repo: &dyn Repository, now: Timestamp) -> Result<(), PersistError> {
    let text = book.emit();
    let log = format!("rate snapshot: {} urls", book.len());
    let archive = match repo.load(RATE_BOOK_KEY)? {
        Some(existing) => {
            let mut archive = (*existing).clone();
            archive.checkin(&text, AUTHOR, &log, now)?;
            archive
        }
        None => Archive::create(RATE_BOOK_KEY, &text, AUTHOR, &log, now),
    };
    repo.store(RATE_BOOK_KEY, &archive)?;
    Ok(())
}

/// Loads the newest rate snapshot, or an empty book with the given
/// priors if none was ever saved. Priors are configuration and come
/// from the caller, not the store.
pub fn load(repo: &dyn Repository, priors: PriorRules) -> Result<RateBook, PersistError> {
    match repo.load(RATE_BOOK_KEY)? {
        Some(archive) => RateBook::parse(archive.head_text(), priors).map_err(PersistError::Parse),
        None => Ok(RateBook::new(priors)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_rcs::repo::MemRepository;
    use aide_util::time::Duration;

    #[test]
    fn roundtrip_and_history() {
        let repo = MemRepository::new();
        let mut book = RateBook::default();
        let mut t = Timestamp(800_000_000);
        book.observe("http://a.example/", false, t);
        save(&book, &repo, t).unwrap();

        for i in 0..5u64 {
            t = t + Duration::hours(6 + i);
            book.observe("http://a.example/", i % 2 == 0, t);
            save(&book, &repo, t).unwrap();
        }

        let loaded = load(&repo, PriorRules::default()).unwrap();
        assert_eq!(loaded.emit(), book.emit());

        // Snapshots accumulate as ordinary revision history.
        let archive = repo.load(RATE_BOOK_KEY).unwrap().unwrap();
        assert!(archive.metas().len() >= 2);
    }

    #[test]
    fn missing_book_falls_back_to_priors() {
        let repo = MemRepository::new();
        let mut loaded = load(&repo, PriorRules::default()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(
            loaded.rate("http://x/").rate_nanohz(),
            crate::estimator::RatePrior::WEEKLY.mean_nanohz()
        );
    }

    #[test]
    fn reserved_key_cannot_collide_with_page_urls() {
        assert!(!RATE_BOOK_KEY.starts_with("http"));
        assert!(RATE_BOOK_KEY.starts_with("aide:"));
    }
}
