//! A hierarchical timer wheel sized for 10M tracked URLs.
//!
//! The scheduler needs "wake me when this URL's expected gain crosses
//! the horizon" for millions of URLs, with per-tick cost independent of
//! how many are tracked. A heap is O(log n) per operation and, worse,
//! pointer-chasing cache misses under rebalancing; the classic hashed
//! hierarchical timing wheel (Varghese & Lauck) is amortized O(1) per
//! insert and per fired timer.
//!
//! Layout decisions that matter at 10M entries:
//!
//! * Timer nodes live in one flat arena with a free list — no
//!   allocation per timer, no box per node. A node is 24 bytes, so 10M
//!   armed timers is ~240 MB, most of it cold.
//! * Slots are intrusive singly-linked lists threaded through the
//!   arena (`next` indices), so insert is a two-word head push. An id
//!   maps to its *current* node through `node_of`; re-arm and cancel
//!   just redirect that mapping and let the stale node be reclaimed
//!   when its slot next drains (lazy deletion keeps both O(1)).
//! * 4 levels × 64 slots at one-second ticks cover ~194 days; anything
//!   farther parks in the top level and re-files inward as the wheel
//!   turns (amortized O(levels) = O(1) per timer).
//! * Firing order within a tick is deterministic: the slot is drained
//!   and the due entries sorted by insertion sequence, so dequeue
//!   order is exactly "due tick, then insertion order" — the contract
//!   the naive-model equivalence proptest checks.
//!
//! The wheel counts its own work ([`WheelOps`]) so the scheduler
//! experiment can *prove* the O(1) claim with deterministic numbers
//! instead of wall-clock noise.

/// Sentinel for "no node" in the intrusive lists and in `node_of`.
const NONE: u32 = u32::MAX;

/// log₂(slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `l` slots are 64ˡ ticks wide.
const LEVELS: usize = 4;

/// One timer node in the arena.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Absolute due tick (clamped to `now + 1` at insert).
    due: u64,
    /// Insertion sequence, the within-tick tiebreak.
    seq: u64,
    /// The timer id this node was armed for.
    id: u32,
    /// Next node in the same slot list, or `NONE`.
    next: u32,
}

/// Deterministic work counters for the O(1)-cost evidence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelOps {
    /// Ticks the wheel advanced through.
    pub ticks: u64,
    /// Slot lists examined (level-0 drains plus cascade drains).
    pub slot_visits: u64,
    /// Nodes moved inward by cascades.
    pub cascaded: u64,
    /// Timers fired.
    pub fired: u64,
}

impl WheelOps {
    /// Total node/slot touches — the "work" the O(1) claim bounds.
    pub fn touches(&self) -> u64 {
        self.slot_visits + self.cascaded + self.fired
    }
}

/// The hierarchical timer wheel. At most one pending timer per id;
/// inserting an armed id moves it.
#[derive(Debug, Clone)]
pub struct TimerWheel {
    /// Current tick. A timer fires when the wheel reaches its due tick.
    now: u64,
    /// `slots[level][i]` is the head of an intrusive node list.
    slots: Vec<Vec<u32>>,
    /// Node arena.
    nodes: Vec<Node>,
    /// Free node indices available for reuse.
    free: Vec<u32>,
    /// id → its current node, or `NONE` when disarmed.
    node_of: Vec<u32>,
    /// Insertion counter for the deterministic tiebreak.
    seq: u64,
    /// Armed-timer count.
    len: usize,
    /// Scratch for sorting a drained slot (kept to avoid re-allocation).
    scratch: Vec<(u64, u32)>,
}

impl TimerWheel {
    /// An empty wheel positioned at `now_tick`.
    pub fn new(now_tick: u64) -> TimerWheel {
        TimerWheel {
            now: now_tick,
            slots: vec![vec![NONE; SLOTS]; LEVELS],
            nodes: Vec::new(),
            free: Vec::new(),
            node_of: Vec::new(),
            seq: 0,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arena size in nodes (armed + not-yet-reclaimed stale), for
    /// memory accounting.
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Arms (or re-arms) timer `id` for absolute tick `due` — clamped
    /// to `now + 1`, so a past-due insert fires on the next tick. O(1).
    pub fn insert(&mut self, id: u32, due: u64) {
        let idx = id as usize;
        if idx >= self.node_of.len() {
            self.node_of.resize(idx + 1, NONE);
        }
        if self.node_of[idx] == NONE {
            self.len += 1;
        }
        // Any previous node for this id goes stale and is reclaimed
        // when its slot next drains.
        let due = due.max(self.now + 1);
        self.seq += 1;
        let (level, slot) = self.place(due);
        let node = Node {
            due,
            seq: self.seq,
            id,
            next: self.slots[level][slot],
        };
        let n = match self.free.pop() {
            Some(n) => {
                self.nodes[n as usize] = node;
                n
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        };
        self.slots[level][slot] = n;
        self.node_of[idx] = n;
    }

    /// Disarms timer `id` if armed; the node is reclaimed lazily. O(1).
    pub fn cancel(&mut self, id: u32) -> bool {
        let idx = id as usize;
        if idx < self.node_of.len() && self.node_of[idx] != NONE {
            self.node_of[idx] = NONE;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Which (level, slot) an absolute `due > now` belongs in.
    fn place(&self, due: u64) -> (usize, usize) {
        let delta = due.saturating_sub(self.now);
        for level in 0..LEVELS - 1 {
            if delta < 1u64 << (SLOT_BITS * (level as u32 + 1)) {
                let slot = (due >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                return (level, slot);
            }
        }
        let top = LEVELS - 1;
        let slot = (due >> (SLOT_BITS * top as u32)) as usize & (SLOTS - 1);
        (top, slot)
    }

    /// Advances the wheel to `tick`, appending fired timer ids to
    /// `fired` in deterministic (due, insertion-seq) order.
    ///
    /// Cost: O(ticks advanced) slot visits plus amortized O(1) per
    /// fired or cascaded node — independent of how many timers are
    /// armed. An empty wheel fast-forwards in O(1), which is what makes
    /// sparse virtual timelines (hours between polls) affordable.
    pub fn advance_to(&mut self, tick: u64, fired: &mut Vec<u32>, ops: &mut WheelOps) {
        while self.now < tick {
            if self.len == 0 {
                self.now = tick;
                return;
            }
            self.now += 1;
            ops.ticks += 1;
            let t = self.now;
            // Highest level whose digit wraps at t; cascade from the
            // outside in so re-filed nodes keep trickling toward level
            // 0 within this same tick.
            let mut wrap = 0;
            for level in 1..LEVELS {
                if t & ((1u64 << (SLOT_BITS * level as u32)) - 1) == 0 {
                    wrap = level;
                } else {
                    break;
                }
            }
            for level in (1..=wrap).rev() {
                let slot = (t >> (SLOT_BITS * level as u32)) as usize & (SLOTS - 1);
                self.cascade(level, slot, ops);
            }
            self.drain_level0(t, fired, ops);
        }
    }

    /// True if node `n` is still the live node for its id.
    fn live(&self, n: u32) -> bool {
        self.node_of[self.nodes[n as usize].id as usize] == n
    }

    /// Re-files every live node of an outer-level slot inward.
    fn cascade(&mut self, level: usize, slot: usize, ops: &mut WheelOps) {
        let mut head = std::mem::replace(&mut self.slots[level][slot], NONE);
        ops.slot_visits += 1;
        while head != NONE {
            let n = head;
            let node = self.nodes[n as usize];
            head = node.next;
            if !self.live(n) {
                self.free.push(n);
                continue;
            }
            ops.cascaded += 1;
            // delta shrank below this level's span, so the node lands
            // at a lower level (nodes past the top-level horizon may
            // re-file into the same top slot until they come in range).
            let (new_level, new_slot) = self.place(node.due);
            self.nodes[n as usize].next = self.slots[new_level][new_slot];
            self.slots[new_level][new_slot] = n;
        }
    }

    /// Fires the level-0 slot for tick `t`.
    fn drain_level0(&mut self, t: u64, fired: &mut Vec<u32>, ops: &mut WheelOps) {
        let slot = t as usize & (SLOTS - 1);
        let mut head = std::mem::replace(&mut self.slots[0][slot], NONE);
        ops.slot_visits += 1;
        self.scratch.clear();
        while head != NONE {
            let n = head;
            let node = self.nodes[n as usize];
            head = node.next;
            if !self.live(n) {
                self.free.push(n);
                continue;
            }
            if node.due > t {
                // Same slot index, a later 64-tick cycle: re-thread.
                self.nodes[n as usize].next = self.slots[0][slot];
                self.slots[0][slot] = n;
                continue;
            }
            self.scratch.push((node.seq, n));
        }
        // Deterministic within-tick order: insertion sequence.
        self.scratch.sort_unstable();
        for i in 0..self.scratch.len() {
            let (_, n) = self.scratch[i];
            let id = self.nodes[n as usize].id;
            self.node_of[id as usize] = NONE;
            self.free.push(n);
            self.len -= 1;
            ops.fired += 1;
            fired.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel, to: u64) -> Vec<u32> {
        let mut fired = Vec::new();
        let mut ops = WheelOps::default();
        w.advance_to(to, &mut fired, &mut ops);
        fired
    }

    #[test]
    fn fires_in_due_then_insertion_order() {
        let mut w = TimerWheel::new(0);
        w.insert(7, 100);
        w.insert(3, 10);
        w.insert(9, 10);
        w.insert(1, 5_000); // level 2
        assert_eq!(w.len(), 4);
        assert_eq!(drain(&mut w, 9), Vec::<u32>::new());
        assert_eq!(drain(&mut w, 10), vec![3, 9]);
        assert_eq!(drain(&mut w, 200), vec![7]);
        assert_eq!(drain(&mut w, 6_000), vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_due_inserts_fire_on_the_next_tick() {
        let mut w = TimerWheel::new(1_000);
        w.insert(0, 3); // long past
        w.insert(1, 1_000); // exactly now
        assert_eq!(drain(&mut w, 1_001), vec![0, 1]);
    }

    #[test]
    fn rearm_moves_the_timer_and_reclaims_the_stale_node() {
        let mut w = TimerWheel::new(0);
        w.insert(5, 10);
        w.insert(5, 70); // moved before firing
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, 60), Vec::<u32>::new());
        assert_eq!(drain(&mut w, 70), vec![5]);
        assert!(w.is_empty());
        // The stale node was freed when slot 10 drained.
        assert!(w.capacity() <= 2);
        w.insert(6, 100);
        assert_eq!(w.capacity(), 2, "free list reuses reclaimed nodes");
    }

    #[test]
    fn cancel_disarms() {
        let mut w = TimerWheel::new(0);
        w.insert(2, 40);
        assert!(w.cancel(2));
        assert!(!w.cancel(2));
        assert_eq!(drain(&mut w, 100), Vec::<u32>::new());
        assert!(w.is_empty());
    }

    #[test]
    fn empty_wheel_fast_forwards() {
        let mut w = TimerWheel::new(0);
        let mut fired = Vec::new();
        let mut ops = WheelOps::default();
        w.advance_to(1 << 40, &mut fired, &mut ops);
        assert_eq!(ops.ticks, 0, "no per-tick work when nothing is armed");
        assert_eq!(w.now(), 1 << 40);
        // And a timer armed afterwards still fires correctly.
        w.insert(1, (1 << 40) + 130);
        assert_eq!(drain(&mut w, (1 << 40) + 200), vec![1]);
    }

    #[test]
    fn distant_timers_cascade_through_all_levels() {
        let mut w = TimerWheel::new(0);
        // Past the 64³-tick mark: parks in the top level and re-files
        // inward through every level on the way down.
        let far = (1u64 << 18) + 12_345;
        w.insert(0, far);
        w.insert(1, 65); // level 1
        w.insert(2, 64 * 64 + 1); // level 2
        assert_eq!(drain(&mut w, 65), vec![1]);
        assert_eq!(drain(&mut w, 64 * 64 + 1), vec![2]);
        assert_eq!(drain(&mut w, far - 1), Vec::<u32>::new());
        assert_eq!(drain(&mut w, far), vec![0]);
    }

    #[test]
    fn level0_slot_collisions_do_not_fire_early() {
        let mut w = TimerWheel::new(0);
        // Same level-0 slot index (5), different cycles.
        w.insert(0, 5);
        w.insert(1, 5 + 64);
        assert_eq!(drain(&mut w, 5), vec![0]);
        assert_eq!(drain(&mut w, 68), Vec::<u32>::new());
        assert_eq!(drain(&mut w, 69), vec![1]);
    }

    #[test]
    fn cascade_boundary_timers_fire_on_time() {
        // Dues that sit exactly on cascade boundaries (multiples of 64
        // and 64²) must fire at their tick, not a frame late.
        let mut w = TimerWheel::new(0);
        w.insert(0, 64);
        w.insert(1, 128);
        w.insert(2, 64 * 64);
        assert_eq!(drain(&mut w, 64), vec![0]);
        assert_eq!(drain(&mut w, 128), vec![1]);
        assert_eq!(drain(&mut w, 64 * 64), vec![2]);
    }

    #[test]
    fn ops_counters_add_up() {
        let mut w = TimerWheel::new(0);
        for id in 0..100u32 {
            w.insert(id, 1 + (id as u64 % 50));
        }
        let mut fired = Vec::new();
        let mut ops = WheelOps::default();
        w.advance_to(50, &mut fired, &mut ops);
        assert_eq!(ops.fired, 100);
        assert_eq!(ops.ticks, 50);
        assert_eq!(fired.len(), 100);
        assert!(ops.touches() >= ops.fired);
    }
}
