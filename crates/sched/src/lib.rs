//! aide-sched — the adaptive change-rate scheduler.
//!
//! The paper's w3newer decides *when* to poll with fixed per-pattern
//! freshness thresholds (Table 1): every URL matching a pattern is
//! checked at most every `d` days. That wastes the request budget on
//! stable pages and misses volatile ones. This crate replaces the
//! fixed thresholds with learned, per-URL change rates:
//!
//! * [`estimator`] — a Poisson change-rate fit per URL with a
//!   conjugate Gamma prior (pattern-level cold-start defaults), O(1)
//!   per observation, integer-only arithmetic.
//! * [`fixp`] — the deterministic fixed-point `1 − e^(−λΔ)` math that
//!   turns a rate into an *expected freshness gain*.
//! * [`wheel`] — a hierarchical timer wheel that wakes each URL when
//!   its gain crosses the horizon, amortized O(1) per timer and sized
//!   for 10M tracked URLs.
//! * [`ready`] — quantized gain-class queues giving O(1)
//!   highest-gain-first dequeue.
//! * [`scheduler`] — the budgeted, politeness- and breaker-aware
//!   [`AdaptiveScheduler`] tying it together, plus the
//!   [`Gate`] API w3newer's `SchedulePolicy::Adaptive`
//!   uses in-run.
//! * [`persist`] — rate-book snapshots checked into the repository
//!   under a reserved key, inheriting the store's crash-safety.
//!
//! Everything is deterministic on the virtual clock: no wall time, no
//! ambient randomness, no float. See SCHEDULING.md for the operator
//! view (math, tuning knobs, metrics) and DESIGN.md §4k for the
//! architecture rationale.

#![warn(missing_docs)]

pub mod estimator;
pub mod fixp;
pub mod persist;
pub mod ready;
pub mod scheduler;
pub mod wheel;

pub use estimator::{PriorRules, RateBook, RatePrior, UrlRate};
pub use scheduler::{AdaptiveScheduler, Gate, PollTicket, SchedulerConfig};
pub use wheel::{TimerWheel, WheelOps};
