//! Per-URL Poisson change-rate estimation with a conjugate Gamma prior.
//!
//! w3newer's poll history gives, for each URL, a sequence of
//! *interval-censored* observations: "between the previous poll and
//! this one (`Δ` seconds), the page did / did not change". Modelling
//! page changes as a Poisson process with unknown rate `λ` and putting
//! a `Gamma(α₀, β₀)` prior on `λ` makes the update rule trivial and
//! O(1): every poll adds its exposure window to `β`, and every
//! *detected change* adds one event to `α` (an approximation of the
//! censored likelihood that undercounts multi-change windows — see
//! SCHEDULING.md §1 for why that bias is acceptable here). The
//! posterior mean `α/β` is the working rate estimate.
//!
//! The prior is what makes cold URLs schedulable: a URL that has never
//! been polled gets `α₀/β₀` from the first matching *pattern rule*
//! ([`PriorRules`]), so an operator can say "news sites change daily,
//! personal pages weekly" the same way the paper's Table 1 assigns
//! thresholds.
//!
//! Everything is integer arithmetic — `α` in milli-events, `β` in
//! seconds, rates in nano-changes/second — so estimates are
//! bit-reproducible across runs and platforms (the workspace
//! determinism contract, DESIGN.md §4e).

use crate::fixp;
use aide_util::pattern::{Pattern, PatternError};
use aide_util::time::{Duration, DurationParseError, Timestamp};
use std::collections::BTreeMap;
use std::fmt;

/// A Gamma prior over a URL's change rate, expressed as pseudo-counts:
/// `alpha_milli` milli-changes observed over `beta_secs` seconds of
/// pseudo-exposure. `Gamma(1, one week)` — the default — means "assume
/// one change per week until the polls say otherwise".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatePrior {
    /// Pseudo-changes in milli-units (1000 = one change).
    pub alpha_milli: u64,
    /// Pseudo-exposure in seconds.
    pub beta_secs: u64,
}

impl RatePrior {
    /// One pseudo-change per week: a conservative cold-start rate.
    pub const WEEKLY: RatePrior = RatePrior {
        alpha_milli: 1_000,
        beta_secs: 7 * 86_400,
    };

    /// A prior of one pseudo-change per `period`.
    pub fn per(period: Duration) -> RatePrior {
        RatePrior {
            alpha_milli: 1_000,
            beta_secs: period.as_secs().max(1),
        }
    }

    /// The prior mean rate in nano-changes per second.
    pub fn mean_nanohz(&self) -> u64 {
        rate_nanohz(self.alpha_milli, self.beta_secs)
    }
}

impl Default for RatePrior {
    fn default() -> Self {
        RatePrior::WEEKLY
    }
}

/// `alpha_milli / beta_secs` as nano-changes per second.
fn rate_nanohz(alpha_milli: u64, beta_secs: u64) -> u64 {
    // milli/sec → nano/sec is ×10⁶.
    let r = (alpha_milli as u128) * 1_000_000 / (beta_secs.max(1) as u128);
    r.min(u64::MAX as u128) as u64
}

/// Error from [`PriorRules::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriorParseError {
    /// A pattern failed to compile; carries the 1-based line number.
    BadPattern(usize, PatternError),
    /// A period failed to parse; carries the line number.
    BadPeriod(usize, DurationParseError),
    /// A line had no period column.
    MissingPeriod(usize),
}

impl fmt::Display for PriorParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorParseError::BadPattern(n, e) => write!(f, "line {n}: {e}"),
            PriorParseError::BadPeriod(n, e) => write!(f, "line {n}: {e}"),
            PriorParseError::MissingPeriod(n) => write!(f, "line {n}: missing period"),
        }
    }
}

impl std::error::Error for PriorParseError {}

/// Pattern-level cold-start priors, first match wins — the adaptive
/// analogue of the paper's Table 1 threshold file.
#[derive(Debug, Clone)]
pub struct PriorRules {
    rules: Vec<(Pattern, RatePrior)>,
    fallback: RatePrior,
}

impl Default for PriorRules {
    fn default() -> Self {
        PriorRules {
            rules: Vec::new(),
            fallback: RatePrior::WEEKLY,
        }
    }
}

impl PriorRules {
    /// Rules with the given fallback and no patterns.
    pub fn new(fallback: RatePrior) -> PriorRules {
        PriorRules {
            rules: Vec::new(),
            fallback,
        }
    }

    /// Appends a pattern rule (builder style; insertion order wins).
    pub fn rule(mut self, pattern: &str, prior: RatePrior) -> Result<Self, PatternError> {
        self.rules.push((Pattern::new(pattern)?, prior));
        Ok(self)
    }

    /// Parses the threshold-file-like format: one `pattern period` per
    /// line, `#` comments, and a `Default` pattern for the fallback.
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_sched::estimator::PriorRules;
    ///
    /// let rules = PriorRules::parse(
    ///     "# volatile news\nhttp://news\\..* 6h\nDefault 7d\n",
    /// ).unwrap();
    /// let hot = rules.prior_for("http://news.example.com/");
    /// let cold = rules.prior_for("http://example.org/");
    /// assert!(hot.mean_nanohz() > cold.mean_nanohz());
    /// ```
    pub fn parse(text: &str) -> Result<PriorRules, PriorParseError> {
        let mut out = PriorRules::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let Some(pattern_src) = parts.next() else {
                continue; // unreachable: the trimmed line is non-empty
            };
            let period_src = parts.next().ok_or(PriorParseError::MissingPeriod(lineno))?;
            let period =
                Duration::parse(period_src).map_err(|e| PriorParseError::BadPeriod(lineno, e))?;
            let prior = RatePrior::per(period);
            if pattern_src == "Default" {
                out.fallback = prior;
            } else {
                let pattern = Pattern::new(pattern_src)
                    .map_err(|e| PriorParseError::BadPattern(lineno, e))?;
                out.rules.push((pattern, prior));
            }
        }
        Ok(out)
    }

    /// The prior for `url`: first matching rule, else the fallback.
    pub fn prior_for(&self, url: &str) -> RatePrior {
        for (pattern, prior) in &self.rules {
            if pattern.matches(url) {
                return *prior;
            }
        }
        self.fallback
    }

    /// The fallback prior.
    pub fn fallback(&self) -> RatePrior {
        self.fallback
    }
}

/// One URL's posterior state. Obtain via [`RateBook`]; updates are O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UrlRate {
    /// Prior + observed changes, in milli-events.
    pub alpha_milli: u64,
    /// Prior + observed exposure, in seconds.
    pub beta_secs: u64,
    /// Polls recorded (including the baseline-establishing first one).
    pub polls: u64,
    /// Changes detected.
    pub changes: u64,
    /// When the URL was last polled, if ever.
    pub last_poll: Option<Timestamp>,
}

impl UrlRate {
    /// A cold entry carrying only the prior.
    pub fn cold(prior: RatePrior) -> UrlRate {
        UrlRate {
            alpha_milli: prior.alpha_milli,
            beta_secs: prior.beta_secs,
            polls: 0,
            changes: 0,
            last_poll: None,
        }
    }

    /// Records one poll verdict at `now`. The first poll only anchors
    /// the exposure clock: a "changed" verdict with no previous poll
    /// carries no rate information (there is no window it changed
    /// *within*), which also keeps first-contact checks from branding
    /// every new URL volatile.
    pub fn observe(&mut self, changed: bool, now: Timestamp) {
        if let Some(prev) = self.last_poll {
            let elapsed = (now - prev).as_secs().max(1);
            self.beta_secs = self.beta_secs.saturating_add(elapsed);
            if changed {
                self.alpha_milli = self.alpha_milli.saturating_add(1_000);
                self.changes += 1;
            }
        }
        self.polls += 1;
        self.last_poll = Some(match self.last_poll {
            // The exposure clock never runs backwards even if a stale
            // worker reports late.
            Some(prev) if prev > now => prev,
            _ => now,
        });
    }

    /// The posterior mean rate in nano-changes per second.
    pub fn rate_nanohz(&self) -> u64 {
        rate_nanohz(self.alpha_milli, self.beta_secs)
    }

    /// Expected gain of polling after `elapsed`: the probability (in
    /// millionths) that the page changed in that window.
    pub fn p_changed_millionths(&self, elapsed: Duration) -> u64 {
        fixp::p_changed_millionths(self.rate_nanohz(), elapsed.as_secs())
    }
}

/// Error from [`RateBook::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub what: String,
}

impl fmt::Display for RateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rate book line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for RateParseError {}

/// The estimator table: URL → posterior, plus the cold-start rules.
///
/// Iteration and the [`RateBook::emit`] serialization are over a
/// `BTreeMap`, so output order is deterministic.
#[derive(Debug, Clone, Default)]
pub struct RateBook {
    priors: PriorRules,
    rates: BTreeMap<String, UrlRate>,
}

impl RateBook {
    /// An empty book with the given cold-start rules.
    pub fn new(priors: PriorRules) -> RateBook {
        RateBook {
            priors,
            rates: BTreeMap::new(),
        }
    }

    /// The posterior for `url`, materializing a cold entry from the
    /// prior rules if this URL has never been seen.
    pub fn rate(&mut self, url: &str) -> &UrlRate {
        if !self.rates.contains_key(url) {
            let cold = UrlRate::cold(self.priors.prior_for(url));
            self.rates.insert(url.to_string(), cold);
        }
        &self.rates[url]
    }

    /// The posterior for `url` without materializing a cold entry.
    pub fn get(&self, url: &str) -> Option<&UrlRate> {
        self.rates.get(url)
    }

    /// Records one poll verdict for `url` at `now` (O(log n) map walk,
    /// O(1) arithmetic).
    pub fn observe(&mut self, url: &str, changed: bool, now: Timestamp) {
        let prior = self.priors.prior_for(url);
        self.rates
            .entry(url.to_string())
            .or_insert_with(|| UrlRate::cold(prior))
            .observe(changed, now);
    }

    /// Expected gain (millionths) of polling `url` at `now`, measured
    /// from its last poll. A never-polled URL is worth a full million:
    /// the estimator cannot learn anything until a baseline exists.
    pub fn p_changed_at(&mut self, url: &str, now: Timestamp) -> u64 {
        let rate = *self.rate(url);
        match rate.last_poll {
            Some(prev) => rate.p_changed_millionths(now - prev),
            None => fixp::MILLION,
        }
    }

    /// Number of URLs with state.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// True if no URL has state.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Iterates URL → posterior in URL order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &UrlRate)> {
        self.rates.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes the book as tab-separated text, one URL per line —
    /// the same shape as the tracker cache file, and the payload that
    /// [`crate::persist`] checks into the repository.
    ///
    /// ```text
    /// http://example.com/\tam=3000\tbs=777600\tpolls=9\tch=2\tlp=812345678
    /// ```
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for (url, r) in &self.rates {
            out.push_str(url);
            out.push_str(&format!(
                "\tam={}\tbs={}\tpolls={}\tch={}",
                r.alpha_milli, r.beta_secs, r.polls, r.changes
            ));
            if let Some(lp) = r.last_poll {
                out.push_str(&format!("\tlp={}", lp.0));
            }
            out.push('\n');
        }
        out
    }

    /// Parses [`RateBook::emit`] output back into a book with the given
    /// prior rules (priors are configuration, not persisted state).
    pub fn parse(text: &str, priors: PriorRules) -> Result<RateBook, RateParseError> {
        let mut book = RateBook::new(priors);
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            let Some(url) = fields.next() else {
                continue; // unreachable: the line is non-empty
            };
            let mut rate = UrlRate::cold(book.priors.prior_for(url));
            // Cold values hold until overwritten so old books survive
            // field additions.
            for field in fields {
                let Some((key, value)) = field.split_once('=') else {
                    return Err(RateParseError {
                        line: lineno,
                        what: format!("malformed field `{field}`"),
                    });
                };
                let parsed: u64 = value.parse().map_err(|_| RateParseError {
                    line: lineno,
                    what: format!("bad number in `{field}`"),
                })?;
                match key {
                    "am" => rate.alpha_milli = parsed,
                    "bs" => rate.beta_secs = parsed,
                    "polls" => rate.polls = parsed,
                    "ch" => rate.changes = parsed,
                    "lp" => rate.last_poll = Some(Timestamp(parsed)),
                    // Unknown keys are skipped for forward compatibility.
                    _ => {}
                }
            }
            book.rates.insert(url.to_string(), rate);
        }
        Ok(book)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: u64 = 86_400;

    #[test]
    fn cold_urls_take_the_pattern_prior() {
        let rules = PriorRules::parse("http://news\\..* 6h\nDefault 14d\n").unwrap();
        let mut book = RateBook::new(rules);
        let hot = book.rate("http://news.example.com/").rate_nanohz();
        let cold = book.rate("http://quiet.example.org/").rate_nanohz();
        assert_eq!(hot, 1_000_000_000 / (6 * 3_600));
        assert_eq!(cold, 1_000_000_000 / (14 * DAY));
    }

    #[test]
    fn first_poll_only_anchors_the_clock() {
        let mut r = UrlRate::cold(RatePrior::WEEKLY);
        let before = r.rate_nanohz();
        r.observe(true, Timestamp(1_000));
        assert_eq!(r.rate_nanohz(), before, "no window, no evidence");
        assert_eq!(r.changes, 0);
        assert_eq!(r.polls, 1);
        assert_eq!(r.last_poll, Some(Timestamp(1_000)));
    }

    #[test]
    fn changes_raise_the_rate_and_quiet_polls_lower_it() {
        let mut fast = UrlRate::cold(RatePrior::WEEKLY);
        let mut slow = UrlRate::cold(RatePrior::WEEKLY);
        let mut t = Timestamp(0);
        fast.observe(false, t);
        slow.observe(false, t);
        for _ in 0..20 {
            t = t + Duration::seconds(DAY);
            fast.observe(true, t);
            slow.observe(false, t);
        }
        assert!(fast.rate_nanohz() > RatePrior::WEEKLY.mean_nanohz());
        assert!(slow.rate_nanohz() < RatePrior::WEEKLY.mean_nanohz());
        // 20 changes in 20 days on a 1/week prior: close to 1/day.
        let daily = 1_000_000_000 / DAY;
        assert!(fast.rate_nanohz() > daily / 2 && fast.rate_nanohz() < daily * 2);
    }

    #[test]
    fn posterior_mean_sits_between_prior_and_empirical() {
        let prior = RatePrior::WEEKLY;
        let mut r = UrlRate::cold(prior);
        r.observe(false, Timestamp(0));
        for i in 1..=10u64 {
            r.observe(i % 2 == 0, Timestamp(i * DAY));
        }
        // Empirical: 5 changes / 10 days; prior: 1/week. Posterior must
        // sit between them (mediant inequality), compared exactly via
        // cross-multiplication.
        let (ea, eb) = (5_000u128, 10 * DAY as u128);
        let (pa, pb) = (prior.alpha_milli as u128, prior.beta_secs as u128);
        let (qa, qb) = (r.alpha_milli as u128, r.beta_secs as u128);
        assert!(pa * qb <= qa * pb, "posterior below prior");
        assert!(qa * eb <= ea * qb, "posterior above empirical");
    }

    #[test]
    fn late_reports_never_rewind_the_clock() {
        let mut r = UrlRate::cold(RatePrior::WEEKLY);
        r.observe(false, Timestamp(5_000));
        r.observe(false, Timestamp(4_000)); // stale worker
        assert_eq!(r.last_poll, Some(Timestamp(5_000)));
        assert_eq!(r.polls, 2);
    }

    #[test]
    fn emit_parse_roundtrip_is_exact() {
        let rules = PriorRules::parse("http://news\\..* 6h\nDefault 7d\n").unwrap();
        let mut book = RateBook::new(rules.clone());
        let mut t = Timestamp(800_000_000);
        for i in 0..30u64 {
            t = t + Duration::seconds(3_600 * (1 + i % 5));
            book.observe("http://news.site/a", i % 3 == 0, t);
            book.observe("http://quiet.org/b", i % 11 == 0, t);
        }
        book.rate("http://cold.example/"); // materialized, never polled
        let text = book.emit();
        let back = RateBook::parse(&text, rules).unwrap();
        assert_eq!(back.emit(), text);
        assert_eq!(back.len(), 3);
        assert_eq!(
            back.get("http://news.site/a"),
            book.get("http://news.site/a")
        );
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = RateBook::parse("http://x/\tnot-a-field\n", PriorRules::default()).unwrap_err();
        assert_eq!(err.line, 1);
        let err = RateBook::parse(
            "http://x/\tam=1\n\nhttp://y/\tam=ten\n",
            PriorRules::default(),
        )
        .unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn gain_is_monotone_in_elapsed_time() {
        let mut book = RateBook::default();
        assert_eq!(
            book.p_changed_at("http://new.example/", Timestamp(0)),
            fixp::MILLION,
            "never-polled URLs demand a baseline poll"
        );
        book.observe("http://new.example/", false, Timestamp(0));
        let p1 = book.p_changed_at("http://new.example/", Timestamp(DAY));
        let p7 = book.p_changed_at("http://new.example/", Timestamp(7 * DAY));
        assert!(0 < p1 && p1 < p7 && p7 < fixp::MILLION);
    }
}
