//! Property-based tests for the adaptive scheduler.
//!
//! Invariants:
//! - The posterior mean rate always sits between the prior mean and the
//!   empirical rate (mediant inequality), compared exactly by
//!   cross-multiplication.
//! - More observed changes over the same exposure never lower the
//!   estimate (monotonicity).
//! - Identical observation sequences produce byte-identical serialized
//!   state (determinism), and emit/parse round-trips exactly.
//! - The timer wheel fires exactly what a naive sorted model fires, in
//!   the same (due tick, insertion order) sequence, under arbitrary
//!   interleavings of insert / re-arm / cancel / advance.
//! - The gain queues dequeue exactly like a naive stable sort by
//!   (class descending, arrival order).

use aide_sched::estimator::{PriorRules, RateBook, RatePrior, UrlRate};
use aide_sched::wheel::{TimerWheel, WheelOps};
use aide_util::time::Timestamp;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// (gap seconds, changed) poll sequences.
fn obs_strategy() -> impl Strategy<Value = Vec<(u64, bool)>> {
    proptest::collection::vec((1u64..1_000_000, any::<bool>()), 0..40)
}

fn replay(prior: RatePrior, obs: &[(u64, bool)]) -> UrlRate {
    let mut r = UrlRate::cold(prior);
    let mut t = Timestamp(1_000);
    r.observe(false, t); // baseline
    for &(gap, changed) in obs {
        t = t + aide_util::time::Duration::seconds(gap);
        r.observe(changed, t);
    }
    r
}

proptest! {
    #[test]
    fn posterior_sits_between_prior_and_empirical(
        obs in obs_strategy(),
        prior_period in 3_600u64..5_000_000,
    ) {
        let prior = RatePrior { alpha_milli: 1_000, beta_secs: prior_period };
        let r = replay(prior, &obs);
        // Empirical evidence accumulated beyond the prior.
        let ea = (r.alpha_milli - prior.alpha_milli) as u128;
        let eb = (r.beta_secs - prior.beta_secs) as u128;
        prop_assume!(eb > 0);
        let (pa, pb) = (prior.alpha_milli as u128, prior.beta_secs as u128);
        let (qa, qb) = (r.alpha_milli as u128, r.beta_secs as u128);
        // posterior vs prior: on the same side as empirical vs prior.
        if ea * pb >= pa * eb {
            prop_assert!(qa * pb >= pa * qb, "posterior fell below prior");
            prop_assert!(qa * eb <= ea * qb, "posterior overshot empirical");
        } else {
            prop_assert!(qa * pb <= pa * qb, "posterior rose above prior");
            prop_assert!(qa * eb >= ea * qb, "posterior undershot empirical");
        }
    }

    #[test]
    fn more_changes_never_lower_the_estimate(obs in obs_strategy()) {
        // Same exposure timeline; the second sequence turns some
        // no-change verdicts into changes (a superset of events).
        let base = replay(RatePrior::WEEKLY, &obs);
        let mut boosted_obs = obs.clone();
        for (i, o) in boosted_obs.iter_mut().enumerate() {
            if i % 2 == 0 {
                o.1 = true;
            }
        }
        let boosted = replay(RatePrior::WEEKLY, &boosted_obs);
        prop_assert!(boosted.changes >= base.changes);
        prop_assert!(
            boosted.rate_nanohz() >= base.rate_nanohz(),
            "extra changes lowered the rate: {} -> {}",
            base.rate_nanohz(),
            boosted.rate_nanohz()
        );
    }

    #[test]
    fn estimation_is_deterministic(obs in obs_strategy()) {
        let run = || {
            let mut book = RateBook::new(PriorRules::default());
            let mut t = Timestamp(500);
            for (i, &(gap, changed)) in obs.iter().enumerate() {
                t = t + aide_util::time::Duration::seconds(gap);
                book.observe(&format!("http://h{}.example/", i % 5), changed, t);
            }
            book.emit()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn rate_book_roundtrips_exactly(obs in obs_strategy()) {
        let rules = PriorRules::default();
        let mut book = RateBook::new(rules.clone());
        let mut t = Timestamp(500);
        for (i, &(gap, changed)) in obs.iter().enumerate() {
            t = t + aide_util::time::Duration::seconds(gap);
            book.observe(&format!("http://h{}.example/", i % 7), changed, t);
        }
        let text = book.emit();
        let back = RateBook::parse(&text, rules).unwrap();
        prop_assert_eq!(back.emit(), text);
    }
}

// ---------------------------------------------------------------- wheel

/// A scripted wheel operation.
#[derive(Debug, Clone)]
enum Op {
    /// Arm (or re-arm) id at now + delta.
    Insert(u32, u64),
    /// Cancel id.
    Cancel(u32),
    /// Advance the clock by this many ticks and compare fired sets.
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Repeated arms bias the uniform choice toward inserts.
    prop_oneof![
        (0u32..24, 0u64..6_000).prop_map(|(id, d)| Op::Insert(id, d)),
        (0u32..24, 0u64..6_000).prop_map(|(id, d)| Op::Insert(id, d)),
        (0u32..24, 0u64..6_000).prop_map(|(id, d)| Op::Insert(id, d)),
        (0u32..24).prop_map(Op::Cancel),
        (1u64..300).prop_map(Op::Advance),
        (1u64..300).prop_map(Op::Advance),
    ]
}

/// The obviously-correct model: a sorted map keyed by (due, seq).
#[derive(Default)]
struct NaiveWheel {
    now: u64,
    seq: u64,
    armed: BTreeMap<u32, (u64, u64)>,
}

impl NaiveWheel {
    fn insert(&mut self, id: u32, due: u64) {
        self.seq += 1;
        self.armed.insert(id, (due.max(self.now + 1), self.seq));
    }

    fn cancel(&mut self, id: u32) {
        self.armed.remove(&id);
    }

    fn advance_to(&mut self, t: u64) -> Vec<u32> {
        self.now = self.now.max(t);
        let mut due: Vec<(u64, u64, u32)> = self
            .armed
            .iter()
            .filter(|(_, &(d, _))| d <= t)
            .map(|(&id, &(d, s))| (d, s, id))
            .collect();
        due.sort_unstable();
        for &(_, _, id) in &due {
            self.armed.remove(&id);
        }
        due.into_iter().map(|(_, _, id)| id).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_matches_the_naive_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut wheel = TimerWheel::new(0);
        let mut naive = NaiveWheel::default();
        let mut wheel_ops = WheelOps::default();
        for op in &ops {
            match *op {
                Op::Insert(id, delta) => {
                    wheel.insert(id, wheel.now() + delta);
                    naive.insert(id, naive.now + delta);
                }
                Op::Cancel(id) => {
                    let a = wheel.cancel(id);
                    let b = naive.armed.contains_key(&id);
                    naive.cancel(id);
                    prop_assert_eq!(a, b, "cancel disagreed for id {}", id);
                }
                Op::Advance(by) => {
                    let t = wheel.now() + by;
                    let mut fired = Vec::new();
                    wheel.advance_to(t, &mut fired, &mut wheel_ops);
                    let expect = naive.advance_to(t);
                    prop_assert_eq!(&fired, &expect, "dequeue order diverged at tick {}", t);
                }
            }
            prop_assert_eq!(wheel.len(), naive.armed.len());
        }
        // Drain everything left and compare the tail too.
        let t = wheel.now() + 2_000_000;
        let mut fired = Vec::new();
        wheel.advance_to(t, &mut fired, &mut wheel_ops);
        prop_assert_eq!(fired, naive.advance_to(t));
    }

    #[test]
    fn gain_queues_match_a_stable_sort(
        pushes in proptest::collection::vec((0u8..64, 0u32..1000), 0..200),
    ) {
        let mut q = aide_sched::ready::GainQueues::new();
        for &(class, id) in &pushes {
            q.push(class, id);
        }
        let mut expect: Vec<(i16, usize, u32)> = pushes
            .iter()
            .enumerate()
            .map(|(i, &(class, id))| (-(class as i16), i, id))
            .collect();
        expect.sort();
        let mut got = Vec::new();
        while let Some((_, id)) = q.pop() {
            got.push(id);
        }
        let expect: Vec<u32> = expect.into_iter().map(|(_, _, id)| id).collect();
        prop_assert_eq!(got, expect);
    }
}
