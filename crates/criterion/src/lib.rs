//! An offline, in-tree subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model (simpler than real criterion, deliberately): each
//! benchmark is warmed up briefly, then timed over enough iterations to
//! fill a fixed measurement window; the mean per-iteration time is
//! printed along with throughput when configured. There is no statistical
//! analysis, plotting, or HTML report. Wall-clock numbers are still
//! comparable run-to-run on the same machine, which is what the
//! EXPERIMENTS.md tables need.
//!
//! Environment knobs:
//! - `AIDE_BENCH_MEASURE_MS`: measurement window per benchmark
//!   (default 300).
//! - `AIDE_BENCH_WARMUP_MS`: warmup window per benchmark (default 100).
//! - `AIDE_BENCH_SMOKE`: when set (to anything non-empty), skip warmup
//!   and run each benchmark body exactly once — a CI-speed check that
//!   every bench still compiles and executes, not a measurement.
//! - `AIDE_BENCH_JSON`: when set to a path, `criterion_main!` writes all
//!   results there as a JSON array of
//!   `{"name": ..., "ns_per_iter": ..., "iters": ...}` records.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter (the group supplies the name).
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// The benchmark driver.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("AIDE_BENCH_WARMUP_MS", 100),
            measure: env_ms("AIDE_BENCH_MEASURE_MS", 300),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.warmup, self.measure, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility: sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &name,
            self.criterion.warmup,
            self.criterion.measure,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &name,
            self.criterion.warmup,
            self.criterion.measure,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// (total elapsed, iterations) of the measured phase.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring for the configured
    /// window.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if smoke_mode() {
            // Smoke mode: prove the bench runs; the time is incidental.
            let begin = Instant::now();
            black_box(f());
            self.result = Some((begin.elapsed(), 1));
            return;
        }
        // Warmup, and calibrate the per-iteration cost.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Measure in batches sized to roughly 1/10 of the window, so the
        // clock is read rarely relative to the work.
        let batch = (self.measure.as_nanos() / 10 / per_iter.max(1)).clamp(1, 1 << 20) as u64;
        let mut iters: u64 = 0;
        let begin = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            if begin.elapsed() >= self.measure {
                break;
            }
        }
        self.result = Some((begin.elapsed(), iters));
    }
}

fn smoke_mode() -> bool {
    std::env::var("AIDE_BENCH_SMOKE").is_ok_and(|v| !v.is_empty())
}

/// Results accumulated across every benchmark of the process, drained by
/// [`write_json_report`]: `(name, ns_per_iter, iters)`.
static REPORT: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

/// Writes all results recorded so far to the path named by
/// `AIDE_BENCH_JSON`, if set. `criterion_main!` calls this after the
/// groups run; harnesses that hand-roll `main` can call it directly.
pub fn write_json_report() {
    let Ok(path) = std::env::var("AIDE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let rows = REPORT.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, (name, ns, iters)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"ns_per_iter\": {ns:.1}, \"iters\": {iters}}}{sep}\n",
            name.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("failed to write bench report {path}: {e}");
    }
}

fn run_one(
    name: &str,
    warmup: Duration,
    measure: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        warmup,
        measure,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            REPORT.lock().unwrap().push((name.to_string(), ns, iters));
            let rate = match throughput {
                Some(Throughput::Bytes(bytes)) => {
                    let mbps = bytes as f64 / ns * 1e9 / (1024.0 * 1024.0);
                    format!("  thrpt: {mbps:>10.2} MiB/s")
                }
                Some(Throughput::Elements(n)) => {
                    let eps = n as f64 / ns * 1e9;
                    format!("  thrpt: {eps:>10.0} elem/s")
                }
                None => String::new(),
            };
            println!("{name:<50} time: {} ({iters} iters){rate}", fmt_ns(ns));
        }
        None => println!("{name:<50} (no measurement: bencher.iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:>9.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:>9.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:>9.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:>9.3}  s/iter", ns / 1_000_000_000.0)
    }
}

/// Binds benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}
