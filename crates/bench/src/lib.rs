//! Experiment regenerators live in src/bin; see DESIGN.md.
