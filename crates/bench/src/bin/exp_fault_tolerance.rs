//! Fault-tolerance experiment: a flaky network vs the tracker's
//! robustness layer.
//!
//! §7 of the paper reports that in practice "several hosts were
//! consistently unreachable" and transient errors were a fact of life
//! for a poller sweeping hundreds of URLs. This experiment injects a
//! seeded fault storm — >=10% of requests globally time out, one host
//! answers 503 with Retry-After half the time, another is hard-down —
//! into a world where the true state of every page is known, then runs
//! the same sweep under three tracker configurations:
//!
//! - `bare`: no retries, no breaker (the seed tracker);
//! - `retry`: exponential backoff with deterministic jitter;
//! - `retry+breaker`: backoff plus a shared per-host circuit breaker.
//!
//! What must hold (and is asserted, not just printed):
//! - **zero false "changed" entries** in every configuration — a
//!   transient fault may hide a change or mark a page stale, but must
//!   never fabricate one;
//! - the retry layer's failure accounting **reconciles exactly** with
//!   the simulated Web's own `NetStats.net_errors` counter.

use aide_simweb::browser::Bookmark;
use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
use aide_simweb::http::Status;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::breaker::{BreakerConfig, CircuitBreaker};
use aide_w3newer::checker::UrlStatus;
use aide_w3newer::config::ThresholdConfig;
use aide_w3newer::retry::RetryPolicy;
use aide_w3newer::W3Newer;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const HOSTS: usize = 10;
const PAGES_PER_HOST: usize = 10;
const FAULT_SEED: u64 = 42;

/// A world whose ground truth is known exactly: every page was visited
/// yesterday; pages 0 and 1 on each host were then genuinely modified,
/// the rest were not. Any reported change outside that set is a lie.
fn build_world() -> (
    Clock,
    Web,
    Vec<Bookmark>,
    HashMap<String, Timestamp>,
    HashSet<String>,
) {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 9, 0, 0));
    let web = Web::new(clock.clone());
    let visited = clock.now() - Duration::days(1);
    let mut hotlist = Vec::new();
    let mut history = HashMap::new();
    let mut truly_changed = HashSet::new();
    for h in 0..HOSTS {
        for p in 0..PAGES_PER_HOST {
            let url = format!("http://host{h}.example.com/page{p}.html");
            let modified = if p < 2 {
                truly_changed.insert(url.clone());
                clock.now() - Duration::hours(3) // after the visit
            } else {
                clock.now() - Duration::days(10) // long before the visit
            };
            web.set_page(&url, &format!("<HTML><P>body {h}/{p}</HTML>"), modified)
                .unwrap();
            history.insert(url.clone(), visited);
            hotlist.push(Bookmark {
                title: format!("Page {h}/{p}"),
                url,
            });
        }
    }
    (clock, web, hotlist, history, truly_changed)
}

fn storm() -> FaultPlan {
    FaultPlan::new(FAULT_SEED)
        .everywhere(FaultEpisode::rate(0.12, FaultKind::Timeout))
        .for_host(
            "host2.example.com",
            FaultEpisode::rate(
                0.5,
                FaultKind::Transient {
                    status: Status::ServiceUnavailable,
                    retry_after_secs: Some(20),
                },
            ),
        )
        .for_host(
            "host7.example.com",
            FaultEpisode::rate(1.0, FaultKind::ConnectionRefused),
        )
}

struct Outcome {
    true_changed: usize,
    false_changed: usize,
    unchanged: usize,
    errors: usize,
    stale: usize,
    requests: u64,
    faults: u64,
    retries: u64,
    recovered: u64,
    exhausted: u64,
    breaker_denied: u64,
    slept_secs: u64,
    reconciled: bool,
}

fn run(config: &str) -> Outcome {
    let (_clock, web, hotlist, history, truly_changed) = build_world();
    web.install_fault_plan(storm());
    let mut w = W3Newer::new(ThresholdConfig::default());
    w.flags.staleness = Duration::ZERO;
    w.flags.abort_after_consecutive_errors = None;
    match config {
        "bare" => {}
        "retry" => w.retry = RetryPolicy::standard(7),
        "retry+breaker" => {
            w.retry = RetryPolicy::standard(7);
            w.breaker = Some(Arc::new(CircuitBreaker::new(BreakerConfig::default())));
        }
        other => panic!("unknown config {other}"),
    }
    let report = w.run_serial(&hotlist, &move |u| history.get(u).copied(), &web, None);
    let mut out = Outcome {
        true_changed: 0,
        false_changed: 0,
        unchanged: 0,
        errors: 0,
        stale: 0,
        requests: web.stats().requests,
        faults: web.stats().faults_injected,
        retries: report.net.retries,
        recovered: report.net.recovered,
        exhausted: report.net.exhausted,
        breaker_denied: report.net.breaker_denied,
        slept_secs: report.net.slept_secs,
        // The bare tracker records no retry stats at all (that is the
        // byte-compat guarantee), so reconciliation only applies when
        // the robustness layer is on.
        reconciled: config == "bare" || report.net.net_failures == web.stats().net_errors,
    };
    for e in &report.entries {
        match &e.status {
            s if s.is_changed() => {
                if truly_changed.contains(&e.url) {
                    out.true_changed += 1;
                } else {
                    out.false_changed += 1;
                }
            }
            UrlStatus::Unchanged { .. } => out.unchanged += 1,
            UrlStatus::Degraded { .. } => out.stale += 1,
            UrlStatus::Error { .. } => out.errors += 1,
            _ => {}
        }
    }
    out
}

fn main() {
    let configs = ["bare", "retry", "retry+breaker"];
    println!(
        "=== one sweep of {} URLs under a seeded fault storm (seed {FAULT_SEED}) ===",
        HOSTS * PAGES_PER_HOST
    );
    println!(
        "(>=12% global timeouts; host2 answers 503 half the time; host7 is down;\n \
         {} pages genuinely changed since the last visit)\n",
        2 * HOSTS
    );
    println!(
        "{:<16}{:>9}{:>10}{:>10}{:>8}{:>7}{:>9}{:>8}{:>9}{:>10}{:>10}{:>8}{:>8}",
        "config",
        "true-chg",
        "false-chg",
        "unchanged",
        "errors",
        "stale",
        "requests",
        "faults",
        "retries",
        "recovered",
        "exhausted",
        "denied",
        "slept"
    );
    println!(
        "{}",
        "-".repeat(16 + 9 + 10 + 10 + 8 + 7 + 9 + 8 + 9 + 10 + 10 + 8 + 8)
    );
    for config in configs {
        let o = run(config);
        println!(
            "{:<16}{:>9}{:>10}{:>10}{:>8}{:>7}{:>9}{:>8}{:>9}{:>10}{:>10}{:>8}{:>7}s",
            config,
            o.true_changed,
            o.false_changed,
            o.unchanged,
            o.errors,
            o.stale,
            o.requests,
            o.faults,
            o.retries,
            o.recovered,
            o.exhausted,
            o.breaker_denied,
            o.slept_secs
        );
        assert_eq!(
            o.false_changed, 0,
            "{config}: a transient fault was reported as a content change"
        );
        assert!(
            o.reconciled,
            "{config}: retry-layer failure count does not reconcile with NetStats.net_errors"
        );
        assert!(
            o.faults * 100 >= o.requests * 10,
            "{config}: fault storm fell below the 10% floor"
        );
    }
    println!(
        "\n(asserted for every row: zero false \"changed\" entries, a >=10% injected\n \
         fault rate, and — whenever the robustness layer is on — the retry layer's\n \
         failure count reconciling exactly with the Web's net_errors.)"
    );
    println!(
        "(the bare tracker turns every surviving fault into a report error; the\n \
         retry rows recover most transient faults and label the irrecoverable\n \
         remainder stale; the breaker row additionally stops paying per-URL\n \
         retry storms to the dead host7.)"
    );
}
