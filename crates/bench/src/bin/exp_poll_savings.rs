//! §3 scalability experiment: polling traffic vs hotlist size.
//!
//! The paper's argument: w3new and its peers "poll every URL with the
//! same frequency", while w3newer "omits checks of pages already known to
//! be modified... and pages that have been viewed by the user within some
//! threshold", consults its own cache and the proxy cache before HTTP,
//! and obeys per-pattern thresholds. This sweep measures total network
//! requests over a 30-day run for hotlist sizes 10–1000, under four
//! policies:
//!
//! - `every-run`: thresholds off, cache distrusted (the w3new baseline);
//! - `thresholds`: a 2-day default threshold;
//! - `+cache`: thresholds plus trusted modification cache (1-week
//!   staleness);
//! - `+proxy`: all of the above plus a shared proxy cache populated by
//!   the user's own browsing.

use aide_simweb::browser::Bookmark;
use aide_simweb::net::Web;
use aide_simweb::proxy::ProxyCache;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::checker::Flags;
use aide_w3newer::config::{Threshold, ThresholdConfig};
use aide_w3newer::W3Newer;
use aide_workloads::evolve::tick_all;
use aide_workloads::rng::Rng;
use aide_workloads::sites::{population, PopulationConfig};

struct Policy {
    name: &'static str,
    default_threshold: Threshold,
    staleness: Duration,
    use_proxy: bool,
}

fn run(policy: &Policy, n_urls: usize) -> u64 {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 7, 0, 0));
    let web = Web::new(clock.clone());
    let cfg = PopulationConfig {
        urls: n_urls,
        hosts: (n_urls / 10).max(1),
        typical_bytes: 3_000,
        churners: (n_urls / 50).max(1),
        churner_bytes: 10_000,
    };
    let mut pages = population(&web, 777, &cfg);
    let proxy = ProxyCache::new(web.clone(), Duration::hours(12));
    let hotlist: Vec<Bookmark> = pages
        .iter()
        .map(|p| Bookmark {
            title: p.url.clone(),
            url: p.url.clone(),
        })
        .collect();

    let mut tracker = W3Newer::new(ThresholdConfig::new(policy.default_threshold));
    tracker.flags = Flags {
        staleness: policy.staleness,
        ..Flags::default()
    };

    // The tracked user browses a few pages a day (updating the history);
    // separately, when the proxy is in play, *colleagues* sharing the
    // AT&T-wide proxy browse a larger slice of the same popular pages —
    // that is what seeds proxy-cache knowledge the tracker can reuse.
    let mut rng = Rng::new(42);
    let mut history: std::collections::HashMap<String, Timestamp> =
        std::collections::HashMap::new();
    web.reset_stats();
    let mut tracker_requests = 0u64;
    for _day in 0..30u64 {
        clock.advance(Duration::days(1));
        tick_all(&mut pages, &web);
        for _ in 0..(n_urls / 20).max(1) {
            let p = &pages[rng.index(pages.len())];
            history.insert(p.url.clone(), clock.now());
        }
        if policy.use_proxy {
            // Colleagues' browsing, Zipf-skewed toward popular pages.
            for _ in 0..(n_urls / 3).max(2) {
                let p = &pages[rng.zipf(pages.len())];
                let _ = proxy.get(&p.url);
            }
        }
        let browsing_baseline = web.stats().requests;
        let h = history.clone();
        let report = tracker.run(
            &hotlist,
            &move |url| h.get(url).copied(),
            &web,
            if policy.use_proxy { Some(&proxy) } else { None },
        );
        assert!(!report.aborted);
        tracker_requests += web.stats().requests - browsing_baseline;
    }
    tracker_requests
}

fn main() {
    let policies = [
        Policy {
            name: "every-run (w3new)",
            default_threshold: Threshold::ALWAYS,
            staleness: Duration::ZERO,
            use_proxy: false,
        },
        Policy {
            name: "thresholds (2d)",
            default_threshold: Threshold::Every(Duration::days(2)),
            staleness: Duration::ZERO,
            use_proxy: false,
        },
        Policy {
            name: "thresholds+cache",
            default_threshold: Threshold::Every(Duration::days(2)),
            staleness: Duration::days(7),
            use_proxy: false,
        },
        Policy {
            // The proxy as the *only* cached source: w3newer distrusts its
            // own cache (staleness 0) but reads the proxy's dates. Shows
            // the proxy substituting for local state, the §8.3 daemon.
            name: "proxy, no own cache",
            default_threshold: Threshold::Every(Duration::days(2)),
            staleness: Duration::ZERO,
            use_proxy: true,
        },
    ];
    println!("=== tracker network requests over 30 days (lower is better) ===\n");
    print!("{:<24}", "policy \\ hotlist size");
    let sizes = [10usize, 50, 100, 300, 1000];
    for n in sizes {
        print!("{n:>9}");
    }
    println!();
    println!("{}", "-".repeat(24 + 9 * sizes.len()));
    let mut baseline: Vec<u64> = Vec::new();
    for (pi, policy) in policies.iter().enumerate() {
        print!("{:<24}", policy.name);
        for (si, n) in sizes.iter().enumerate() {
            let reqs = run(policy, *n);
            if pi == 0 {
                baseline.push(reqs);
            }
            print!("{reqs:>9}");
            if pi > 0 {
                let _pct = 100.0 * reqs as f64 / baseline[si] as f64;
            }
        }
        println!();
    }
    println!("\n(the w3new row grows ~linearly with hotlist size × runs; each");
    println!(" w3newer refinement should cut it substantially — the paper's");
    println!(" 'economies of scale by avoiding unnecessary HTTP accesses'.)");
}
