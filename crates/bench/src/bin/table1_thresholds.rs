//! Table 1 reproduction: the w3newer threshold configuration and its
//! effect.
//!
//! Prints the configuration exactly as the paper's Table 1 lists it, then
//! runs a 30-day simulation of the Table 1 world twice — once with the
//! thresholds, once with uniform every-run polling (the w3new baseline) —
//! and reports the per-server HEAD/GET traffic each policy generates.
//! The paper's claims to verify: Yahoo sees far less load under its `7d`
//! threshold, Dilbert is never polled, `file:` URLs are free, and att.com
//! pages are checked every run.

use aide::engine::AideEngine;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::config::ThresholdConfig;
use aide_workloads::evolve::tick_all;
use aide_workloads::sites::table1_scenario;

fn run_policy(
    label: &str,
    config: ThresholdConfig,
    trust_cache: bool,
) -> (String, Vec<(String, u64)>, u64) {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 7, 30, 0));
    let web = Web::new(clock.clone());
    let mut scenario = table1_scenario(&web, 42);
    let engine = AideEngine::new(web.clone());
    let user = "douglis@research.att.com";
    let browser = engine.register_user(user, config);
    if !trust_cache {
        // The w3new baseline has no persistent cache: every run re-polls.
        engine
            .set_tracker_flags(
                user,
                aide_w3newer::checker::Flags {
                    staleness: aide_util::time::Duration::ZERO,
                    ..aide_w3newer::checker::Flags::default()
                },
            )
            .unwrap();
    }
    for mark in &scenario.hotlist {
        browser.add_bookmark(&mark.title, &mark.url);
    }
    web.reset_stats();
    for day in 0..30u64 {
        clock.advance(Duration::days(1));
        tick_all(&mut scenario.pages, &web);
        let report = engine.run_tracker(user).unwrap();
        // The user visits changed pages every few days, as real users did.
        if day % 3 == 0 {
            for e in &report.entries {
                if e.status.is_changed() {
                    let _ = browser.visit(&e.url);
                }
            }
        }
    }
    let mut per_host: Vec<(String, u64)> = web
        .hosts()
        .into_iter()
        .map(|h| {
            let s = web.server_stats(&h).unwrap();
            (h, s.total())
        })
        .collect();
    per_host.sort();
    (label.to_string(), per_host, web.stats().requests)
}

fn main() {
    println!("=== Table 1: the w3newer threshold configuration ===\n");
    println!("{}", ThresholdConfig::table1_text());

    let (_, with_thresholds, total_thresh) = run_policy("table1", ThresholdConfig::table1(), true);
    let (_, uniform, total_uniform) = run_policy("uniform", ThresholdConfig::default(), false);

    println!("=== 30-day polling traffic per origin server (requests) ===\n");
    println!("{:<42} {:>10} {:>10}", "host", "thresholds", "every-run");
    println!("{}", "-".repeat(64));
    for ((host, with), (_, without)) in with_thresholds.iter().zip(uniform.iter()) {
        println!("{host:<42} {with:>10} {without:>10}");
    }
    println!("{}", "-".repeat(64));
    println!(
        "{:<42} {total_thresh:>10} {total_uniform:>10}",
        "TOTAL network requests"
    );
    let savings = 100.0 * (1.0 - total_thresh as f64 / total_uniform as f64);
    println!("\nthreshold policy saves {savings:.0}% of all network requests");
    println!("(paper: thresholds exist to 'reduce unnecessary load'; Dilbert");
    println!(" row should be 0 under thresholds — it is never checked.)");
}
