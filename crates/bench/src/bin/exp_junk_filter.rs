//! §3.1 junk-mail experiment: the semantic noisy-change filter.
//!
//! "Pages that report the number of times they have been accessed, or
//! embed the current time, will look different every time they are
//! retrieved", so checksum-based tracking "can lead to the generation of
//! 'junk mail'". The paper leaves the fix as future work ("heuristics to
//! examine the differences at a semantic level"); this repository
//! implements it (`aide::junk`) and this experiment measures it: 30
//! days of daily polling over a mixed population of honest pages and
//! noisy CGI pages, counting change notifications with and without the
//! filter, plus the filter's false-positive/negative rates against
//! ground truth.

use aide::junk::classify;
use aide_simweb::http::Request;
use aide_simweb::net::Web;
use aide_simweb::resource::Resource;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_workloads::edits::EditModel;
use aide_workloads::evolve::EvolvingPage;
use aide_workloads::page::Page;
use aide_workloads::rng::Rng;

fn main() {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 6, 0, 0));
    let web = Web::new(clock.clone());
    let mut rng = Rng::new(31);

    // 20 honest pages that change every few days with real edits.
    let mut honest: Vec<EvolvingPage> = (0..20)
        .map(|i| {
            EvolvingPage::publish(
                &format!("http://honest{i}.org/page.html"),
                Page::generate(&mut rng.fork(i), 4_000),
                EditModel::InPlaceEdit { sentences: 2 },
                Duration::days(3 + i % 4),
                0.3,
                rng.fork(100 + i),
                &web,
            )
        })
        .collect();

    // 10 noisy pages: hit counters and clock pages.
    for i in 0..10 {
        let template = if i % 2 == 0 {
            format!("<HTML><H1>Stats {i}</H1><P>You are visitor number {{HITS}} since June 1995.</HTML>")
        } else {
            format!("<HTML><H1>Status {i}</H1><P>Page generated {{TIME}} by httpd.</HTML>")
        };
        web.set_resource(
            &format!("http://noisy{i}.org/cgi-bin/page"),
            Resource::Cgi { template, hits: 0 },
        )
        .unwrap();
    }

    let all_urls: Vec<String> = (0..20)
        .map(|i| format!("http://honest{i}.org/page.html"))
        .chain((0..10).map(|i| format!("http://noisy{i}.org/cgi-bin/page")))
        .collect();

    // Daily polling with full-body comparison (the checksum regime).
    let mut last_body: std::collections::HashMap<String, String> = Default::default();
    let mut raw_notifications = 0u64;
    let mut filtered_notifications = 0u64;
    let mut false_suppressions = 0u64; // honest change judged junk
    let mut missed_noise = 0u64; // noisy change not judged junk

    for _day in 0..30u64 {
        clock.advance(Duration::days(1));
        aide_workloads::evolve::tick_all(&mut honest, &web);
        for url in &all_urls {
            let body = web.request(&Request::get(url)).unwrap().body;
            let Some(prev) = last_body.insert(url.clone(), body.clone()) else {
                continue; // first observation: baseline
            };
            if prev == body {
                continue;
            }
            raw_notifications += 1;
            let verdict = classify(&prev, &body);
            let is_noisy_page = url.contains("noisy");
            if verdict.junk {
                if !is_noisy_page {
                    false_suppressions += 1;
                }
            } else {
                filtered_notifications += 1;
                if is_noisy_page {
                    missed_noise += 1;
                }
            }
        }
    }

    println!("=== §3.1 junk-mail experiment (30 days, 20 honest + 10 noisy pages) ===\n");
    println!(
        "{:<46} {:>8}",
        "change notifications without filter", raw_notifications
    );
    println!(
        "{:<46} {:>8}",
        "change notifications with semantic filter", filtered_notifications
    );
    println!(
        "{:<46} {:>7.0}%",
        "junk mail eliminated",
        100.0 * (raw_notifications - filtered_notifications) as f64 / raw_notifications as f64
    );
    println!(
        "{:<46} {:>8}",
        "honest changes wrongly suppressed", false_suppressions
    );
    println!(
        "{:<46} {:>8}",
        "noisy changes that slipped through", missed_noise
    );
    println!("\n(noisy pages fire every single day without the filter — the");
    println!(" paper's 'junk mail'. The filter classifies a change as junk only");
    println!(" when every changed word is a number, date, or clock time.)");
}
