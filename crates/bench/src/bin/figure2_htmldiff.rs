//! Figure 2 reproduction: HtmlDiff of two versions of the USENIX home
//! page (9/29/95 vs 11/3/95).
//!
//! Prints the merged page — banner, arrow chain, strike-outs, emphasized
//! additions — plus the comparison statistics, and then shows the same
//! comparison under the alternative presentations §5.2 weighs.

use aide_htmldiff::{html_diff, Options, Presentation};
use aide_workloads::usenix::{USENIX_1995_09_29, USENIX_1995_11_03};

fn main() {
    let opts = Options {
        old_label: "9/29/95".to_string(),
        new_label: "11/3/95".to_string(),
        ..Options::default()
    };

    let result = html_diff(USENIX_1995_09_29, USENIX_1995_11_03, &opts);
    println!("=== Figure 2: merged page ===\n");
    println!("{}", result.html);

    println!("=== comparison statistics ===");
    let s = &result.stats;
    println!("old tokens:            {}", s.old_tokens);
    println!("new tokens:            {}", s.new_tokens);
    println!("common tokens:         {}", s.common_tokens);
    println!("edited-in-place pairs: {}", s.changed_pairs);
    println!("old-only sentences:    {}", s.old_only_sentences);
    println!("new-only sentences:    {}", s.new_only_sentences);
    println!(
        "format-only changes:   {}",
        s.old_only_breaks + s.new_only_breaks
    );
    println!("arrow sites:           {}", s.difference_sites);
    println!("changed fraction:      {:.2}", s.changed_fraction);
    println!("muddle:                {:.2}", result.muddle.muddle);

    println!("\n=== only-differences presentation ===\n");
    let only = html_diff(
        USENIX_1995_09_29,
        USENIX_1995_11_03,
        &Options {
            presentation: Presentation::OnlyDifferences,
            ..opts.clone()
        },
    );
    println!("{}", only.html);

    println!("=== reversed presentation (old markups intact) — banner only ===\n");
    let reversed = html_diff(
        USENIX_1995_09_29,
        USENIX_1995_11_03,
        &Options {
            presentation: Presentation::Reversed,
            ..opts.clone()
        },
    );
    println!("{}", reversed.html.lines().next().unwrap_or(""));

    println!("=== side-by-side presentation (extension; §5.2 wished for it) ===\n");
    let sbs = html_diff(
        USENIX_1995_09_29,
        USENIX_1995_11_03,
        &Options {
            presentation: Presentation::SideBySide,
            banner: false,
            ..opts.clone()
        },
    );
    for line in sbs.html.lines().take(8) {
        println!("{line}");
    }
    println!("…\n");

    println!("\n=== baseline: UNIX line diff of the same pages ===\n");
    let line = aide_diffcore::lines::diff_lines(USENIX_1995_09_29, USENIX_1995_11_03);
    println!(
        "line diff reports {} deleted + {} inserted lines (no notion of\n\
         sentences, no markup awareness, not viewable in a browser):",
        line.deleted_lines(),
        line.inserted_lines()
    );
    println!(
        "{}",
        line.unified("usenix-0929.html", "usenix-1103.html", 1)
    );
}
