//! §7 storage experiment: archive 500 URLs for 180 days and measure disk
//! usage.
//!
//! Paper's numbers: "There are over 500 URLs archived... and the archive
//! uses under 8 Mbytes of disk storage (an average of 14.3 Kbytes/URL).
//! Three files account for 2.7 Mbytes of that total, and each file is a
//! URL that changes every 1–3 days and is being automatically archived
//! upon each change."
//!
//! The absolute bytes depend on 1995's pages; the reproduced *shape* is:
//! a modest per-URL average, the three churners holding an outsized
//! share, and reverse-delta storage far below full-copy storage.

use aide_rcs::repo::MemRepository;
use aide_simweb::http::Request;
use aide_simweb::net::Web;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};
use aide_workloads::evolve::tick_all;
use aide_workloads::sites::{population, PopulationConfig};

fn main() {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 6, 1, 0, 0, 0));
    let web = Web::new(clock.clone());
    // Sizes tuned to 1995 pages: typical pages of a few KB, and three
    // churners around 10 KB whose every-1–3-day full replacements accrue
    // roughly 0.9 MB of archive each over six months (2.7 MB total, as
    // §7 reports).
    let cfg = PopulationConfig {
        urls: 500,
        hosts: 50,
        typical_bytes: 6_000,
        churners: 3,
        churner_bytes: 10_000,
    };
    eprintln!("building 500-URL population…");
    let mut pages = population(&web, 1995, &cfg);
    let service = SnapshotService::new(MemRepository::new(), clock.clone(), 16, Duration::hours(1));
    let daemon = UserId::new("archive@daemon");

    // 180 days; ordinary pages are archived on a weekly sweep, the three
    // churners on a daily sweep (they are "automatically archived upon
    // each change", §7).
    let mut full_copy_bytes: usize = 0;
    eprintln!("replaying 180 days of archival…");
    for day in 0..180u64 {
        clock.advance(Duration::days(1));
        tick_all(&mut pages, &web);
        for (i, p) in pages.iter().enumerate() {
            let daily = i < cfg.churners;
            if !daily && day % 7 != 0 {
                continue;
            }
            let body = web.request(&Request::get(&p.url)).unwrap().body;
            let out = service.remember(&daemon, &p.url, &body).unwrap();
            if out.stored_new_revision {
                full_copy_bytes += body.len();
            }
        }
    }

    let stats = service.storage().unwrap();
    let sizes = service.storage_by_url().unwrap();
    let top3: usize = sizes.iter().take(3).map(|(_, b)| b).sum();

    println!("=== §7 storage experiment (180 simulated days) ===\n");
    println!("{:<38} {:>14} {:>14}", "metric", "paper (1996)", "measured");
    println!("{}", "-".repeat(70));
    println!(
        "{:<38} {:>14} {:>14}",
        "URLs archived", "500+", stats.archives
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "total archive size",
        "< 8 MB",
        format!("{:.1} MB", stats.bytes as f64 / 1e6)
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "average per URL",
        "14.3 KB",
        format!("{:.1} KB", stats.bytes_per_archive() / 1024.0)
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "top-3 (churner) share",
        "2.7/8 = 34%",
        format!("{:.0}%", 100.0 * top3 as f64 / stats.bytes as f64)
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "revisions stored", "(n/a)", stats.revisions
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "full-copy storage would be",
        "(n/a)",
        format!("{:.1} MB", full_copy_bytes as f64 / 1e6)
    );
    println!(
        "{:<38} {:>14} {:>14}",
        "delta-storage ratio",
        "\"minimal\"",
        format!(
            "{:.0}%",
            100.0 * stats.bytes as f64 / full_copy_bytes as f64
        )
    );
    println!("\ntop five archives by size:");
    for (url, bytes) in sizes.iter().take(5) {
        println!("  {:>9.1} KB  {url}", *bytes as f64 / 1024.0);
    }
}
