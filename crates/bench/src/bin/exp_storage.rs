//! §7 storage experiment: archive 500 URLs for 180 days and measure disk
//! usage — on **both** repository backends.
//!
//! Paper's numbers: "There are over 500 URLs archived... and the archive
//! uses under 8 Mbytes of disk storage (an average of 14.3 Kbytes/URL).
//! Three files account for 2.7 Mbytes of that total, and each file is a
//! URL that changes every 1–3 days and is being automatically archived
//! upon each change."
//!
//! The absolute bytes depend on 1995's pages; the reproduced *shape* is:
//! a modest per-URL average, the three churners holding an outsized
//! share, and reverse-delta storage far below full-copy storage.
//!
//! The workload runs once against the in-memory reference repository and
//! once against the persistent `aide-store` engine (over an in-memory
//! VFS, with thresholds tuned so checkpoints and compactions fire
//! mid-run). `StorageStats` accounts the same `,v` serialization either
//! way, so the two columns must — and do — agree to the byte; the
//! binary asserts it.

use aide_rcs::repo::{MemRepository, Repository, StorageStats};
use aide_simweb::http::Request;
use aide_simweb::net::Web;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_store::{DiskRepository, StoreOptions};
use aide_util::time::{Clock, Duration, Timestamp};
use aide_util::vfs::{MemVfs, Vfs};
use aide_workloads::evolve::tick_all;
use aide_workloads::sites::{population, PopulationConfig};
use std::sync::Arc;

struct Outcome {
    stats: StorageStats,
    sizes: Vec<(String, usize)>,
    full_copy_bytes: usize,
}

/// Replays the §7 archival workload against `repo`: 500 URLs, 180 days,
/// ordinary pages on a weekly sweep, the three churners on a daily
/// sweep (they are "automatically archived upon each change", §7).
fn run_section7<R: Repository>(repo: R) -> Outcome {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 6, 1, 0, 0, 0));
    let web = Web::new(clock.clone());
    // Sizes tuned to 1995 pages: typical pages of a few KB, and three
    // churners around 10 KB whose every-1–3-day full replacements accrue
    // roughly 0.9 MB of archive each over six months (2.7 MB total, as
    // §7 reports).
    let cfg = PopulationConfig {
        urls: 500,
        hosts: 50,
        typical_bytes: 6_000,
        churners: 3,
        churner_bytes: 10_000,
    };
    let mut pages = population(&web, 1995, &cfg);
    let service = SnapshotService::new(repo, clock.clone(), 16, Duration::hours(1));
    let daemon = UserId::new("archive@daemon");

    let mut full_copy_bytes: usize = 0;
    for day in 0..180u64 {
        clock.advance(Duration::days(1));
        tick_all(&mut pages, &web);
        for (i, p) in pages.iter().enumerate() {
            let daily = i < cfg.churners;
            if !daily && day % 7 != 0 {
                continue;
            }
            let body = web.request(&Request::get(&p.url)).unwrap().body;
            let out = service.remember(&daemon, &p.url, &body).unwrap();
            if out.stored_new_revision {
                full_copy_bytes += body.len();
            }
        }
    }

    Outcome {
        stats: service.storage().unwrap(),
        sizes: service.storage_by_url().unwrap(),
        full_copy_bytes,
    }
}

fn main() {
    eprintln!("replaying 180 days of archival (in-memory backend)…");
    let mem = run_section7(MemRepository::new());

    eprintln!("replaying 180 days of archival (aide-store backend)…");
    // Thresholds low enough that the workload crosses every code path:
    // WAL group commit, checkpoint into segments, and compaction.
    let opts = StoreOptions {
        checkpoint_wal_bytes: 512 << 10,
        compact_min_dead_bytes: 256 << 10,
        max_segments: 4,
        ..StoreOptions::default()
    };
    let disk_repo =
        Arc::new(DiskRepository::open(MemVfs::shared() as Arc<dyn Vfs>, "aide", opts).unwrap());
    let disk = run_section7(disk_repo.clone());

    let top3 = |o: &Outcome| o.sizes.iter().take(3).map(|(_, b)| b).sum::<usize>();

    println!("=== §7 storage experiment (180 simulated days) ===\n");
    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "metric", "paper (1996)", "mem backend", "aide-store"
    );
    println!("{}", "-".repeat(74));
    let row = |metric: &str, paper: &str, m: String, d: String| {
        println!("{metric:<34} {paper:>12} {m:>12} {d:>12}");
    };
    row(
        "URLs archived",
        "500+",
        mem.stats.archives.to_string(),
        disk.stats.archives.to_string(),
    );
    row(
        "total archive size",
        "< 8 MB",
        format!("{:.1} MB", mem.stats.bytes as f64 / 1e6),
        format!("{:.1} MB", disk.stats.bytes as f64 / 1e6),
    );
    row(
        "average per URL",
        "14.3 KB",
        format!("{:.1} KB", mem.stats.bytes_per_archive() / 1024.0),
        format!("{:.1} KB", disk.stats.bytes_per_archive() / 1024.0),
    );
    row(
        "top-3 (churner) share",
        "2.7/8 = 34%",
        format!("{:.0}%", 100.0 * top3(&mem) as f64 / mem.stats.bytes as f64),
        format!(
            "{:.0}%",
            100.0 * top3(&disk) as f64 / disk.stats.bytes as f64
        ),
    );
    row(
        "revisions stored",
        "(n/a)",
        mem.stats.revisions.to_string(),
        disk.stats.revisions.to_string(),
    );
    row(
        "full-copy storage would be",
        "(n/a)",
        format!("{:.1} MB", mem.full_copy_bytes as f64 / 1e6),
        format!("{:.1} MB", disk.full_copy_bytes as f64 / 1e6),
    );
    row(
        "delta-storage ratio",
        "\"minimal\"",
        format!(
            "{:.0}%",
            100.0 * mem.stats.bytes as f64 / mem.full_copy_bytes as f64
        ),
        format!(
            "{:.0}%",
            100.0 * disk.stats.bytes as f64 / disk.full_copy_bytes as f64
        ),
    );

    println!("\ntop five archives by size:");
    for (url, bytes) in mem.sizes.iter().take(5) {
        println!("  {:>9.1} KB  {url}", *bytes as f64 / 1024.0);
    }

    println!("\naide-store engine after the run:");
    println!("  segments on disk: {}", disk_repo.segment_count());
    println!(
        "  write-ahead log:  {:.1} KB pending checkpoint",
        disk_repo.wal_len() as f64 / 1024.0
    );

    // The backends must agree to the byte: same workload, same `,v`
    // serialization, same accounting rules.
    assert_eq!(mem.stats, disk.stats, "backends disagree on §7 accounting");
    assert_eq!(mem.sizes, disk.sizes, "backends disagree on per-URL sizes");
    println!("\nbackends agree byte-for-byte ✔");
}
