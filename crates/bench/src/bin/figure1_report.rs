//! Figure 1 reproduction: the w3newer HTML status report.
//!
//! Builds a hotlist whose entries land in every state visible in the
//! paper's Figure 1 — changed (with modification dates), seen, not
//! checked, and erroring — runs w3newer once, and prints the report HTML
//! with its Remember/Diff/History links.

use aide::engine::AideEngine;
use aide_simweb::net::Web;
use aide_simweb::resource::Resource;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::config::ThresholdConfig;

fn main() {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 11, 15, 8, 0, 0));
    let web = Web::new(clock.clone());
    let now = clock.now();

    // Changed pages with a spread of modification dates.
    web.set_page(
        "http://www.usenix.org/",
        "<HTML>USENIX home</HTML>",
        now - Duration::days(2),
    )
    .unwrap();
    web.set_page(
        "http://www.ncsa.uiuc.edu/whats-new.html",
        "<HTML>What's new in Mosaic</HTML>",
        now - Duration::hours(6),
    )
    .unwrap();
    web.set_page(
        "http://www.yahoo.com/",
        "<HTML>Yahoo directory</HTML>",
        now - Duration::days(12),
    )
    .unwrap();
    // A page the user has already seen since its modification.
    web.set_page(
        "http://www.research.att.com/orgs/ssr/",
        "<HTML>SSR</HTML>",
        now - Duration::days(30),
    )
    .unwrap();
    // Error conditions.
    web.set_resource(
        "http://old.host.com/page.html",
        Resource::Moved {
            location: "http://new.host.com/page.html".into(),
        },
    )
    .unwrap();
    web.add_server("flaky.org");
    // Robot-excluded.
    web.set_robots_txt("private.org", "User-agent: *\nDisallow: /\n");
    web.set_page("http://private.org/internal.html", "<HTML>x</HTML>", now)
        .unwrap();

    let engine = AideEngine::new(web.clone());
    let user = "douglis@research.att.com";
    let browser = engine.register_user(user, ThresholdConfig::table1());
    browser.add_bookmark("USENIX Association", "http://www.usenix.org/");
    browser.add_bookmark(
        "What's New in Mosaic",
        "http://www.ncsa.uiuc.edu/whats-new.html",
    );
    browser.add_bookmark("Yahoo", "http://www.yahoo.com/");
    browser.add_bookmark(
        "Software Systems Research",
        "http://www.research.att.com/orgs/ssr/",
    );
    browser.add_bookmark("Moved page", "http://old.host.com/page.html");
    browser.add_bookmark("Missing page", "http://flaky.org/gone.html");
    browser.add_bookmark("Internal page", "http://private.org/internal.html");
    browser.add_bookmark("Dilbert", "http://www.unitedmedia.com/comics/dilbert/");

    // The user saw the SSR page yesterday (after its modification) and
    // Yahoo three weeks ago (before its modification).
    browser.mark_visited(
        "http://www.research.att.com/orgs/ssr/",
        now - Duration::days(1),
    );
    browser.mark_visited("http://www.yahoo.com/", now - Duration::days(21));

    let html = engine.tracker_report_html(user).unwrap();
    println!("=== Figure 1: w3newer status report ===\n");
    println!("{html}");

    // Summary for eyeballing against the figure's description.
    let report = engine.run_tracker(user).unwrap();
    println!("=== summary ===");
    for e in &report.entries {
        println!("{:<55} {:?}", e.url, e.status);
    }
}
