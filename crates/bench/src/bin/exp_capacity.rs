//! Open-loop capacity experiment: latency percentiles and saturation
//! curves for the snapshot service under a fixed arrival schedule.
//!
//! §4.2 worries that "the need to execute HtmlDiff on the server can
//! result in high processor loads" and floats admission control as the
//! remedy; SiteStory's evaluation (Brunelle & Nelson, PAPERS.md) answers
//! the same question with ApacheBench-style open-loop load. This
//! experiment reproduces that methodology deterministically:
//!
//! - the arrival schedule is Poisson with a fixed seed
//!   ([`aide_workloads::openloop::schedule`]);
//! - every request *really executes* against a [`SnapshotService`] —
//!   archives are stored, HtmlDiff runs, the diff cache fills — on a
//!   virtual clock;
//! - each request's service time is charged from a deterministic
//!   work-unit model (below), and a FIFO queue simulation turns offered
//!   rate + service times into per-request latencies;
//! - latencies are observed into `aide-obs` histograms
//!   (`capacity.latency_us.*`) and the reported percentiles are read
//!   back off those histograms.
//!
//! No wall clock is read anywhere, so two runs emit byte-identical
//! `BENCH_capacity.json` files — ci.sh runs the experiment twice and
//! `cmp`s the outputs.
//!
//! # Service-time model
//!
//! Virtual microseconds, calibrated against the measured BENCH_htmldiff
//! numbers (sub-millisecond small-edit diffs at 8KB, ~2.5ms worst case):
//!
//! - poll (head + view):        `150 + body/64`
//! - check-in (remember):       `250 + body/32 + store`
//! - diff (diff_since_last):    cache hit `200 + html/64`, miss
//!   `600 + html/16 + store`
//! - `store` (per request, from obs counter deltas — inline
//!   maintenance, single driver thread, so the deltas are exact):
//!   `fsyncs·400 + wal_bytes/64 + seg_bytes/128`. The mem backend
//!   performs no store I/O, so its `store` term is always zero; the
//!   difference between the two curves is exactly the storage engine.

use aide::engine::AideEngine;
use aide_htmldiff::Options as DiffOptions;
use aide_obs::MetricsRegistry;
use aide_rcs::repo::{MemRepository, Repository};
use aide_serve::{AideServer, ScriptedConn};
use aide_simweb::net::Web;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_store::repo::{DiskRepository, StoreOptions};
use aide_util::time::{Clock, Duration, Timestamp};
use aide_util::vfs::{MemVfs, Vfs};
use aide_w3newer::config::ThresholdConfig;
use aide_workloads::edits::EditModel;
use aide_workloads::openloop::{
    schedule, serve_schedule, simulate_queue, OpenLoopConfig, RequestKind, RequestMix, ServeKind,
    ServeMix,
};
use aide_workloads::page::Page;
use aide_workloads::rng::Rng;
use std::fmt::Write as _;
use std::sync::Arc;

const SEED: u64 = 1021;
const REQUESTS: usize = 2_000;
const URLS: usize = 24;
const USERS: usize = 8;
const RATES: &[u64] = &[250, 500, 1_000, 2_000, 4_000, 8_000];
const BASE_TIME: Timestamp = Timestamp(1_000_000);

/// Latency histogram bounds in µs: log-spaced from 100µs to 60s.
const LATENCY_BOUNDS: &[u64] = &[
    100, 150, 200, 300, 500, 750, 1_000, 1_500, 2_000, 3_000, 5_000, 7_500, 10_000, 15_000, 20_000,
    30_000, 50_000, 75_000, 100_000, 150_000, 200_000, 300_000, 500_000, 750_000, 1_000_000,
    2_000_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// One point on a backend's capacity curve.
struct CurvePoint {
    rate_per_sec: u64,
    throughput_per_sec: u64,
    utilization_permille: u64,
    mean_service_us: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
    diff_cache_hit_permille: u64,
}

/// Store-I/O counter readings used to delta per-request store cost.
#[derive(Default, Clone, Copy)]
struct StoreCounters {
    fsyncs: u64,
    wal_bytes: u64,
    seg_bytes: u64,
}

fn store_counters(reg: &MetricsRegistry) -> StoreCounters {
    let snap = reg.snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    StoreCounters {
        fsyncs: get("store.wal.fsync"),
        wal_bytes: get("store.wal.append.bytes"),
        seg_bytes: get("store.append.bytes"),
    }
}

fn store_cost_us(before: StoreCounters, after: StoreCounters) -> u64 {
    (after.fsyncs - before.fsyncs) * 400
        + (after.wal_bytes - before.wal_bytes) / 64
        + (after.seg_bytes - before.seg_bytes) / 128
}

fn url_name(u: usize) -> String {
    format!("http://cap/doc{u:02}.html")
}

/// Runs the full request schedule at one offered rate against a fresh
/// service over `repo`, returning the curve point.
fn run_rate<R: Repository>(repo: R, rate: u64, reg: &Arc<MetricsRegistry>) -> CurvePoint {
    let clock = Clock::starting_at(BASE_TIME);
    let service = SnapshotService::new(repo, clock.clone(), 256, Duration::hours(8));
    let users: Vec<UserId> = (0..USERS)
        .map(|u| UserId::new(&format!("u{u}@cap")))
        .collect();
    let diff_opts = DiffOptions::default();

    // Page population: ~4KB structured pages, each with its own edit
    // stream so check-ins change real content.
    let mut rng = Rng::new(SEED ^ 0x9e37_79b9);
    let mut pages: Vec<Page> = (0..URLS)
        .map(|_| Page::generate(&mut rng, 4 * 1024))
        .collect();
    let mut steps = [0u64; URLS];

    // Prepopulate: every user has seen revision 1 of every page, so
    // diff_since_last always has a baseline.
    for (u, page) in pages.iter().enumerate() {
        let body = page.render();
        for user in &users {
            service.remember(user, &url_name(u), &body).unwrap();
        }
    }

    let arrivals = schedule(&OpenLoopConfig {
        seed: SEED,
        requests: REQUESTS,
        rate_per_sec: rate,
        urls: URLS,
        users: USERS,
        mix: RequestMix::default(),
    });

    let mut service_us = Vec::with_capacity(arrivals.len());
    let mut arrival_us = Vec::with_capacity(arrivals.len());
    let mut diff_requests = 0u64;
    let mut diff_cache_hits = 0u64;
    for a in &arrivals {
        clock.set(Timestamp(BASE_TIME.0 + a.at_us / 1_000_000));
        let url = url_name(a.url);
        let user = &users[a.user];
        let before = store_counters(reg);
        let cost = match a.kind {
            RequestKind::Poll => {
                let (rev, _) = service.head(&url).unwrap().unwrap();
                let body = service.view(&url, rev).unwrap();
                150 + body.len() as u64 / 64
            }
            RequestKind::CheckIn => {
                let edit = EditModel::InPlaceEdit { sentences: 1 };
                steps[a.url] += 1;
                edit.apply(&mut pages[a.url], &mut rng, steps[a.url]);
                let body = pages[a.url].render();
                service.remember(user, &url, &body).unwrap();
                let after = store_counters(reg);
                250 + body.len() as u64 / 32 + store_cost_us(before, after)
            }
            RequestKind::Diff => {
                diff_requests += 1;
                let body = pages[a.url].render();
                let out = service
                    .diff_since_last(user, &url, &body, &diff_opts)
                    .unwrap();
                let after = store_counters(reg);
                if out.from_cache {
                    diff_cache_hits += 1;
                    200 + out.html.len() as u64 / 64
                } else {
                    600 + out.html.len() as u64 / 16 + store_cost_us(before, after)
                }
            }
        };
        arrival_us.push(a.at_us);
        service_us.push(cost);
    }

    let latencies = simulate_queue(&arrival_us, &service_us, 1);
    for (a, &lat) in arrivals.iter().zip(&latencies) {
        let kind = match a.kind {
            RequestKind::Poll => "poll",
            RequestKind::CheckIn => "checkin",
            RequestKind::Diff => "diff",
        };
        reg.observe_with(&format!("capacity.latency_us.{kind}"), lat, LATENCY_BOUNDS);
        reg.observe_with("capacity.latency_us.all", lat, LATENCY_BOUNDS);
    }

    let snap = reg.snapshot();
    let hist = &snap.histograms["capacity.latency_us.all"];
    let total_service: u64 = service_us.iter().sum();
    let makespan = arrival_us
        .iter()
        .zip(&latencies)
        .map(|(a, l)| a + l)
        .max()
        .unwrap_or(1)
        .max(1);
    CurvePoint {
        rate_per_sec: rate,
        throughput_per_sec: REQUESTS as u64 * 1_000_000 / makespan,
        utilization_permille: total_service * 1_000 / makespan,
        mean_service_us: total_service / REQUESTS as u64,
        p50_us: hist.quantile(0.50),
        p90_us: hist.quantile(0.90),
        p99_us: hist.quantile(0.99),
        max_us: latencies.iter().copied().max().unwrap_or(0),
        diff_cache_hit_permille: (diff_cache_hits * 1_000)
            .checked_div(diff_requests)
            .unwrap_or(0),
    }
}

fn run_backend(backend: &str) -> (Vec<CurvePoint>, Option<u64>) {
    let mut curve = Vec::new();
    for &rate in RATES {
        // Fresh registry + fresh service per point: histogram and
        // store-counter state never leaks between rates.
        let reg = Arc::new(MetricsRegistry::new());
        let prev = aide_obs::install(reg.clone());
        let point = match backend {
            "mem" => run_rate(MemRepository::new(), rate, &reg),
            "disk" => {
                let vfs: Arc<dyn Vfs> = MemVfs::shared();
                let repo = DiskRepository::open(vfs, "capacity", StoreOptions::default()).unwrap();
                run_rate(repo, rate, &reg)
            }
            _ => unreachable!("unknown backend"),
        };
        aide_obs::uninstall();
        if let Some(prev) = prev {
            aide_obs::install(prev);
        }
        curve.push(point);
    }
    let saturation = curve
        .iter()
        .find(|p| p.utilization_permille >= 950)
        .map(|p| p.rate_per_sec);
    (curve, saturation)
}

// ---------------------------------------------------------------------------
// Serving-layer capacity (`--serve` → BENCH_serve.json)
// ---------------------------------------------------------------------------
//
// The same open-loop methodology pointed at `aide-serve`: a browsing
// mix (report / history / diff page / TimeGate) over Zipf-distributed
// URLs, every request really executed through the HTTP layer via a
// scripted connection. The simulated client remembers ETags per target,
// so the hot head of the Zipf distribution quickly turns into
// conditional GETs — the experiment records how much cheaper that 304
// path is than a cold diff render (the paper's §4.2 processor-load
// worry, answered by validators instead of admission control).
//
// Serve service-time model (virtual µs, from per-request meter deltas):
//
// - every HTTP exchange:       `40 + response_bytes/64`
// - each HtmlDiff invocation:  `+600` (the §4.2 expensive path)
// - each render-cache miss:    `+150` (checkout + page assembly)
// - each render-cache hit:     `+25`  (clone out of the cache)
//
// A 304 touches none of the render machinery, so its cost is the bare
// exchange term — the ratio to a cold diff render is the headline.

const SERVE_RATES: &[u64] = &[500, 1_000, 2_000, 4_000, 8_000, 16_000];

/// One point on a backend's serving-capacity curve.
struct ServePoint {
    rate_per_sec: u64,
    throughput_per_sec: u64,
    utilization_permille: u64,
    mean_service_us: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
    not_modified_permille: u64,
    render_hit_permille: u64,
}

/// Cost comparison between the conditional and cold paths, aggregated
/// over a whole sweep.
#[derive(Default)]
struct ServeSummary {
    cold_diff_renders: u64,
    cold_diff_total_us: u64,
    not_modified: u64,
    not_modified_total_us: u64,
}

impl ServeSummary {
    fn cold_mean_us(&self) -> u64 {
        self.cold_diff_total_us
            .checked_div(self.cold_diff_renders)
            .unwrap_or(0)
    }

    fn nm_mean_us(&self) -> u64 {
        self.not_modified_total_us
            .checked_div(self.not_modified)
            .unwrap_or(0)
    }
}

/// Meter readings deltaed around each HTTP exchange to derive its cost.
#[derive(Clone, Copy)]
struct ServeMeters {
    htmldiff: u64,
    hits: u64,
    misses: u64,
    bytes_out: u64,
}

fn serve_meters<R: Repository>(server: &AideServer<R>) -> ServeMeters {
    ServeMeters {
        htmldiff: server
            .engine()
            .snapshot()
            .snapshot_stats()
            .htmldiff_invocations,
        hits: server.cache_stats().hits(),
        misses: server.cache_stats().misses(),
        bytes_out: server.stats().bytes_out(),
    }
}

fn exchange_cost_us(before: ServeMeters, after: ServeMeters) -> u64 {
    40 + (after.bytes_out - before.bytes_out) / 64
        + (after.htmldiff - before.htmldiff) * 600
        + (after.misses - before.misses) * 150
        + (after.hits - before.hits) * 25
}

fn user_name(u: usize) -> String {
    format!("u{u}@cap")
}

/// The serving fixture: `URLS` structured pages, three revisions each,
/// every user subscribed to every page (so histories and reports have
/// content and TimeGates have a range to negotiate over).
fn serve_engine<R: Repository>(repo: R) -> Arc<AideEngine<R>> {
    let clock = Clock::starting_at(BASE_TIME);
    let web = Web::new(clock);
    let mut rng = Rng::new(SEED ^ 0x5bd1_e995);
    let mut pages: Vec<Page> = (0..URLS)
        .map(|_| Page::generate(&mut rng, 4 * 1024))
        .collect();
    for (u, page) in pages.iter().enumerate() {
        web.set_page(&url_name(u), &page.render(), BASE_TIME - Duration::days(1))
            .unwrap();
    }
    let engine = Arc::new(AideEngine::with_repository(web, repo));
    for u in 0..USERS {
        engine.register_user(&user_name(u), ThresholdConfig::default());
    }
    for url in 0..URLS {
        for u in 0..USERS {
            engine.remember(&user_name(u), &url_name(url)).unwrap();
        }
    }
    for step in 1..=2u64 {
        engine.clock().advance(Duration::days(7));
        for (idx, page) in pages.iter_mut().enumerate() {
            EditModel::InPlaceEdit { sentences: 2 }.apply(page, &mut rng, step);
            engine
                .web()
                .touch_page(&url_name(idx), &page.render(), engine.clock().now())
                .unwrap();
        }
        for url in 0..URLS {
            for u in 0..USERS {
                engine.remember(&user_name(u), &url_name(url)).unwrap();
            }
        }
    }
    engine
}

/// One HTTP exchange over a scripted connection. Returns the status
/// code plus any `ETag` / `Location` the client should remember.
fn serve_exchange<R: Repository>(
    server: &AideServer<R>,
    target: &str,
    extra: &[(String, String)],
) -> (u16, Option<String>, Option<String>) {
    let mut req = format!("GET {target} HTTP/1.1\r\nHost: cap\r\n");
    for (name, value) in extra {
        let _ = write!(req, "{name}: {value}\r\n");
    }
    req.push_str("Connection: close\r\n\r\n");
    let mut conn = ScriptedConn::new(req.into_bytes());
    server.handle_connection(&mut conn);
    let resp = conn.output_text();
    let status: u16 = resp
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let find = |name: &str| {
        let prefix = format!("{name}:");
        resp.split("\r\n\r\n")
            .next()
            .unwrap_or("")
            .split("\r\n")
            .find_map(|line| {
                line.to_ascii_lowercase()
                    .starts_with(&prefix)
                    .then(|| line[prefix.len()..].trim().to_string())
            })
    };
    (status, find("etag"), find("location"))
}

/// The conditional client: remembers the last ETag per target and
/// replays it as `If-None-Match`.
#[derive(Default)]
struct EtagMemory {
    seen: Vec<(String, String)>,
}

impl EtagMemory {
    fn get(&self, target: &str) -> Option<&str> {
        self.seen
            .iter()
            .find(|(t, _)| t == target)
            .map(|(_, e)| e.as_str())
    }

    fn put(&mut self, target: &str, etag: String) {
        if let Some(slot) = self.seen.iter_mut().find(|(t, _)| t == target) {
            slot.1 = etag;
        } else {
            self.seen.push((target.to_string(), etag));
        }
    }
}

/// Runs the serving schedule at one offered rate against a fresh server
/// over `repo`, returning the curve point and folding cost comparisons
/// into `summary`.
fn run_serve_rate<R: Repository>(repo: R, rate: u64, summary: &mut ServeSummary) -> ServePoint {
    let engine = serve_engine(repo);
    let rev_dates: [Timestamp; 3] = [
        BASE_TIME,
        BASE_TIME + Duration::days(7),
        BASE_TIME + Duration::days(14),
    ];
    let run_start = engine.clock().now();
    let server = AideServer::new(engine);
    let mut etags = EtagMemory::default();

    let arrivals = serve_schedule(
        &OpenLoopConfig {
            seed: SEED,
            requests: REQUESTS,
            rate_per_sec: rate,
            urls: URLS,
            users: USERS,
            mix: RequestMix::default(), // unused by serve_schedule
        },
        ServeMix::default(),
    );

    let mut arrival_us = Vec::with_capacity(arrivals.len());
    let mut service_us = Vec::with_capacity(arrivals.len());
    for (i, a) in arrivals.iter().enumerate() {
        // Every fifth arrival models a first-time visitor with an empty
        // browser cache: no validator, so a repeat target is answered
        // from the render cache (a hit) instead of with a 304.
        let fresh_visitor = i % 5 == 0;
        server
            .engine()
            .clock()
            .set(Timestamp(run_start.0 + a.at_us / 1_000_000));
        let url = url_name(a.url);
        let user = user_name(a.user);
        let mut cost = 0u64;

        // A conditional GET against one cacheable target, with meter
        // deltas classified into the summary buckets.
        let mut conditional = |target: &str, is_diff: bool| {
            let mut headers = Vec::new();
            if !fresh_visitor {
                if let Some(etag) = etags.get(target) {
                    headers.push(("If-None-Match".to_string(), etag.to_string()));
                }
            }
            let before = serve_meters(&server);
            let (status, etag, _) = serve_exchange(&server, target, &headers);
            let after = serve_meters(&server);
            let c = exchange_cost_us(before, after);
            if status == 304 {
                summary.not_modified += 1;
                summary.not_modified_total_us += c;
            } else if is_diff && after.htmldiff > before.htmldiff {
                summary.cold_diff_renders += 1;
                summary.cold_diff_total_us += c;
            }
            if let Some(etag) = etag {
                etags.put(target, etag);
            }
            c
        };

        match a.kind {
            ServeKind::Report => {
                let before = serve_meters(&server);
                serve_exchange(&server, &format!("/report?user={user}"), &[]);
                cost += exchange_cost_us(before, serve_meters(&server));
            }
            ServeKind::History => {
                cost += conditional(&format!("/history?url={url}&user={user}"), false);
            }
            ServeKind::DiffPage => {
                let (from, to) = match (a.url + a.user) % 3 {
                    0 => ("1.1", "1.2"),
                    1 => ("1.2", "1.3"),
                    _ => ("1.1", "1.3"),
                };
                cost += conditional(&format!("/diff?url={url}&from={from}&to={to}"), true);
            }
            ServeKind::TimeGate => {
                // Negotiate near one of the revision instants, then
                // follow the redirect chain to the memento itself.
                let near = rev_dates[(a.url + a.user) % 3] + Duration::hours(2);
                let before = serve_meters(&server);
                let (_, _, location) = serve_exchange(
                    &server,
                    &format!("/timegate/{url}"),
                    &[("Accept-Datetime".to_string(), near.to_http_date())],
                );
                cost += exchange_cost_us(before, serve_meters(&server));
                let mut next = location;
                let mut hops = 0;
                while let Some(target) = next.take() {
                    hops += 1;
                    if hops > 3 {
                        break;
                    }
                    let etag_known = etags.get(&target).is_some();
                    let before = serve_meters(&server);
                    let mut headers = Vec::new();
                    if etag_known {
                        headers.push((
                            "If-None-Match".to_string(),
                            etags.get(&target).unwrap_or_default().to_string(),
                        ));
                    }
                    let (status, etag, location) = serve_exchange(&server, &target, &headers);
                    let after = serve_meters(&server);
                    let c = exchange_cost_us(before, after);
                    if status == 304 {
                        summary.not_modified += 1;
                        summary.not_modified_total_us += c;
                    }
                    if let Some(etag) = etag {
                        etags.put(&target, etag);
                    }
                    cost += c;
                    next = location;
                }
            }
        }

        arrival_us.push(a.at_us);
        service_us.push(cost);
    }

    let latencies = simulate_queue(&arrival_us, &service_us, 1);
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f).round() as usize];
    let total_service: u64 = service_us.iter().sum();
    let makespan = arrival_us
        .iter()
        .zip(&latencies)
        .map(|(a, l)| a + l)
        .max()
        .unwrap_or(1)
        .max(1);
    let stats = server.stats();
    let cache = server.cache_stats();
    let probes = cache.hits() + cache.misses();
    ServePoint {
        rate_per_sec: rate,
        throughput_per_sec: REQUESTS as u64 * 1_000_000 / makespan,
        utilization_permille: total_service * 1_000 / makespan,
        mean_service_us: total_service / REQUESTS as u64,
        p50_us: q(0.50),
        p90_us: q(0.90),
        p99_us: q(0.99),
        max_us: *sorted.last().unwrap_or(&0),
        not_modified_permille: stats.not_modified() * 1_000 / stats.requests().max(1),
        render_hit_permille: (cache.hits() * 1_000).checked_div(probes).unwrap_or(0),
    }
}

fn run_serve_backend(backend: &str, summary: &mut ServeSummary) -> (Vec<ServePoint>, Option<u64>) {
    let mut curve = Vec::new();
    for &rate in SERVE_RATES {
        let point = match backend {
            "mem" => run_serve_rate(MemRepository::new(), rate, summary),
            "disk" => {
                let vfs: Arc<dyn Vfs> = MemVfs::shared();
                let repo = DiskRepository::open(vfs, "capacity", StoreOptions::default()).unwrap();
                run_serve_rate(repo, rate, summary)
            }
            _ => unreachable!("unknown backend"),
        };
        curve.push(point);
    }
    let saturation = curve
        .iter()
        .find(|p| p.utilization_permille >= 950)
        .map(|p| p.rate_per_sec);
    (curve, saturation)
}

fn serve_main(out_path: &str) {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seed\": {SEED}, \"requests\": {REQUESTS}, \"urls\": {URLS}, \
         \"users\": {USERS}, \"mix\": \"report:2 history:4 diff_page:3 timegate:1\", \
         \"servers\": 1}},"
    );
    json.push_str("  \"backends\": [\n");

    let mut summary = ServeSummary::default();
    for (bi, backend) in ["mem", "disk"].iter().enumerate() {
        println!("=== serve backend: {backend} ===");
        println!(
            "{:>10} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>7} {:>7}",
            "rate/s", "thruput/s", "util%", "p50 µs", "p90 µs", "p99 µs", "max µs", "304%", "hit%"
        );
        let (curve, saturation) = run_serve_backend(backend, &mut summary);
        let _ = writeln!(json, "    {{\"backend\": \"{backend}\", \"curve\": [");
        for (i, p) in curve.iter().enumerate() {
            println!(
                "{:>10} {:>12} {:>8.1} {:>10} {:>10} {:>10} {:>10} {:>7.1} {:>7.1}",
                p.rate_per_sec,
                p.throughput_per_sec,
                p.utilization_permille as f64 / 10.0,
                p.p50_us,
                p.p90_us,
                p.p99_us,
                p.max_us,
                p.not_modified_permille as f64 / 10.0,
                p.render_hit_permille as f64 / 10.0,
            );
            let _ = write!(
                json,
                "      {{\"rate_per_sec\": {}, \"throughput_per_sec\": {}, \
                 \"utilization_permille\": {}, \"mean_service_us\": {}, \"p50_us\": {}, \
                 \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
                 \"not_modified_permille\": {}, \"render_hit_permille\": {}}}",
                p.rate_per_sec,
                p.throughput_per_sec,
                p.utilization_permille,
                p.mean_service_us,
                p.p50_us,
                p.p90_us,
                p.p99_us,
                p.max_us,
                p.not_modified_permille,
                p.render_hit_permille,
            );
            json.push_str(if i + 1 < curve.len() { ",\n" } else { "\n" });
        }
        json.push_str("    ],\n");
        match saturation {
            Some(rate) => {
                println!("saturation: {rate} req/s\n");
                let _ = writeln!(json, "    \"saturation_rate_per_sec\": {rate}}}");
            }
            None => {
                println!("saturation: not reached in sweep\n");
                let _ = writeln!(json, "    \"saturation_rate_per_sec\": null}}");
            }
        }
        if bi == 0 {
            json.truncate(json.len() - 1);
            json.push_str(",\n");
        }
    }
    json.push_str("  ],\n");

    let cold = summary.cold_mean_us();
    let nm = summary.nm_mean_us();
    let ratio_x10 = (cold * 10).checked_div(nm.max(1)).unwrap_or(0);
    println!(
        "cold diff render mean: {cold} µs over {} renders",
        summary.cold_diff_renders
    );
    println!(
        "304 mean:              {nm} µs over {} responses",
        summary.not_modified
    );
    println!("cold/304 ratio:        {:.1}x", ratio_x10 as f64 / 10.0);
    assert!(
        ratio_x10 >= 100,
        "the 304 path must be >=10x cheaper than a cold diff render \
         (cold {cold} µs vs 304 {nm} µs)"
    );
    let _ = writeln!(
        json,
        "  \"conditional_path\": {{\"cold_diff_render_mean_us\": {cold}, \
         \"cold_diff_renders\": {}, \"not_modified_mean_us\": {nm}, \
         \"not_modified_responses\": {}, \"cold_to_304_ratio_x10\": {ratio_x10}}}",
        summary.cold_diff_renders, summary.not_modified
    );
    json.push_str("}\n");

    std::fs::write(out_path, &json).unwrap();
    println!("wrote {out_path}");
}

fn main() {
    let serve_mode = std::env::args().any(|a| a == "--serve");
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| {
            if serve_mode {
                "BENCH_serve.json".to_string()
            } else {
                "BENCH_capacity.json".to_string()
            }
        });
    if serve_mode {
        serve_main(&out_path);
        return;
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seed\": {SEED}, \"requests\": {REQUESTS}, \"urls\": {URLS}, \
         \"users\": {USERS}, \"mix\": \"poll:6 checkin:3 diff:1\", \"servers\": 1}},"
    );
    json.push_str("  \"backends\": [\n");

    for (bi, backend) in ["mem", "disk"].iter().enumerate() {
        println!("=== backend: {backend} ===");
        println!(
            "{:>10} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "rate/s", "thruput/s", "util%", "p50 µs", "p90 µs", "p99 µs", "max µs", "hit%"
        );
        let (curve, saturation) = run_backend(backend);
        let _ = writeln!(json, "    {{\"backend\": \"{backend}\", \"curve\": [");
        for (i, p) in curve.iter().enumerate() {
            println!(
                "{:>10} {:>12} {:>8.1} {:>10} {:>10} {:>10} {:>10} {:>10.1}",
                p.rate_per_sec,
                p.throughput_per_sec,
                p.utilization_permille as f64 / 10.0,
                p.p50_us,
                p.p90_us,
                p.p99_us,
                p.max_us,
                p.diff_cache_hit_permille as f64 / 10.0,
            );
            let _ = write!(
                json,
                "      {{\"rate_per_sec\": {}, \"throughput_per_sec\": {}, \
                 \"utilization_permille\": {}, \"mean_service_us\": {}, \"p50_us\": {}, \
                 \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
                 \"diff_cache_hit_permille\": {}}}",
                p.rate_per_sec,
                p.throughput_per_sec,
                p.utilization_permille,
                p.mean_service_us,
                p.p50_us,
                p.p90_us,
                p.p99_us,
                p.max_us,
                p.diff_cache_hit_permille,
            );
            json.push_str(if i + 1 < curve.len() { ",\n" } else { "\n" });
        }
        json.push_str("    ],\n");
        match saturation {
            Some(rate) => {
                println!("saturation: {rate} req/s\n");
                let _ = writeln!(json, "    \"saturation_rate_per_sec\": {rate}}}");
            }
            None => {
                println!("saturation: not reached in sweep\n");
                let _ = writeln!(json, "    \"saturation_rate_per_sec\": null}}");
            }
        }
        if bi == 0 {
            // Rewrite the closing brace line to carry the separator.
            json.truncate(json.len() - 1);
            json.push_str(",\n");
        }
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}
