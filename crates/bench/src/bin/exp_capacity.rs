//! Open-loop capacity experiment: latency percentiles and saturation
//! curves for the snapshot service under a fixed arrival schedule.
//!
//! §4.2 worries that "the need to execute HtmlDiff on the server can
//! result in high processor loads" and floats admission control as the
//! remedy; SiteStory's evaluation (Brunelle & Nelson, PAPERS.md) answers
//! the same question with ApacheBench-style open-loop load. This
//! experiment reproduces that methodology deterministically:
//!
//! - the arrival schedule is Poisson with a fixed seed
//!   ([`aide_workloads::openloop::schedule`]);
//! - every request *really executes* against a [`SnapshotService`] —
//!   archives are stored, HtmlDiff runs, the diff cache fills — on a
//!   virtual clock;
//! - each request's service time is charged from a deterministic
//!   work-unit model (below), and a FIFO queue simulation turns offered
//!   rate + service times into per-request latencies;
//! - latencies are observed into `aide-obs` histograms
//!   (`capacity.latency_us.*`) and the reported percentiles are read
//!   back off those histograms.
//!
//! No wall clock is read anywhere, so two runs emit byte-identical
//! `BENCH_capacity.json` files — ci.sh runs the experiment twice and
//! `cmp`s the outputs.
//!
//! # Service-time model
//!
//! Virtual microseconds, calibrated against the measured BENCH_htmldiff
//! numbers (sub-millisecond small-edit diffs at 8KB, ~2.5ms worst case):
//!
//! - poll (head + view):        `150 + body/64`
//! - check-in (remember):       `250 + body/32 + store`
//! - diff (diff_since_last):    cache hit `200 + html/64`, miss
//!   `600 + html/16 + store`
//! - `store` (per request, from obs counter deltas — inline
//!   maintenance, single driver thread, so the deltas are exact):
//!   `fsyncs·400 + wal_bytes/64 + seg_bytes/128`. The mem backend
//!   performs no store I/O, so its `store` term is always zero; the
//!   difference between the two curves is exactly the storage engine.

use aide_htmldiff::Options as DiffOptions;
use aide_obs::MetricsRegistry;
use aide_rcs::repo::{MemRepository, Repository};
use aide_snapshot::service::{SnapshotService, UserId};
use aide_store::repo::{DiskRepository, StoreOptions};
use aide_util::time::{Clock, Duration, Timestamp};
use aide_util::vfs::{MemVfs, Vfs};
use aide_workloads::edits::EditModel;
use aide_workloads::openloop::{schedule, simulate_queue, OpenLoopConfig, RequestKind, RequestMix};
use aide_workloads::page::Page;
use aide_workloads::rng::Rng;
use std::fmt::Write as _;
use std::sync::Arc;

const SEED: u64 = 1021;
const REQUESTS: usize = 2_000;
const URLS: usize = 24;
const USERS: usize = 8;
const RATES: &[u64] = &[250, 500, 1_000, 2_000, 4_000, 8_000];
const BASE_TIME: Timestamp = Timestamp(1_000_000);

/// Latency histogram bounds in µs: log-spaced from 100µs to 60s.
const LATENCY_BOUNDS: &[u64] = &[
    100, 150, 200, 300, 500, 750, 1_000, 1_500, 2_000, 3_000, 5_000, 7_500, 10_000, 15_000, 20_000,
    30_000, 50_000, 75_000, 100_000, 150_000, 200_000, 300_000, 500_000, 750_000, 1_000_000,
    2_000_000, 5_000_000, 10_000_000, 30_000_000, 60_000_000,
];

/// One point on a backend's capacity curve.
struct CurvePoint {
    rate_per_sec: u64,
    throughput_per_sec: u64,
    utilization_permille: u64,
    mean_service_us: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
    diff_cache_hit_permille: u64,
}

/// Store-I/O counter readings used to delta per-request store cost.
#[derive(Default, Clone, Copy)]
struct StoreCounters {
    fsyncs: u64,
    wal_bytes: u64,
    seg_bytes: u64,
}

fn store_counters(reg: &MetricsRegistry) -> StoreCounters {
    let snap = reg.snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    StoreCounters {
        fsyncs: get("store.wal.fsync"),
        wal_bytes: get("store.wal.append.bytes"),
        seg_bytes: get("store.append.bytes"),
    }
}

fn store_cost_us(before: StoreCounters, after: StoreCounters) -> u64 {
    (after.fsyncs - before.fsyncs) * 400
        + (after.wal_bytes - before.wal_bytes) / 64
        + (after.seg_bytes - before.seg_bytes) / 128
}

fn url_name(u: usize) -> String {
    format!("http://cap/doc{u:02}.html")
}

/// Runs the full request schedule at one offered rate against a fresh
/// service over `repo`, returning the curve point.
fn run_rate<R: Repository>(repo: R, rate: u64, reg: &Arc<MetricsRegistry>) -> CurvePoint {
    let clock = Clock::starting_at(BASE_TIME);
    let service = SnapshotService::new(repo, clock.clone(), 256, Duration::hours(8));
    let users: Vec<UserId> = (0..USERS)
        .map(|u| UserId::new(&format!("u{u}@cap")))
        .collect();
    let diff_opts = DiffOptions::default();

    // Page population: ~4KB structured pages, each with its own edit
    // stream so check-ins change real content.
    let mut rng = Rng::new(SEED ^ 0x9e37_79b9);
    let mut pages: Vec<Page> = (0..URLS)
        .map(|_| Page::generate(&mut rng, 4 * 1024))
        .collect();
    let mut steps = [0u64; URLS];

    // Prepopulate: every user has seen revision 1 of every page, so
    // diff_since_last always has a baseline.
    for (u, page) in pages.iter().enumerate() {
        let body = page.render();
        for user in &users {
            service.remember(user, &url_name(u), &body).unwrap();
        }
    }

    let arrivals = schedule(&OpenLoopConfig {
        seed: SEED,
        requests: REQUESTS,
        rate_per_sec: rate,
        urls: URLS,
        users: USERS,
        mix: RequestMix::default(),
    });

    let mut service_us = Vec::with_capacity(arrivals.len());
    let mut arrival_us = Vec::with_capacity(arrivals.len());
    let mut diff_requests = 0u64;
    let mut diff_cache_hits = 0u64;
    for a in &arrivals {
        clock.set(Timestamp(BASE_TIME.0 + a.at_us / 1_000_000));
        let url = url_name(a.url);
        let user = &users[a.user];
        let before = store_counters(reg);
        let cost = match a.kind {
            RequestKind::Poll => {
                let (rev, _) = service.head(&url).unwrap().unwrap();
                let body = service.view(&url, rev).unwrap();
                150 + body.len() as u64 / 64
            }
            RequestKind::CheckIn => {
                let edit = EditModel::InPlaceEdit { sentences: 1 };
                steps[a.url] += 1;
                edit.apply(&mut pages[a.url], &mut rng, steps[a.url]);
                let body = pages[a.url].render();
                service.remember(user, &url, &body).unwrap();
                let after = store_counters(reg);
                250 + body.len() as u64 / 32 + store_cost_us(before, after)
            }
            RequestKind::Diff => {
                diff_requests += 1;
                let body = pages[a.url].render();
                let out = service
                    .diff_since_last(user, &url, &body, &diff_opts)
                    .unwrap();
                let after = store_counters(reg);
                if out.from_cache {
                    diff_cache_hits += 1;
                    200 + out.html.len() as u64 / 64
                } else {
                    600 + out.html.len() as u64 / 16 + store_cost_us(before, after)
                }
            }
        };
        arrival_us.push(a.at_us);
        service_us.push(cost);
    }

    let latencies = simulate_queue(&arrival_us, &service_us, 1);
    for (a, &lat) in arrivals.iter().zip(&latencies) {
        let kind = match a.kind {
            RequestKind::Poll => "poll",
            RequestKind::CheckIn => "checkin",
            RequestKind::Diff => "diff",
        };
        reg.observe_with(&format!("capacity.latency_us.{kind}"), lat, LATENCY_BOUNDS);
        reg.observe_with("capacity.latency_us.all", lat, LATENCY_BOUNDS);
    }

    let snap = reg.snapshot();
    let hist = &snap.histograms["capacity.latency_us.all"];
    let total_service: u64 = service_us.iter().sum();
    let makespan = arrival_us
        .iter()
        .zip(&latencies)
        .map(|(a, l)| a + l)
        .max()
        .unwrap_or(1)
        .max(1);
    CurvePoint {
        rate_per_sec: rate,
        throughput_per_sec: REQUESTS as u64 * 1_000_000 / makespan,
        utilization_permille: total_service * 1_000 / makespan,
        mean_service_us: total_service / REQUESTS as u64,
        p50_us: hist.quantile(0.50),
        p90_us: hist.quantile(0.90),
        p99_us: hist.quantile(0.99),
        max_us: latencies.iter().copied().max().unwrap_or(0),
        diff_cache_hit_permille: (diff_cache_hits * 1_000)
            .checked_div(diff_requests)
            .unwrap_or(0),
    }
}

fn run_backend(backend: &str) -> (Vec<CurvePoint>, Option<u64>) {
    let mut curve = Vec::new();
    for &rate in RATES {
        // Fresh registry + fresh service per point: histogram and
        // store-counter state never leaks between rates.
        let reg = Arc::new(MetricsRegistry::new());
        let prev = aide_obs::install(reg.clone());
        let point = match backend {
            "mem" => run_rate(MemRepository::new(), rate, &reg),
            "disk" => {
                let vfs: Arc<dyn Vfs> = MemVfs::shared();
                let repo = DiskRepository::open(vfs, "capacity", StoreOptions::default()).unwrap();
                run_rate(repo, rate, &reg)
            }
            _ => unreachable!("unknown backend"),
        };
        aide_obs::uninstall();
        if let Some(prev) = prev {
            aide_obs::install(prev);
        }
        curve.push(point);
    }
    let saturation = curve
        .iter()
        .find(|p| p.utilization_permille >= 950)
        .map(|p| p.rate_per_sec);
    (curve, saturation)
}

fn main() {
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_capacity.json".to_string());

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seed\": {SEED}, \"requests\": {REQUESTS}, \"urls\": {URLS}, \
         \"users\": {USERS}, \"mix\": \"poll:6 checkin:3 diff:1\", \"servers\": 1}},"
    );
    json.push_str("  \"backends\": [\n");

    for (bi, backend) in ["mem", "disk"].iter().enumerate() {
        println!("=== backend: {backend} ===");
        println!(
            "{:>10} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "rate/s", "thruput/s", "util%", "p50 µs", "p90 µs", "p99 µs", "max µs", "hit%"
        );
        let (curve, saturation) = run_backend(backend);
        let _ = writeln!(json, "    {{\"backend\": \"{backend}\", \"curve\": [");
        for (i, p) in curve.iter().enumerate() {
            println!(
                "{:>10} {:>12} {:>8.1} {:>10} {:>10} {:>10} {:>10} {:>10.1}",
                p.rate_per_sec,
                p.throughput_per_sec,
                p.utilization_permille as f64 / 10.0,
                p.p50_us,
                p.p90_us,
                p.p99_us,
                p.max_us,
                p.diff_cache_hit_permille as f64 / 10.0,
            );
            let _ = write!(
                json,
                "      {{\"rate_per_sec\": {}, \"throughput_per_sec\": {}, \
                 \"utilization_permille\": {}, \"mean_service_us\": {}, \"p50_us\": {}, \
                 \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
                 \"diff_cache_hit_permille\": {}}}",
                p.rate_per_sec,
                p.throughput_per_sec,
                p.utilization_permille,
                p.mean_service_us,
                p.p50_us,
                p.p90_us,
                p.p99_us,
                p.max_us,
                p.diff_cache_hit_permille,
            );
            json.push_str(if i + 1 < curve.len() { ",\n" } else { "\n" });
        }
        json.push_str("    ],\n");
        match saturation {
            Some(rate) => {
                println!("saturation: {rate} req/s\n");
                let _ = writeln!(json, "    \"saturation_rate_per_sec\": {rate}}}");
            }
            None => {
                println!("saturation: not reached in sweep\n");
                let _ = writeln!(json, "    \"saturation_rate_per_sec\": null}}");
            }
        }
        if bi == 0 {
            // Rewrite the closing brace line to carry the separator.
            json.truncate(json.len() - 1);
            json.push_str(",\n");
        }
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}
