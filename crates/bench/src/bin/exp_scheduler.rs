//! Adaptive-vs-threshold polling experiment plus the 10M-URL timer
//! wheel microbenchmark (`BENCH_sched.json`).
//!
//! §3 polls every URL on a fixed pattern-matched threshold (Table 1).
//! The `aide-sched` crate replaces that with learned per-URL change
//! rates; this experiment measures what the learning buys under a
//! fixed request budget.
//!
//! # Polling experiment
//!
//! A simulated population of URLs with heterogeneous change rates:
//! every URL belongs to a volatility class (Zipf-assigned, so most
//! pages are near-static and a few are volatile — the §7 shape), its
//! *actual* mean change period is the class period jittered by
//! 0.5–2×, and a slice of the population is **misclassified** — the
//! pattern table says one class, the page behaves like another (Table
//! 1 is coarse; this is the paper's own critique of static
//! thresholds). Change instants are a per-URL Poisson process from a
//! seeded deterministic RNG.
//!
//! Poll opportunities arrive on an open-loop Poisson schedule
//! ([`aide_workloads::openloop::schedule`], the arrival timeline
//! reinterpreted 1µs → 1s), one request per opportunity, at several
//! budget rates. Both arms see the identical world and the identical
//! opportunity schedule:
//!
//! - **threshold**: the paper's rule — a URL is due when its
//!   class threshold has elapsed since its last poll; due URLs are
//!   served round-robin (cursor sweep), the order w3newer's hotlist
//!   walk imposes.
//! - **adaptive**: [`AdaptiveScheduler`] — wheel wakeups, gain-class
//!   priority dequeue, one ticket per opportunity, verdicts fed back
//!   with [`AdaptiveScheduler::complete`].
//!
//! A poll *detects* a change when at least one change instant falls in
//! its window; the headline metric is detected changes per 1000
//! requests (and recall against the ground-truth change count). The
//! run asserts the adaptive arm strictly wins at every rate and by a
//! margin overall.
//!
//! # Wheel microbenchmark
//!
//! Arms N ∈ {10k, 100k, 1M, 10M} timers with dues uniform in
//! [1, N/10] — constant expected firing density (~10/tick) at every
//! N — advances a fixed number of ticks, and reports the wheel's own
//! deterministic work counters ([`WheelOps`]). The O(1) claim is the
//! flatness assertion: touches per fired timer and slot visits per
//! tick are bounded by small constants *independent of N*. No wall
//! clock is read anywhere; ci.sh runs the experiment twice and `cmp`s
//! the JSON byte-for-byte.

use aide_obs::MetricsRegistry;
use aide_sched::wheel::WheelOps;
use aide_sched::{AdaptiveScheduler, PriorRules, SchedulerConfig, TimerWheel};
use aide_util::time::{Duration, Timestamp};
use aide_workloads::openloop::{schedule, OpenLoopConfig, RequestMix};
use aide_workloads::rng::Rng;
use std::fmt::Write as _;
use std::sync::Arc;

const SEED: u64 = 3023;
const URLS: usize = 600;
const HOSTS: usize = 40;
const REQUESTS: usize = 30_000;
/// Mean seconds between poll opportunities (the budget axis).
const GAP_SECS: &[u64] = &[30, 90, 300, 900];
/// Fraction of URLs (per 100) whose pattern class is wrong.
const MISCLASSIFIED_PCT: u64 = 15;
const BASE_TIME: Timestamp = Timestamp(1_000_000);

const HOUR: u64 = 3_600;
const DAY: u64 = 86_400;

/// Volatility classes, least volatile first — Zipf assignment then
/// makes near-static pages the common case.
const CLASS_PERIOD_SECS: &[u64] = &[180 * DAY, 30 * DAY, 7 * DAY, DAY, 6 * HOUR];

/// Longest threshold the fixed table will use. Table 1's thresholds
/// top out around two weeks: without learning, an operator cannot
/// trust a page to stay static for six months, so the table re-checks
/// everything at least this often. The adaptive arm's learned
/// posteriors are exactly what justifies stretching past this cap
/// (its freshness floor is `max_interval` below).
const THRESHOLD_CAP_SECS: u64 = 14 * DAY;

/// One URL's ground truth.
struct UrlWorld {
    url: String,
    host: String,
    /// The class the pattern table believes (prior + threshold).
    labeled_class: usize,
    /// Sorted change instants (absolute seconds).
    changes: Vec<u64>,
    /// Cursor into `changes` for O(1) amortized window counting.
    cursor: usize,
    last_poll: Option<u64>,
}

impl UrlWorld {
    /// Advances the change cursor to `t` and reports whether any change
    /// landed in `(last_poll, t]`. Polls arrive in time order, so the
    /// cursor never rewinds.
    fn poll(&mut self, t: u64) -> bool {
        while self.cursor < self.changes.len() && self.changes[self.cursor] <= t {
            self.cursor += 1;
        }
        let changed = match self.last_poll {
            // No baseline: the first poll only anchors the window, for
            // both arms (mirrors w3newer's first-contact rule).
            None => false,
            Some(prev) => self.changes[..self.cursor]
                .iter()
                .rev()
                .take_while(|&&c| c > prev)
                .next()
                .is_some(),
        };
        self.last_poll = Some(t);
        changed
    }
}

/// Builds the deterministic world: URL population, class labels,
/// actual change processes over `horizon_secs`.
fn build_world(horizon_secs: u64) -> Vec<UrlWorld> {
    let mut rng = Rng::new(SEED ^ 0x00c0_ffee);
    let mut world = Vec::with_capacity(URLS);
    for u in 0..URLS {
        // Zipf over classes ordered static → volatile: most URLs land
        // in the near-static classes.
        let labeled_class = rng.zipf(CLASS_PERIOD_SECS.len());
        // Misclassification: the page actually behaves like a uniformly
        // random class, but keeps its label.
        let actual_class = if rng.below(100) < MISCLASSIFIED_PCT {
            rng.index(CLASS_PERIOD_SECS.len())
        } else {
            labeled_class
        };
        // Within-class heterogeneity: 0.5–2× the class period.
        let base = CLASS_PERIOD_SECS[actual_class];
        let period = base / 2 + rng.below(base * 3 / 2).max(1);
        // Poisson change process: exponential gaps with mean `period`.
        let mut changes = Vec::new();
        let mut t = 0u64;
        loop {
            let uni = rng.f64().min(0.999_999_999);
            t += ((-(1.0 - uni).ln()) * period as f64).round().max(1.0) as u64;
            if t > horizon_secs {
                break;
            }
            changes.push(BASE_TIME.0 + t);
        }
        let host = format!("host{:02}.example", u % HOSTS);
        let url = format!(
            "http://{host}/c{labeled_class}/page{u:03}.html",
            host = host
        );
        world.push(UrlWorld {
            url,
            host,
            labeled_class,
            changes,
            cursor: 0,
            last_poll: None,
        });
    }
    world
}

/// One arm's results at one budget rate.
#[derive(Default)]
struct ArmResult {
    requests: u64,
    detected: u64,
    idle_opportunities: u64,
}

impl ArmResult {
    fn per_1k(&self) -> u64 {
        (self.detected * 1_000)
            .checked_div(self.requests)
            .unwrap_or(0)
    }
}

/// Poll opportunity instants (absolute seconds): the openloop µs
/// timeline reinterpreted as seconds.
fn opportunities(gap_secs: u64) -> Vec<u64> {
    let arrivals = schedule(&OpenLoopConfig {
        seed: SEED,
        requests: REQUESTS,
        rate_per_sec: 1_000_000 / gap_secs,
        urls: URLS,
        users: 1,
        mix: RequestMix::default(),
    });
    arrivals.iter().map(|a| BASE_TIME.0 + a.at_us).collect()
}

/// The paper's arm: class thresholds, round-robin over due URLs.
fn run_threshold(world: &mut [UrlWorld], slots: &[u64]) -> ArmResult {
    let mut out = ArmResult::default();
    let mut cursor = 0usize;
    for &t in slots {
        // Cursor sweep: next due URL in rotation order, if any.
        let mut picked = None;
        for step in 0..world.len() {
            let i = (cursor + step) % world.len();
            let due = match world[i].last_poll {
                None => true,
                Some(prev) => {
                    t - prev >= CLASS_PERIOD_SECS[world[i].labeled_class].min(THRESHOLD_CAP_SECS)
                }
            };
            if due {
                picked = Some(i);
                cursor = (i + 1) % world.len();
                break;
            }
        }
        match picked {
            Some(i) => {
                out.requests += 1;
                if world[i].poll(t) {
                    out.detected += 1;
                }
            }
            None => out.idle_opportunities += 1,
        }
    }
    out
}

/// The learned arm: wheel wakeups + gain-class dequeue, one ticket per
/// opportunity, verdicts fed back.
fn run_adaptive(world: &mut [UrlWorld], slots: &[u64]) -> ArmResult {
    // The prior rules carry exactly the threshold table's knowledge:
    // the *labeled* class period, keyed on the class directory.
    let mut rules_text = String::new();
    for (c, period) in CLASS_PERIOD_SECS.iter().enumerate() {
        let _ = writeln!(rules_text, "/c{c}/ {period}s");
    }
    let rules = PriorRules::parse(&rules_text).unwrap();
    let cfg = SchedulerConfig {
        target_gain_millionths: 500_000,
        min_interval: Duration::hours(1),
        // The freshness floor doubles as a discovery probe: a page the
        // pattern table mislabels as static still gets re-checked
        // monthly, and a couple of changed verdicts pull its posterior
        // toward the truth. The threshold arm has no such escape from
        // a bad label — and no learning to justify stretching past its
        // own 14-day cap.
        max_interval: Duration::days(30),
        budget: 1,
    };
    let sched = AdaptiveScheduler::new(cfg, rules);
    let mut id_of = vec![0u32; world.len()];
    for (i, w) in world.iter().enumerate() {
        id_of[i] = sched.track(&w.url, &w.host, BASE_TIME);
    }
    let by_id: std::collections::BTreeMap<u32, usize> =
        id_of.iter().enumerate().map(|(i, &id)| (id, i)).collect();

    let mut out = ArmResult::default();
    for &t in slots {
        let tickets = sched.next_polls(Timestamp(t));
        if tickets.is_empty() {
            out.idle_opportunities += 1;
            continue;
        }
        for ticket in tickets {
            let i = by_id[&ticket.id];
            out.requests += 1;
            let changed = world[i].poll(t);
            if changed {
                out.detected += 1;
            }
            sched.complete(ticket.id, changed, Timestamp(t));
        }
    }
    sched.publish_gauges();
    out
}

/// One budget rate, both arms over identical worlds and slots.
struct RatePoint {
    mean_gap_secs: u64,
    opportunities: u64,
    total_changes: u64,
    threshold: ArmResult,
    adaptive: ArmResult,
}

fn run_rate(gap_secs: u64) -> RatePoint {
    let slots = opportunities(gap_secs);
    let horizon = slots.last().copied().unwrap_or(BASE_TIME.0) - BASE_TIME.0;
    let mut world_t = build_world(horizon);
    let mut world_a = build_world(horizon);
    let total_changes: u64 = world_t.iter().map(|w| w.changes.len() as u64).sum();
    let threshold = run_threshold(&mut world_t, &slots);
    let adaptive = run_adaptive(&mut world_a, &slots);
    RatePoint {
        mean_gap_secs: gap_secs,
        opportunities: slots.len() as u64,
        total_changes,
        threshold,
        adaptive,
    }
}

// ------------------------------------------------------------------ wheel

/// One wheel microbenchmark point.
struct WheelPoint {
    timers: u64,
    ticks: u64,
    fired: u64,
    slot_visits: u64,
    cascaded: u64,
    touches: u64,
}

impl WheelPoint {
    /// Work per fired timer, ×100 (integer fixed point).
    fn touches_per_fired_x100(&self) -> u64 {
        (self.touches * 100).checked_div(self.fired).unwrap_or(0)
    }

    /// Slot lists examined per tick, ×100.
    fn visits_per_tick_x100(&self) -> u64 {
        (self.slot_visits * 100)
            .checked_div(self.ticks)
            .unwrap_or(0)
    }
}

const WHEEL_SIZES: &[u64] = &[10_000, 100_000, 1_000_000, 10_000_000];
const WHEEL_TICKS: u64 = 512;

/// Arms `n` timers with dues uniform in [1, n/10] (constant expected
/// firing density of ~10/tick at every `n`), advances a fixed tick
/// count, returns the wheel's own deterministic work counters.
fn run_wheel(n: u64) -> WheelPoint {
    let mut rng = Rng::new(SEED ^ n);
    let mut wheel = TimerWheel::new(0);
    let span = n / 10;
    for id in 0..n {
        wheel.insert(id as u32, 1 + rng.below(span));
    }
    let mut ops = WheelOps::default();
    let mut fired = Vec::new();
    wheel.advance_to(WHEEL_TICKS, &mut fired, &mut ops);
    WheelPoint {
        timers: n,
        ticks: ops.ticks,
        fired: ops.fired,
        slot_visits: ops.slot_visits,
        cascaded: ops.cascaded,
        touches: ops.touches(),
    }
}

// ------------------------------------------------------------------- main

fn main() {
    let out_path = std::env::args()
        .skip_while(|a| a != "--out")
        .nth(1)
        .unwrap_or_else(|| "BENCH_sched.json".to_string());

    // Capture the scheduler's own metrics for the whole sweep; the
    // counters are deterministic (virtual clock, seeded world).
    let reg = Arc::new(MetricsRegistry::new());
    let prev = aide_obs::install(reg.clone());

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"seed\": {SEED}, \"urls\": {URLS}, \"hosts\": {HOSTS}, \
         \"requests\": {REQUESTS}, \"misclassified_pct\": {MISCLASSIFIED_PCT}, \
         \"classes_secs\": {CLASS_PERIOD_SECS:?}}},"
    );

    println!("=== adaptive vs threshold polling ===");
    println!(
        "{:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "gap s", "thr req", "ada req", "thr det", "ada det", "thr/1k", "ada/1k", "win x100"
    );
    json.push_str("  \"curve\": [\n");
    let mut points = Vec::new();
    for &gap in GAP_SECS {
        points.push(run_rate(gap));
    }
    let mut agg_thr = (0u64, 0u64);
    let mut agg_ada = (0u64, 0u64);
    for (i, p) in points.iter().enumerate() {
        let win_x100 = (p.adaptive.per_1k() * 100)
            .checked_div(p.threshold.per_1k().max(1))
            .unwrap_or(0);
        println!(
            "{:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8}",
            p.mean_gap_secs,
            p.threshold.requests,
            p.adaptive.requests,
            p.threshold.detected,
            p.adaptive.detected,
            p.threshold.per_1k(),
            p.adaptive.per_1k(),
            win_x100,
        );
        let _ = write!(
            json,
            "    {{\"mean_gap_secs\": {}, \"opportunities\": {}, \"total_changes\": {}, \
             \"threshold\": {{\"requests\": {}, \"detected\": {}, \"detected_per_1k\": {}, \
             \"recall_permille\": {}, \"idle_opportunities\": {}}}, \
             \"adaptive\": {{\"requests\": {}, \"detected\": {}, \"detected_per_1k\": {}, \
             \"recall_permille\": {}, \"idle_opportunities\": {}}}, \"win_x100\": {}}}",
            p.mean_gap_secs,
            p.opportunities,
            p.total_changes,
            p.threshold.requests,
            p.threshold.detected,
            p.threshold.per_1k(),
            p.threshold.detected * 1_000 / p.total_changes.max(1),
            p.threshold.idle_opportunities,
            p.adaptive.requests,
            p.adaptive.detected,
            p.adaptive.per_1k(),
            p.adaptive.detected * 1_000 / p.total_changes.max(1),
            p.adaptive.idle_opportunities,
            win_x100,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
        agg_thr = (
            agg_thr.0 + p.threshold.requests,
            agg_thr.1 + p.threshold.detected,
        );
        agg_ada = (
            agg_ada.0 + p.adaptive.requests,
            agg_ada.1 + p.adaptive.detected,
        );

        // The headline assertion, per rate: strictly better detection
        // efficiency from the same opportunity schedule.
        assert!(
            p.adaptive.per_1k() > p.threshold.per_1k(),
            "adaptive must beat threshold at gap {}s ({} vs {} per 1k)",
            p.mean_gap_secs,
            p.adaptive.per_1k(),
            p.threshold.per_1k()
        );
    }
    json.push_str("  ],\n");

    let thr_per_1k = agg_thr.1 * 1_000 / agg_thr.0.max(1);
    let ada_per_1k = agg_ada.1 * 1_000 / agg_ada.0.max(1);
    let margin_x100 = ada_per_1k * 100 / thr_per_1k.max(1);
    println!(
        "overall: threshold {thr_per_1k}/1k, adaptive {ada_per_1k}/1k, margin {:.2}x",
        margin_x100 as f64 / 100.0
    );
    assert!(
        margin_x100 >= 115,
        "adaptive must beat threshold by >=1.15x overall (got {margin_x100} x100)"
    );
    let _ = writeln!(
        json,
        "  \"overall\": {{\"threshold_detected_per_1k\": {thr_per_1k}, \
         \"adaptive_detected_per_1k\": {ada_per_1k}, \"margin_x100\": {margin_x100}}},"
    );

    // A worked sched.* metrics sample for the operator docs.
    let snap = reg.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let _ = writeln!(
        json,
        "  \"sched_metrics\": {{\"fired\": {}, \"dequeue\": {}, \
         \"observe_changed\": {}, \"observe_unchanged\": {}}},",
        counter("sched.fired"),
        counter("sched.dequeue"),
        counter("sched.observe.changed"),
        counter("sched.observe.unchanged"),
    );
    aide_obs::uninstall();
    if let Some(prev) = prev {
        aide_obs::install(prev);
    }

    println!("\n=== timer wheel scaling (dues uniform, ~10 fires/tick) ===");
    println!(
        "{:>12} {:>7} {:>9} {:>11} {:>9} {:>10} {:>9} {:>9}",
        "timers", "ticks", "fired", "slot_visits", "cascaded", "touches", "tpf x100", "vpt x100"
    );
    json.push_str("  \"wheel\": [\n");
    let mut wheel_points = Vec::new();
    for &n in WHEEL_SIZES {
        wheel_points.push(run_wheel(n));
    }
    for (i, w) in wheel_points.iter().enumerate() {
        println!(
            "{:>12} {:>7} {:>9} {:>11} {:>9} {:>10} {:>9} {:>9}",
            w.timers,
            w.ticks,
            w.fired,
            w.slot_visits,
            w.cascaded,
            w.touches,
            w.touches_per_fired_x100(),
            w.visits_per_tick_x100(),
        );
        let _ = write!(
            json,
            "    {{\"timers\": {}, \"ticks\": {}, \"fired\": {}, \"slot_visits\": {}, \
             \"cascaded\": {}, \"touches\": {}, \"touches_per_fired_x100\": {}, \
             \"slot_visits_per_tick_x100\": {}}}",
            w.timers,
            w.ticks,
            w.fired,
            w.slot_visits,
            w.cascaded,
            w.touches,
            w.touches_per_fired_x100(),
            w.visits_per_tick_x100(),
        );
        json.push_str(if i + 1 < wheel_points.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");

    // The O(1) evidence: per-tick slot visits are bounded by the wheel
    // geometry (1 level-0 drain + at most 3 cascade visits), and work
    // per fired timer stays flat as the armed population grows 1000x.
    for w in &wheel_points {
        assert!(
            w.visits_per_tick_x100() <= 400,
            "slot visits per tick must be bounded by wheel geometry, got {} x100 at N={}",
            w.visits_per_tick_x100(),
            w.timers
        );
    }
    let tpf: Vec<u64> = wheel_points
        .iter()
        .map(|w| w.touches_per_fired_x100())
        .collect();
    let (min_tpf, max_tpf) = (
        *tpf.iter().min().unwrap_or(&1),
        *tpf.iter().max().unwrap_or(&1),
    );
    assert!(
        max_tpf * 100 / min_tpf.max(1) <= 200,
        "touches per fired timer must stay flat across N (spread {min_tpf}..{max_tpf} x100)"
    );
    println!(
        "per-fired work spread across 1000x population growth: {:.2}x",
        (max_tpf as f64) / (min_tpf as f64)
    );

    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {out_path}");
}
