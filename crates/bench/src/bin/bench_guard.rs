//! Bench regression guard: checks the committed `BENCH_htmldiff.json`
//! against the budget in `crates/bench/benches/htmldiff_budget.json`.
//!
//! The PR that killed the anchorless quadratic fallback bounded the
//! full-replacement outlier: the 8KB `replace` edit model must stay
//! within `replace_over_inplace_max` times the `inplace` baseline and
//! under `replace_max_ns` absolutely. Whenever the bench file is
//! regenerated, this guard fails CI if the worst case has crept back.
//!
//! Both files are flat, machine-written JSON; parsing is a line scan
//! (no serde in the workspace). Usage:
//!
//! ```text
//! bench_guard [BENCH_htmldiff.json [htmldiff_budget.json]]
//! ```

use std::process::ExitCode;

/// Extracts the first `"key": <number>` after position `from`.
fn number_after(text: &str, key: &str, from: usize) -> Option<f64> {
    let at = text[from..].find(&format!("\"{key}\""))? + from;
    let rest = &text[at + key.len() + 2..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// `ns_per_iter` of the named benchmark entry.
fn bench_ns(text: &str, name: &str) -> Option<f64> {
    let at = text.find(&format!("\"{name}\""))?;
    number_after(text, "ns_per_iter", at)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let bench_path = args.next().unwrap_or_else(|| "BENCH_htmldiff.json".into());
    let budget_path = args
        .next()
        .unwrap_or_else(|| "crates/bench/benches/htmldiff_budget.json".into());

    let bench = match std::fs::read_to_string(&bench_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_guard: cannot read {bench_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let budget = match std::fs::read_to_string(&budget_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_guard: cannot read {budget_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (Some(replace), Some(inplace)) = (
        bench_ns(&bench, "htmldiff_8kb_by_edit_model/replace"),
        bench_ns(&bench, "htmldiff_8kb_by_edit_model/inplace"),
    ) else {
        eprintln!("bench_guard: {bench_path} lacks the 8kb replace/inplace entries");
        return ExitCode::FAILURE;
    };
    let (Some(max_ratio), Some(max_ns)) = (
        number_after(&budget, "replace_over_inplace_max", 0),
        number_after(&budget, "replace_max_ns", 0),
    ) else {
        eprintln!("bench_guard: {budget_path} lacks the budget keys");
        return ExitCode::FAILURE;
    };

    let ratio = replace / inplace;
    println!(
        "bench_guard: replace {:.2}ms / inplace {:.2}ms = {ratio:.2}x (budget {max_ratio}x, \
         abs {:.1}ms)",
        replace / 1e6,
        inplace / 1e6,
        max_ns / 1e6
    );
    let mut ok = true;
    if ratio > max_ratio {
        eprintln!("bench_guard: FAIL replace/inplace {ratio:.2}x exceeds budget {max_ratio}x");
        ok = false;
    }
    if replace > max_ns {
        eprintln!("bench_guard: FAIL replace {replace:.0}ns exceeds absolute budget {max_ns:.0}ns");
        ok = false;
    }
    if ok {
        println!("bench_guard: within budget");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
