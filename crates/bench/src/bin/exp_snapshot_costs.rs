//! §4 experiment: snapshot-service costs — delta storage across edit
//! models, and the diff-output cache.
//!
//! Two claims to reproduce:
//!
//! 1. "Except for pages that change in many respects at once, the
//!    storage overhead is minimal beyond the need to save a copy of the
//!    page in the first place" — measured as archive bytes vs full-copy
//!    bytes for each edit model, where `FullReplace` should be the
//!    outlier.
//! 2. "Many users who have seen versions N and N+1 of a page could
//!    retrieve HtmlDiff(pageN, pageN+1) with a single invocation" —
//!    measured as HtmlDiff executions with and without the diff cache as
//!    the user count grows.

use aide_htmldiff::Options as DiffOptions;
use aide_rcs::archive::RevId;
use aide_rcs::repo::MemRepository;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};
use aide_workloads::edits::EditModel;
use aide_workloads::page::Page;
use aide_workloads::rng::Rng;

fn storage_for_model(name: &str, model: EditModel) {
    let clock = Clock::starting_at(Timestamp(1_000_000));
    let service = SnapshotService::new(MemRepository::new(), clock.clone(), 4, Duration::hours(1));
    let user = UserId::new("u@x");
    let mut rng = Rng::new(11);
    let mut page = Page::generate(&mut rng, 10_000);
    let url = "http://h/page.html";
    let mut full_copies = 0usize;
    for step in 0..50u64 {
        let body = page.render();
        full_copies += body.len();
        service.remember(&user, url, &body).unwrap();
        clock.advance(Duration::days(1));
        model.apply(&mut page, &mut rng, step + 1);
    }
    let stats = service.storage().unwrap();
    println!(
        "{name:<22} {:>12} {:>12} {:>9.0}%",
        stats.bytes,
        full_copies,
        100.0 * stats.bytes as f64 / full_copies as f64
    );
}

fn diff_cache_sweep() {
    println!("\n=== diff-cache effect: HtmlDiff executions for N users ===\n");
    println!("{:<8} {:>14} {:>14}", "users", "no cache", "with cache");
    for n_users in [1usize, 5, 20, 100] {
        let mut results = Vec::new();
        for cached in [false, true] {
            let clock = Clock::starting_at(Timestamp(1_000_000));
            // A cache with 0 effective slots simulates "no cache" by using
            // a TTL of zero.
            let ttl = if cached {
                Duration::hours(8)
            } else {
                Duration::ZERO
            };
            let service = SnapshotService::new(MemRepository::new(), clock.clone(), 64, ttl);
            let seed_user = UserId::new("seeder@x");
            let url = "http://h/shared.html";
            let mut rng = Rng::new(3);
            let page = Page::generate(&mut rng, 6_000);
            service.remember(&seed_user, url, &page.render()).unwrap();
            clock.advance(Duration::days(1));
            let mut page2 = page.clone();
            EditModel::InPlaceEdit { sentences: 3 }.apply(&mut page2, &mut rng, 1);
            service.remember(&seed_user, url, &page2.render()).unwrap();
            // N users each request the same N -> N+1 diff.
            for u in 0..n_users {
                let _ = service
                    .diff_versions(url, RevId(1), RevId(2), &DiffOptions::default())
                    .unwrap();
                let _ = u;
            }
            results.push(service.service_stats().htmldiff_invocations);
        }
        println!("{n_users:<8} {:>14} {:>14}", results[0], results[1]);
    }
    println!("\n(with the cache, one invocation serves everyone — §4.2.)");
}

fn checkout_depth_cost() {
    println!("\n=== reverse-delta trade-off: checkout cost vs revision age ===\n");
    let clock = Clock::starting_at(Timestamp(1_000_000));
    let service = SnapshotService::new(MemRepository::new(), clock.clone(), 4, Duration::hours(1));
    let user = UserId::new("u@x");
    let url = "http://h/deep.html";
    let mut rng = Rng::new(5);
    let mut page = Page::generate(&mut rng, 20_000);
    for step in 0..100u64 {
        service.remember(&user, url, &page.render()).unwrap();
        clock.advance(Duration::days(1));
        EditModel::InPlaceEdit { sentences: 2 }.apply(&mut page, &mut rng, step + 1);
    }
    println!("{:<12} {:>14}", "revision", "checkout µs");
    for rev in [100u32, 90, 50, 10, 1] {
        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            service.revision_text(url, RevId(rev)).unwrap();
        }
        let us = t0.elapsed().as_micros() / 20;
        println!("{:<12} {us:>14}", format!("1.{rev}"));
    }
    println!("\n(the head is free; ancient revisions pay a delta chain — the");
    println!(" RCS design choice that makes *recent* diffs, the common case,");
    println!(" cheap.)");
}

fn main() {
    println!("=== delta storage vs edit model (50 revisions of a 10 KB page) ===\n");
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "edit model", "archive B", "full-copy B", "ratio"
    );
    storage_for_model("append-news", EditModel::AppendNews);
    storage_for_model(
        "in-place (2 sent.)",
        EditModel::InPlaceEdit { sentences: 2 },
    );
    storage_for_model(
        "link-churn",
        EditModel::LinkChurn {
            added: 3,
            removed: 1,
        },
    );
    storage_for_model("reformat", EditModel::Reformat);
    storage_for_model("delete-block", EditModel::DeleteBlock);
    storage_for_model("FULL REPLACE", EditModel::FullReplace);
    println!("\n(FULL REPLACE is the paper's outlier: 'the storage overhead is");
    println!(" minimal' except 'for pages that change in many respects at once'.)");

    diff_cache_sweep();
    checkout_depth_cost();
}
