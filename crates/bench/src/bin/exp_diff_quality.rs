//! §5 experiment: diff quality — sentence-level weighted LCS vs UNIX
//! line diff across a mutation suite, plus the comparison-option
//! ablations.
//!
//! The paper's claim: "line-based comparison utilities such as UNIX diff
//! clearly are ill-suited to the comparison of structured documents such
//! as HTML." Each row mutates a generated page one way and reports:
//!
//! - how much of the document each differ flags as changed (HtmlDiff
//!   should flag little for small edits; line diff over-flags whenever
//!   lines reflow);
//! - whether the differ correctly classifies pure-formatting changes
//!   (the paragraph→list case) as no content change.
//!
//! Ablations then sweep the §5.1 knobs: the `2W/L` match threshold and
//! the sentence-length screen (quality + the screen's speed effect).

use aide_diffcore::lines::diff_lines;
use aide_htmldiff::compare::{compare_tokens, CompareOptions};
use aide_htmldiff::{html_diff, tokenize, Options};
use aide_workloads::edits::EditModel;
use aide_workloads::page::Page;
use aide_workloads::rng::Rng;

/// Reflows HTML: same tokens, different line breaks — invisible to a
/// correct HTML differ, catastrophic for a line differ.
fn reflow(html: &str) -> String {
    let words: Vec<&str> = html.split_whitespace().collect();
    let mut out = String::new();
    for (i, w) in words.iter().enumerate() {
        out.push_str(w);
        out.push(if i % 7 == 6 { '\n' } else { ' ' });
    }
    out
}

fn flagged_fraction_line(old: &str, new: &str) -> f64 {
    let d = diff_lines(old, new);
    let changed = d.deleted_lines() + d.inserted_lines();
    let total = d.old_lines.len() + d.new_lines.len();
    if total == 0 {
        0.0
    } else {
        changed as f64 / total as f64
    }
}

fn main() {
    println!("=== changed-fraction by mutation: HtmlDiff vs UNIX line diff ===\n");
    println!(
        "{:<28} {:>10} {:>10} {:>14}",
        "mutation", "htmldiff", "line diff", "content chg?"
    );
    println!("{}", "-".repeat(66));

    let mut rng = Rng::new(2024);
    let base = Page::generate(&mut rng, 8_000);
    let old_html = base.render();

    let cases: Vec<(&str, String)> = vec![
        ("identical", old_html.clone()),
        ("whitespace reflow", reflow(&old_html)),
        ("append one item", {
            let mut p = base.clone();
            EditModel::AppendNews.apply(&mut p, &mut Rng::new(1), 1);
            p.render()
        }),
        ("edit 2 sentences", {
            let mut p = base.clone();
            EditModel::InPlaceEdit { sentences: 2 }.apply(&mut p, &mut Rng::new(2), 1);
            p.render()
        }),
        ("edit 2 sentences + reflow", {
            let mut p = base.clone();
            EditModel::InPlaceEdit { sentences: 2 }.apply(&mut p, &mut Rng::new(2), 1);
            reflow(&p.render())
        }),
        ("paragraph -> list", {
            let mut p = base.clone();
            for _ in 0..3 {
                EditModel::Reformat.apply(&mut p, &mut Rng::new(3), 1);
            }
            p.render()
        }),
        ("delete a block", {
            let mut p = base.clone();
            EditModel::DeleteBlock.apply(&mut p, &mut Rng::new(4), 1);
            p.render()
        }),
        ("full replacement", {
            let mut p = base.clone();
            EditModel::FullReplace.apply(&mut p, &mut Rng::new(5), 1);
            p.render()
        }),
    ];

    for (name, new_html) in &cases {
        let h = html_diff(&old_html, new_html, &Options::default());
        let l = flagged_fraction_line(&old_html, new_html);
        println!(
            "{name:<28} {:>9.1}% {:>9.1}% {:>14}",
            100.0 * h.stats.changed_fraction,
            100.0 * l,
            if h.stats.content_changed() {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!("\n(reflow rows: line diff flags ~everything; HtmlDiff flags 0.");
    println!(" paragraph->list: HtmlDiff reports format-only, no content change.)");

    // Ablation 1: the match threshold, against *word-level* edits — one
    // to several words replaced inside otherwise intact sentences, the
    // regime where the 2W/L test decides between "edited sentence" and
    // "delete + insert".
    println!("\n=== ablation: 2W/L match threshold (word-level edits) ===\n");
    println!(
        "{:<12} {:>14} {:>18} {:>16}",
        "threshold", "edited pairs", "delete+insert", "changed fraction"
    );
    let edited = {
        // Replace ~40% of the words in every third sentence.
        let mut out = String::new();
        for (i, line) in old_html.lines().enumerate() {
            if i % 3 == 0 && line.starts_with("<P>") {
                let mut words: Vec<String> = line.split(' ').map(str::to_string).collect();
                let mut wrng = Rng::new(i as u64);
                for w in words.iter_mut().skip(1) {
                    if !w.starts_with('<') && wrng.chance(0.4) {
                        *w = "REPLACED".to_string();
                    }
                }
                out.push_str(&words.join(" "));
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        out
    };
    for threshold in [0.2, 0.4, 0.5, 0.6, 0.8, 0.95] {
        let opts = Options {
            compare: CompareOptions {
                match_threshold: threshold,
                length_screen: Some(0.4),
                ..CompareOptions::default()
            },
            ..Options::default()
        };
        let r = html_diff(&old_html, &edited, &opts);
        println!(
            "{threshold:<12} {:>14} {:>18} {:>15.1}%",
            r.stats.changed_pairs,
            r.stats.old_only_sentences + r.stats.new_only_sentences,
            100.0 * r.stats.changed_fraction
        );
    }
    println!("\n(low thresholds keep edited sentences matched as pairs; high");
    println!(" thresholds degrade them into delete+insert noise, inflating the");
    println!(" changed fraction and muddying the merged page.)");

    // Ablation 2: the length screen (match quality and inner-LCS work).
    println!("\n=== ablation: sentence-length screen ===\n");
    println!(
        "{:<18} {:>12} {:>14} {:>12}",
        "screen", "inner LCS", "screened out", "matched"
    );
    let old_tokens = tokenize(&old_html);
    let new_tokens = tokenize(&edited);
    for (label, screen) in [
        ("off", None),
        ("0.25", Some(0.25)),
        ("0.4", Some(0.4)),
        ("0.6", Some(0.6)),
    ] {
        // The probe counters below report the paper's algorithm, so the
        // ablation runs the naive DP: the anchored fast path deliberately
        // avoids most probes, which would make the screen look idle.
        let opts = CompareOptions {
            match_threshold: 0.5,
            length_screen: screen,
            force_naive: true,
            ..CompareOptions::default()
        };
        let al = compare_tokens(&old_tokens, &new_tokens, &opts);
        println!(
            "{label:<18} {:>12} {:>14} {:>12}",
            al.inner_lcs_evals,
            al.screened_out,
            al.alignment.pairs.len()
        );
    }
    println!("\n(the screen eliminates most pairwise sentence comparisons —");
    println!(" one of the paper's 'several speed optimizations' — at little");
    println!(" cost in matches.)");
}
