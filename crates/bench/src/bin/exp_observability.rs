//! Observability experiment: what instrumentation costs, and what it
//! sees, on the fault-storm workload.
//!
//! Replays the `exp_fault_tolerance` sweep — 100 URLs, a seeded fault
//! storm (12% global timeouts, host2 answering 503 half the time,
//! host7 hard-down), the robust retry+breaker tracker — under three
//! conditions:
//!
//! - **disabled**: no subscriber installed, the shipped default. Every
//!   instrumentation site reduces to one relaxed atomic load.
//! - **enabled**: an `aide_obs::MetricsRegistry` installed for the whole
//!   batch, every counter/histogram/span live.
//! - **replayed**: two single runs into fresh registries, whose JSON
//!   exports must be byte-identical (the determinism contract).
//!
//! Prints per-run wall-clock means for the first two and the relative
//! overhead (the ISSUE 4 target is <5%), then the full metrics dump of
//! one instrumented run.
//!
//! Knob: `AIDE_OBS_JSON` — path to also write the JSON export to.

use aide_obs::MetricsRegistry;
use aide_simweb::browser::Bookmark;
use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
use aide_simweb::http::Status;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::breaker::{BreakerConfig, CircuitBreaker};
use aide_w3newer::config::ThresholdConfig;
use aide_w3newer::retry::RetryPolicy;
use aide_w3newer::W3Newer;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const HOSTS: usize = 10;
const PAGES_PER_HOST: usize = 10;
const FAULT_SEED: u64 = 42;
const WARMUP: usize = 5;
const REPS: u32 = 100;

fn build_world() -> (Clock, Web, Vec<Bookmark>, HashMap<String, Timestamp>) {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 9, 0, 0));
    let web = Web::new(clock.clone());
    let visited = clock.now() - Duration::days(1);
    let mut hotlist = Vec::new();
    let mut history = HashMap::new();
    for h in 0..HOSTS {
        for p in 0..PAGES_PER_HOST {
            let url = format!("http://host{h}.example.com/page{p}.html");
            let modified = if p < 2 {
                clock.now() - Duration::hours(3)
            } else {
                clock.now() - Duration::days(10)
            };
            web.set_page(&url, &format!("<HTML><P>body {h}/{p}</HTML>"), modified)
                .unwrap();
            history.insert(url.clone(), visited);
            hotlist.push(Bookmark {
                title: format!("Page {h}/{p}"),
                url,
            });
        }
    }
    (clock, web, hotlist, history)
}

fn storm() -> FaultPlan {
    FaultPlan::new(FAULT_SEED)
        .everywhere(FaultEpisode::rate(0.12, FaultKind::Timeout))
        .for_host(
            "host2.example.com",
            FaultEpisode::rate(
                0.5,
                FaultKind::Transient {
                    status: Status::ServiceUnavailable,
                    retry_after_secs: Some(20),
                },
            ),
        )
        .for_host(
            "host7.example.com",
            FaultEpisode::rate(1.0, FaultKind::ConnectionRefused),
        )
}

/// One full sweep: fresh world, fresh storm, robust tracker. When a
/// subscriber is live the run's aggregates are published too, so the
/// timed region pays the whole instrumentation bill, not just the
/// hot-path counters. Returns nanoseconds spent in the tracker run
/// itself — world construction is identical on both sides and
/// excluded so it cannot mask or fake a difference.
fn sweep() -> u64 {
    let (_clock, web, hotlist, history) = build_world();
    web.install_fault_plan(storm());
    let mut w = W3Newer::new(ThresholdConfig::default());
    w.retry = RetryPolicy::standard(7);
    w.breaker = Some(Arc::new(CircuitBreaker::new(BreakerConfig::default())));
    w.flags.staleness = Duration::ZERO;
    w.flags.abort_after_consecutive_errors = None;
    let start = Instant::now();
    let report = w.run_serial(&hotlist, &move |u| history.get(u).copied(), &web, None);
    if aide_obs::enabled() {
        report.net.publish_obs();
        web.stats().publish_obs();
    }
    start.elapsed().as_nanos() as u64
}

fn main() {
    println!(
        "=== instrumentation overhead on the fault-storm sweep \
         ({} URLs, seed {FAULT_SEED}, best of {REPS} interleaved reps) ===\n",
        HOSTS * PAGES_PER_HOST
    );

    for _ in 0..WARMUP {
        sweep();
    }

    // Interleave disabled/enabled repetitions so drift (page cache,
    // allocator state, frequency scaling) lands on both sides equally,
    // and take the minimum: scheduler noise is strictly additive, so
    // min-of-N is the robust per-side estimate.
    let batch = Arc::new(MetricsRegistry::new());
    let mut disabled_ns = u64::MAX;
    let mut enabled_ns = u64::MAX;
    for _ in 0..REPS {
        disabled_ns = disabled_ns.min(sweep());
        aide_obs::install(batch.clone());
        enabled_ns = enabled_ns.min(sweep());
        aide_obs::uninstall();
    }

    let overhead = (enabled_ns as f64 / disabled_ns as f64 - 1.0) * 100.0;
    println!("{:<22}{:>14}", "condition", "ns/sweep");
    println!("{}", "-".repeat(36));
    println!("{:<22}{:>14}", "obs disabled", disabled_ns);
    println!("{:<22}{:>14}", "obs enabled", enabled_ns);
    println!("\nenabled overhead: {overhead:+.1}%  (target <5%)\n");

    // Determinism: two single runs into fresh registries must export
    // byte-identical JSON.
    let replay = |_: u32| {
        let r = Arc::new(MetricsRegistry::new());
        aide_obs::install(r.clone());
        sweep();
        aide_obs::uninstall();
        r.render_json()
    };
    let a = replay(0);
    let b = replay(1);
    assert_eq!(
        a, b,
        "identically-seeded sweeps must export identical metrics"
    );
    println!("(asserted: two identically-seeded instrumented sweeps export");
    println!(
        " byte-identical JSON snapshots — {} bytes each.)\n",
        a.len()
    );

    // The view from one sweep.
    let single = Arc::new(MetricsRegistry::new());
    aide_obs::install(single.clone());
    sweep();
    if let Ok(path) = std::env::var("AIDE_OBS_JSON") {
        aide_obs::dump_json_env("AIDE_OBS_JSON").expect("write AIDE_OBS_JSON dump");
        eprintln!("(wrote JSON snapshot to {path})");
    }
    aide_obs::uninstall();
    println!("=== metrics recorded by one sweep ===\n");
    print!("{}", single.render_text());
}
