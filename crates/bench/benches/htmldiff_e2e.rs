//! Criterion bench: HtmlDiff end to end.
//!
//! Tokenize + compare + render across document sizes and change rates —
//! the server-side cost §4.2 worries about ("the need to execute
//! HtmlDiff on the server can result in high processor loads").

use aide_htmldiff::{html_diff, tokenize, Options};
use aide_workloads::edits::EditModel;
use aide_workloads::page::Page;
use aide_workloads::rng::Rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn pair(bytes: usize, model: EditModel) -> (String, String) {
    let mut rng = Rng::new(7);
    let mut page = Page::generate(&mut rng, bytes);
    let old = page.render();
    model.apply(&mut page, &mut rng, 1);
    (old, page.render())
}

fn bench_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("htmldiff_by_size_small_edit");
    for kb in [2usize, 8, 32] {
        let (old, new) = pair(kb * 1024, EditModel::InPlaceEdit { sentences: 2 });
        group.throughput(Throughput::Bytes((old.len() + new.len()) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(kb), &kb, |b, _| {
            b.iter(|| black_box(html_diff(&old, &new, &Options::default())));
        });
    }
    group.finish();
}

fn bench_change_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("htmldiff_8kb_by_edit_model");
    for (name, model) in [
        ("append", EditModel::AppendNews),
        ("inplace", EditModel::InPlaceEdit { sentences: 3 }),
        ("reformat", EditModel::Reformat),
        ("replace", EditModel::FullReplace),
    ] {
        let (old, new) = pair(8 * 1024, model);
        group.bench_function(name, |b| {
            b.iter(|| black_box(html_diff(&old, &new, &Options::default())));
        });
    }
    group.finish();
}

fn bench_tokenize(c: &mut Criterion) {
    let mut rng = Rng::new(9);
    let html = Page::generate(&mut rng, 32 * 1024).render();
    let mut group = c.benchmark_group("tokenize");
    group.throughput(Throughput::Bytes(html.len() as u64));
    group.bench_function("32kb", |b| {
        b.iter(|| black_box(tokenize(&html)));
    });
    group.finish();
}

fn bench_length_screen(c: &mut Criterion) {
    // The §5.1 speed-optimization ablation as a wall-clock measurement.
    // Both arms force the naive full DP: under the anchored fast path
    // almost no sentence pair is ever probed, so the screen's effect
    // drowns in tokenize/render overhead (the two arms used to measure
    // within noise of each other). The naive path probes every old×new
    // sentence pair, which is exactly the traffic the screen exists to
    // cut, so the on/off delta isolates the screen and nothing else.
    use aide_htmldiff::compare::{compare_tokens, CompareOptions};
    let (old, new) = pair(16 * 1024, EditModel::InPlaceEdit { sentences: 4 });
    let old_t = tokenize(&old);
    let new_t = tokenize(&new);
    let mut group = c.benchmark_group("length_screen_ablation");
    group.bench_function("screen_on", |b| {
        b.iter(|| {
            black_box(compare_tokens(
                &old_t,
                &new_t,
                &CompareOptions {
                    match_threshold: 0.5,
                    length_screen: Some(0.4),
                    force_naive: true,
                    ..CompareOptions::default()
                },
            ))
        });
    });
    group.bench_function("screen_off", |b| {
        b.iter(|| {
            black_box(compare_tokens(
                &old_t,
                &new_t,
                &CompareOptions {
                    match_threshold: 0.5,
                    length_screen: None,
                    force_naive: true,
                    ..CompareOptions::default()
                },
            ))
        });
    });
    group.finish();
}

fn bench_anchored_vs_naive(c: &mut Criterion) {
    // The PR's headline number: the anchored + hashed alignment fast
    // path against the plain full-DP alignment it must match
    // byte-for-byte, on the 32KB small-edit pair.
    use aide_htmldiff::CompareOptions;
    let (old, new) = pair(32 * 1024, EditModel::InPlaceEdit { sentences: 2 });
    let mut group = c.benchmark_group("htmldiff_32kb_anchored_vs_naive");
    group.throughput(Throughput::Bytes((old.len() + new.len()) as u64));
    for (name, force_naive) in [("anchored", false), ("naive", true)] {
        let opts = Options {
            compare: CompareOptions {
                force_naive,
                ..CompareOptions::default()
            },
            ..Options::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(html_diff(&old, &new, &opts)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sizes,
    bench_change_rates,
    bench_tokenize,
    bench_length_screen,
    bench_anchored_vs_naive
);
criterion_main!(benches);
