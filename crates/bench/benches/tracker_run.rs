//! Criterion bench: one w3newer run vs hotlist size and policy.
//!
//! The per-run CPU cost of the tracker itself (pattern matching, cache
//! lookups, decision logic), isolated from simulated network behaviour.

use aide_simweb::browser::Bookmark;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::config::{Threshold, ThresholdConfig};
use aide_w3newer::W3Newer;
use aide_workloads::sites::{population, PopulationConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn setup(n: usize) -> (Web, Vec<Bookmark>) {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 0, 0, 0));
    let web = Web::new(clock.clone());
    let cfg = PopulationConfig {
        urls: n,
        hosts: (n / 10).max(1),
        typical_bytes: 2_000,
        churners: 1,
        churner_bytes: 4_000,
    };
    let pages = population(&web, 99, &cfg);
    let hotlist = pages
        .iter()
        .map(|p| Bookmark {
            title: p.url.clone(),
            url: p.url.clone(),
        })
        .collect();
    clock.advance(Duration::days(1));
    (web, hotlist)
}

fn bench_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("w3newer_single_run");
    group.sample_size(20);
    for n in [50usize, 200, 500] {
        let (web, hotlist) = setup(n);
        group.bench_with_input(BenchmarkId::new("warm_cache", n), &n, |b, _| {
            let mut tracker =
                W3Newer::new(ThresholdConfig::new(Threshold::Every(Duration::days(2))));
            // Warm the cache with one run.
            tracker.run(&hotlist, &|_| None, &web, None);
            b.iter(|| black_box(tracker.run(&hotlist, &|_| None, &web, None)));
        });
    }
    group.finish();
}

fn bench_config_matching(c: &mut Criterion) {
    let cfg = ThresholdConfig::table1();
    let urls: Vec<String> = (0..500)
        .map(|i| format!("http://www.host{}.com/dir/page{i}.html", i % 37))
        .collect();
    c.bench_function("threshold_match_500_urls", |b| {
        b.iter(|| {
            for u in &urls {
                black_box(cfg.threshold_for(u));
            }
        });
    });
}

criterion_group!(benches, bench_run, bench_config_matching);
criterion_main!(benches);
