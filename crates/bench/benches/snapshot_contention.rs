//! Criterion bench: snapshot-service lock contention (§4.2).
//!
//! The same fixed workload — remembers of distinct URLs, then cached
//! diff renderings of distinct URLs — executed by 1, 4 and 8 worker
//! threads against one shared service, in two configurations:
//!
//! - `serial`: every operation first takes one global mutex, emulating
//!   the pre-refactor repository-wide `Mutex<R>` choke point;
//! - `sharded`: the service as it stands — per-URL locks over sharded
//!   repository / cache / control maps, so distinct-URL operations share
//!   no exclusive lock.
//!
//! On a multi-core host the sharded rows scale with the worker count
//! while the serial rows flatline. On a single-core host neither can
//! speed up in wall-clock terms; the comparison then shows the sharded
//! path costing no more than the coarse lock it replaced.

use aide_htmldiff::Options as DiffOptions;
use aide_rcs::archive::RevId;
use aide_rcs::repo::MemRepository;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::sync::Mutex;
use aide_util::time::{Clock, Duration, Timestamp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const URLS: usize = 48;
const REVS: usize = 5;

fn fresh_service() -> SnapshotService<MemRepository> {
    SnapshotService::new(
        MemRepository::new(),
        Clock::starting_at(Timestamp(1_000_000)),
        1024,
        Duration::hours(8),
    )
}

fn url(u: usize) -> String {
    format!("http://bench/doc{u}.html")
}

fn body(u: usize, r: usize) -> String {
    format!(
        "<HTML><HEAD><TITLE>doc {u}</TITLE></HEAD><BODY><H1>Document {u}</H1>\
         <P>revision {r} paragraph one with some sentence text to diff against.\
         <P>revision {r} paragraph two, more filler prose for the check-in delta.\
         </BODY></HTML>"
    )
}

/// Runs `URLS * REVS` remembers against `service`, the URL space split
/// evenly across `threads` workers. With `global: Some(..)` every
/// operation first funnels through that one mutex — the pre-refactor
/// serial design; with `None`, only the service's own per-URL locks
/// apply.
fn run_remembers(
    service: &SnapshotService<MemRepository>,
    threads: usize,
    global: Option<&Mutex<()>>,
) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            let s = &service;
            scope.spawn(move || {
                let user = UserId::new(&format!("bench{t}@x"));
                let mut u = t;
                while u < URLS {
                    for r in 0..REVS {
                        let _serial = global.map(|m| m.lock());
                        s.remember(&user, &url(u), &body(u, r)).unwrap();
                    }
                    u += threads;
                }
            });
        }
    });
}

fn bench_remember_scaling(c: &mut Criterion) {
    let choke = Mutex::new(());
    for (label, global) in [("serial", Some(&choke)), ("sharded", None)] {
        let mut group = c.benchmark_group(format!("snapshot_remember_{label}"));
        group.throughput(Throughput::Elements((URLS * REVS) as u64));
        for threads in [1usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        let service = fresh_service();
                        run_remembers(&service, threads, global);
                        black_box(service.snapshot_stats().remembers)
                    });
                },
            );
        }
        group.finish();
    }
}

fn bench_diff_cache_scaling(c: &mut Criterion) {
    // Seed two revisions of every URL; the first measured pass renders
    // each diff once, every later pass exercises the sharded cache's
    // concurrent read path.
    let service = fresh_service();
    let seeder = UserId::new("seed@x");
    for u in 0..URLS {
        for r in 0..2 {
            service.remember(&seeder, &url(u), &body(u, r)).unwrap();
        }
    }
    let mut group = c.benchmark_group("snapshot_diff_cached_distinct_urls");
    group.throughput(Throughput::Elements(URLS as u64));
    for threads in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for t in 0..threads {
                            let s = &service;
                            scope.spawn(move || {
                                let mut u = t;
                                while u < URLS {
                                    black_box(
                                        s.diff_versions(
                                            &url(u),
                                            RevId(1),
                                            RevId(2),
                                            &DiffOptions::default(),
                                        )
                                        .unwrap()
                                        .html
                                        .len(),
                                    );
                                    u += threads;
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_remember_scaling, bench_diff_cache_scaling);
criterion_main!(benches);
