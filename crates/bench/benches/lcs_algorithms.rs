//! Criterion bench: the comparison algorithms.
//!
//! Myers vs the LCS dynamic program vs Hirschberg's linear-space LCS, on
//! similar and dissimilar inputs across sizes — quantifying the
//! trade-offs §5.1's algorithm choice rests on.

use aide_diffcore::lcs::{weighted_lcs_dp, weighted_lcs_hirschberg};
use aide_diffcore::myers::myers_diff;
use aide_workloads::rng::Rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sequences(n: usize, edit_fraction: f64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = Rng::new(42);
    let a: Vec<u32> = (0..n).map(|_| rng.below(50) as u32).collect();
    let mut b = a.clone();
    let edits = ((n as f64) * edit_fraction) as usize;
    for _ in 0..edits {
        let i = rng.index(b.len());
        b[i] = 1000 + rng.below(50) as u32;
    }
    (a, b)
}

fn bench_similar(c: &mut Criterion) {
    let mut group = c.benchmark_group("similar_inputs_5pct_edits");
    for n in [100usize, 400, 1000] {
        let (a, b) = sequences(n, 0.05);
        group.bench_with_input(BenchmarkId::new("myers", n), &n, |bench, _| {
            bench.iter(|| black_box(myers_diff(&a, &b)));
        });
        group.bench_with_input(BenchmarkId::new("lcs_dp", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(weighted_lcs_dp(a.len(), b.len(), &|i, j| {
                    u64::from(a[i] == b[j])
                }))
            });
        });
        group.bench_with_input(BenchmarkId::new("hirschberg", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(weighted_lcs_hirschberg(a.len(), b.len(), &|i, j| {
                    u64::from(a[i] == b[j])
                }))
            });
        });
    }
    group.finish();
}

fn bench_dissimilar(c: &mut Criterion) {
    let mut group = c.benchmark_group("dissimilar_inputs_50pct_edits");
    for n in [100usize, 400] {
        let (a, b) = sequences(n, 0.5);
        group.bench_with_input(BenchmarkId::new("myers", n), &n, |bench, _| {
            bench.iter(|| black_box(myers_diff(&a, &b)));
        });
        group.bench_with_input(BenchmarkId::new("hirschberg", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(weighted_lcs_hirschberg(a.len(), b.len(), &|i, j| {
                    u64::from(a[i] == b[j])
                }))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_similar, bench_dissimilar);
criterion_main!(benches);
