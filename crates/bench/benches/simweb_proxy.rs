//! Criterion bench: the simulated-web substrate itself.
//!
//! Dispatch cost for HEAD/GET, proxy cache hits vs misses, and robots
//! evaluation — making sure the substrate is cheap enough that
//! experiment results measure AIDE, not the simulator.

use aide_simweb::http::Request;
use aide_simweb::net::Web;
use aide_simweb::proxy::ProxyCache;
use aide_util::robots::RobotsTxt;
use aide_util::time::{Clock, Duration, Timestamp};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn web() -> Web {
    let w = Web::new(Clock::starting_at(Timestamp(1_000_000)));
    for i in 0..100 {
        w.set_page(
            &format!("http://h{}.com/p{i}.html", i % 10),
            &format!("<HTML>page {i} body text</HTML>"),
            Timestamp(1000),
        )
        .unwrap();
    }
    w
}

fn bench_dispatch(c: &mut Criterion) {
    let w = web();
    c.bench_function("head_request", |b| {
        b.iter(|| black_box(w.request(&Request::head("http://h3.com/p13.html")).unwrap()));
    });
    c.bench_function("get_request", |b| {
        b.iter(|| black_box(w.request(&Request::get("http://h3.com/p13.html")).unwrap()));
    });
}

fn bench_proxy(c: &mut Criterion) {
    let w = web();
    let proxy = ProxyCache::new(w.clone(), Duration::hours(1));
    proxy.get("http://h3.com/p13.html").unwrap();
    c.bench_function("proxy_cache_hit", |b| {
        b.iter(|| black_box(proxy.get("http://h3.com/p13.html").unwrap()));
    });
    let cold = ProxyCache::new(w, Duration::ZERO); // TTL 0: always revalidate
    c.bench_function("proxy_revalidation", |b| {
        b.iter(|| black_box(cold.get("http://h3.com/p13.html").unwrap()));
    });
}

fn bench_robots(c: &mut Criterion) {
    let robots = RobotsTxt::parse(
        "User-agent: webcrawler\nDisallow: /\n\nUser-agent: *\nDisallow: /cgi-bin/\nDisallow: /private/\nDisallow: /tmp/\n",
    );
    c.bench_function("robots_allows", |b| {
        b.iter(|| black_box(robots.allows("w3newer/1.0", "/docs/deep/page.html")));
    });
}

criterion_group!(benches, bench_dispatch, bench_proxy, bench_robots);
criterion_main!(benches);
