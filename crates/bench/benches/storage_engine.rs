//! Criterion bench: repository backends head to head.
//!
//! Check-in (store), checkout (load, cached and cold), and recovery
//! (opening a populated store) for the in-memory reference repository
//! vs the persistent `aide-store` engine. The disk engine runs over an
//! in-memory VFS so the numbers measure the engine — WAL framing, group
//! commit, segment checkpointing, index rebuild — rather than the host
//! filesystem.

use aide_rcs::archive::Archive;
use aide_rcs::repo::{MemRepository, Repository};
use aide_store::{DiskRepository, StoreOptions};
use aide_util::time::Timestamp;
use aide_util::vfs::{MemVfs, Vfs};
use aide_workloads::edits::EditModel;
use aide_workloads::page::Page;
use aide_workloads::rng::Rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// A 10 KB page archive with `revisions` small-edit revisions.
fn build_archive(seed: u64, revisions: usize) -> Archive {
    let mut rng = Rng::new(seed);
    let mut page = Page::generate(&mut rng, 10 * 1024);
    let mut archive = Archive::create("bench", &page.render(), "u", "init", Timestamp(0));
    for step in 1..revisions {
        EditModel::InPlaceEdit { sentences: 2 }.apply(&mut page, &mut rng, step as u64);
        archive
            .checkin(&page.render(), "u", "edit", Timestamp(step as u64 * 100))
            .unwrap();
    }
    archive
}

fn mem_vfs_repo(opts: StoreOptions) -> DiskRepository {
    DiskRepository::open(MemVfs::shared() as Arc<dyn Vfs>, "bench", opts).unwrap()
}

/// Stores `n` distinct archives under `url:{i}` keys.
fn populate<R: Repository>(repo: &R, n: usize) {
    for i in 0..n {
        let archive = build_archive(i as u64, 3);
        repo.store(&format!("http://bench/page{i}.html"), &archive)
            .unwrap();
    }
}

fn bench_store(c: &mut Criterion) {
    let archive = build_archive(7, 3);
    let mut group = c.benchmark_group("store_10kb_3rev");

    let mem = MemRepository::new();
    group.bench_function("mem", |b| {
        b.iter(|| mem.store(black_box("http://bench/key"), &archive).unwrap());
    });

    // Repeated stores of one key keep the live set bounded; dead bytes
    // accumulate in the WAL and are reclaimed by checkpoint+compaction,
    // so the steady-state cost includes the engine's amortized
    // maintenance, exactly as a deployment would see it.
    let disk = mem_vfs_repo(StoreOptions::default());
    group.bench_function("disk", |b| {
        b.iter(|| disk.store(black_box("http://bench/key"), &archive).unwrap());
    });
    group.finish();
}

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_10kb_3rev");

    let mem = MemRepository::new();
    populate(&mem, 8);
    group.bench_function("mem", |b| {
        b.iter(|| black_box(mem.load("http://bench/page3.html").unwrap()));
    });

    // Warm path: the per-shard archive cache absorbs the read.
    let disk = mem_vfs_repo(StoreOptions::default());
    populate(&disk, 8);
    group.bench_function("disk_cached", |b| {
        b.iter(|| black_box(disk.load("http://bench/page3.html").unwrap()));
    });

    // Cold path: cache disabled, every load reads, CRC-checks, and
    // parses the `,v` text from the store.
    let cold = mem_vfs_repo(StoreOptions {
        cache_entries: 0,
        ..StoreOptions::default()
    });
    populate(&cold, 8);
    group.bench_function("disk_cold", |b| {
        b.iter(|| black_box(cold.load("http://bench/page3.html").unwrap()));
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_open");
    for keys in [64usize, 256] {
        // All records in the WAL: recovery replays every frame.
        let wal_vfs: Arc<dyn Vfs> = MemVfs::shared();
        let repo = DiskRepository::open(
            wal_vfs.clone(),
            "bench",
            StoreOptions {
                checkpoint_wal_bytes: u64::MAX >> 1,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        populate(&repo, keys);
        drop(repo);
        group.bench_with_input(BenchmarkId::new("wal", keys), &wal_vfs, |b, vfs| {
            b.iter(|| {
                black_box(
                    DiskRepository::open(vfs.clone(), "bench", StoreOptions::default()).unwrap(),
                )
            });
        });

        // Checkpointed: the same records live in segments, the WAL is
        // empty; recovery is a segment scan plus index rebuild.
        let seg_vfs: Arc<dyn Vfs> = MemVfs::shared();
        let repo = DiskRepository::open(seg_vfs.clone(), "bench", StoreOptions::default()).unwrap();
        populate(&repo, keys);
        repo.maintenance().unwrap();
        drop(repo);
        group.bench_with_input(BenchmarkId::new("segments", keys), &seg_vfs, |b, vfs| {
            b.iter(|| {
                black_box(
                    DiskRepository::open(vfs.clone(), "bench", StoreOptions::default()).unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_store, bench_load, bench_recovery);
criterion_main!(benches);
