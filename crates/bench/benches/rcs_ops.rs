//! Criterion bench: revision-store operations.
//!
//! Check-in cost, head checkout (free by design), deep checkout (the
//! reverse-delta chain), and `,v` emit/parse round trips, across history
//! depths.

use aide_rcs::archive::{Archive, RevId};
use aide_rcs::format::{emit, parse};
use aide_util::time::Timestamp;
use aide_workloads::edits::EditModel;
use aide_workloads::page::Page;
use aide_workloads::rng::Rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn build_archive(revisions: usize) -> Archive {
    let mut rng = Rng::new(3);
    let mut page = Page::generate(&mut rng, 10 * 1024);
    let mut archive = Archive::create("bench", &page.render(), "u", "init", Timestamp(0));
    for step in 1..revisions {
        EditModel::InPlaceEdit { sentences: 2 }.apply(&mut page, &mut rng, step as u64);
        archive
            .checkin(&page.render(), "u", "edit", Timestamp(step as u64 * 100))
            .unwrap();
    }
    archive
}

fn bench_checkin(c: &mut Criterion) {
    let mut rng = Rng::new(5);
    let mut page = Page::generate(&mut rng, 10 * 1024);
    let base = page.render();
    EditModel::InPlaceEdit { sentences: 2 }.apply(&mut page, &mut rng, 1);
    let edited = page.render();
    c.bench_function("checkin_10kb_small_edit", |b| {
        b.iter(|| {
            let mut a = Archive::create("bench", &base, "u", "init", Timestamp(0));
            a.checkin(black_box(&edited), "u", "edit", Timestamp(100))
                .unwrap();
            black_box(a)
        });
    });
}

fn bench_checkout(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkout_by_depth");
    let archive = build_archive(100);
    for rev in [100u32, 50, 1] {
        group.bench_with_input(BenchmarkId::from_parameter(rev), &rev, |b, &rev| {
            b.iter(|| black_box(archive.checkout(RevId(rev)).unwrap()));
        });
    }
    group.finish();
}

fn bench_format(c: &mut Criterion) {
    let archive = build_archive(50);
    let text = emit(&archive);
    let mut group = c.benchmark_group("rcs_format_50_revs");
    group.bench_function("emit", |b| {
        b.iter(|| black_box(emit(&archive)));
    });
    group.bench_function("parse", |b| {
        b.iter(|| black_box(parse(&text).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_checkin, bench_checkout, bench_format);
criterion_main!(benches);
