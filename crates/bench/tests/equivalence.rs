//! The PR's byte-identical-output guarantee, exercised end to end: the
//! anchored + hashed fast path must render exactly the merged page the
//! naive full-DP alignment renders, across every workload edit model —
//! not just the edit-structured cases the unit properties generate.

use aide_htmldiff::{html_diff, CompareOptions, Options};
use aide_workloads::edits::EditModel;
use aide_workloads::page::Page;
use aide_workloads::rng::Rng;

fn models() -> Vec<(&'static str, EditModel)> {
    vec![
        ("append", EditModel::AppendNews),
        ("inplace", EditModel::InPlaceEdit { sentences: 3 }),
        ("delete", EditModel::DeleteBlock),
        ("reformat", EditModel::Reformat),
        ("replace", EditModel::FullReplace),
        (
            "links",
            EditModel::LinkChurn {
                added: 2,
                removed: 2,
            },
        ),
    ]
}

#[test]
fn fast_path_matches_naive_across_all_edit_models() {
    let naive = Options {
        compare: CompareOptions {
            force_naive: true,
            ..CompareOptions::default()
        },
        ..Options::default()
    };
    let parallel = Options {
        compare: CompareOptions {
            gap_workers: 4,
            ..CompareOptions::default()
        },
        ..Options::default()
    };
    for (name, model) in models() {
        for seed in 0..8u64 {
            let mut rng = Rng::new(seed * 31 + 7);
            let bytes = 3 * 1024 + (seed as usize % 4) * 1024; // 3–6KB
            let mut page = Page::generate(&mut rng, bytes);
            let old = page.render();
            model.apply(&mut page, &mut rng, seed);
            let new = page.render();

            let f = html_diff(&old, &new, &Options::default());
            let n = html_diff(&old, &new, &naive);
            assert_eq!(
                f.html, n.html,
                "model {name}, seed {seed}: fast path diverged from naive DP"
            );
            assert_eq!(
                format!("{:?}", f.stats),
                format!("{:?}", n.stats),
                "model {name}, seed {seed}: stats diverged"
            );
            let p = html_diff(&old, &new, &parallel);
            assert_eq!(
                f.html, p.html,
                "model {name}, seed {seed}: gap workers changed the output"
            );
        }
    }
}

/// The full-replacement model is the adversarial case for anchoring:
/// almost no token survives, so the alignment degenerates to the
/// rescue-anchor + Hirschberg fallback. Sweep it wider and at the bench
/// target size (8KB) to pin the fallback's byte-identical contract.
#[test]
fn full_replacement_sweep_matches_naive() {
    let naive = Options {
        compare: CompareOptions {
            force_naive: true,
            ..CompareOptions::default()
        },
        ..Options::default()
    };
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed * 101 + 13);
        let bytes = 4 * 1024 + (seed as usize % 5) * 1024; // 4–8KB
        let mut page = Page::generate(&mut rng, bytes);
        let old = page.render();
        EditModel::FullReplace.apply(&mut page, &mut rng, seed);
        let new = page.render();

        let f = html_diff(&old, &new, &Options::default());
        let n = html_diff(&old, &new, &naive);
        assert_eq!(
            f.html, n.html,
            "full replacement, seed {seed}: fast path diverged from naive DP"
        );
        assert_eq!(
            format!("{:?}", f.stats),
            format!("{:?}", n.stats),
            "full replacement, seed {seed}: stats diverged"
        );
    }
}
