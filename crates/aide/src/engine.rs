//! The AIDE engine: users, trackers and the snapshot service, wired.
//!
//! One engine corresponds to one AIDE deployment: a simulated Web, an
//! optional site-wide proxy cache, a snapshot service, and any number of
//! registered users, each with a browser (history + hotlist) and a
//! personal w3newer instance. §6's flow is reproduced end to end,
//! including its integration wart: viewing a page through HtmlDiff does
//! *not* update the browser history, so w3newer keeps reporting the page
//! until the user visits it directly.

use crate::fetcher::{fetch_page, FetchError};
use aide_htmldiff::Options as DiffOptions;
use aide_rcs::archive::{RevId, RevisionMeta};
use aide_rcs::repo::{MemRepository, Repository};
use aide_simweb::browser::Browser;
use aide_simweb::net::Web;
use aide_simweb::proxy::ProxyCache;
use aide_snapshot::service::{DiffOutcome, RememberOutcome, ServiceError, SnapshotService, UserId};
use aide_util::checksum::fnv1a64;
use aide_util::sync::{Mutex, RwLock};
use aide_util::time::{Clock, Duration};
use aide_w3newer::breaker::{BreakerConfig, BreakerStats, CircuitBreaker};
use aide_w3newer::checker::RunReport;
use aide_w3newer::config::ThresholdConfig;
use aide_w3newer::report::{render_report, ReportOptions};
use aide_w3newer::retry::{RetryPolicy, RetrySnapshot};
use aide_w3newer::W3Newer;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Engine-level errors.
#[derive(Debug)]
pub enum EngineError {
    /// No such registered user.
    UnknownUser(String),
    /// Retrieval failed.
    Fetch(FetchError),
    /// The snapshot service failed.
    Service(ServiceError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownUser(u) => write!(f, "unknown user {u}"),
            EngineError::Fetch(e) => write!(f, "{e}"),
            EngineError::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<FetchError> for EngineError {
    fn from(e: FetchError) -> Self {
        EngineError::Fetch(e)
    }
}

impl From<ServiceError> for EngineError {
    fn from(e: ServiceError) -> Self {
        EngineError::Service(e)
    }
}

struct UserState {
    browser: Browser,
    tracker: W3Newer,
}

/// Number of buckets in the user table.
const USER_SHARDS: usize = 16;

/// Registered users in a sharded map. Each user's mutable state sits
/// behind its own mutex, so trackers for different users run fully in
/// parallel; the shard guard only protects the map and is never held
/// across a tracker run.
struct UserTable {
    shards: Vec<RwLock<HashMap<UserId, Arc<Mutex<UserState>>>>>,
}

impl UserTable {
    fn new() -> UserTable {
        UserTable {
            shards: (0..USER_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, id: &UserId) -> &RwLock<HashMap<UserId, Arc<Mutex<UserState>>>> {
        &self.shards[fnv1a64(id.0.as_bytes()) as usize % USER_SHARDS]
    }

    fn insert(&self, id: UserId, state: UserState) {
        self.shard(&id)
            .write()
            .insert(id, Arc::new(Mutex::new(state)));
    }

    fn get(&self, id: &UserId) -> Option<Arc<Mutex<UserState>>> {
        self.shard(id).read().get(id).cloned()
    }

    /// All registered user ids, sorted (shards visited in index order).
    fn ids(&self) -> Vec<UserId> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            ids.extend(shard.read().keys().cloned());
        }
        ids.sort();
        ids
    }
}

/// Aggregate network health across a deployment: the sum of every
/// user's retry accounting plus the shared breaker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetHealth {
    /// Per-user [`RetrySnapshot`]s, summed.
    pub retries: RetrySnapshot,
    /// The shared circuit breaker's counters (zero when robustness is
    /// off).
    pub breaker: BreakerStats,
}

/// One AIDE deployment, generic over its storage backend. The default
/// `MemRepository` keeps the historical in-memory behaviour (tests,
/// simulations); handing `with_repository` an
/// `aide_store::DiskRepository` makes every Remember durable.
pub struct AideEngine<R: Repository = MemRepository> {
    web: Web,
    proxy: Option<ProxyCache>,
    snapshot: Arc<SnapshotService<R>>,
    users: UserTable,
    /// Site-wide robustness settings, applied to every current and
    /// future user when enabled. `None` = the paper's fail-fast
    /// behaviour (the default).
    robustness: Mutex<Option<(RetryPolicy, Arc<CircuitBreaker>)>>,
}

impl AideEngine<MemRepository> {
    /// Creates an engine on `web` with no proxy, storing archives in
    /// memory.
    pub fn new(web: Web) -> AideEngine {
        AideEngine::with_repository(web, MemRepository::new())
    }
}

impl<R: Repository> AideEngine<R> {
    /// Creates an engine on `web` whose snapshot service persists into
    /// `repo` — any [`Repository`] backend.
    pub fn with_repository(web: Web, repo: R) -> AideEngine<R> {
        let clock = web.clock().clone();
        AideEngine {
            web,
            proxy: None,
            snapshot: Arc::new(SnapshotService::new(repo, clock, 256, Duration::hours(8))),
            users: UserTable::new(),
            robustness: Mutex::new(None),
        }
    }

    /// Turns on the robustness layer deployment-wide: every registered
    /// user's tracker (and every user registered afterwards) gets the
    /// retry `policy` and a share of one per-host circuit breaker, so
    /// what one user's tracker learns about a dead host spares everyone
    /// else's. Returns the shared breaker handle for inspection.
    pub fn enable_robustness(
        &self,
        policy: RetryPolicy,
        breaker: BreakerConfig,
    ) -> Arc<CircuitBreaker> {
        let shared = Arc::new(CircuitBreaker::new(breaker));
        *self.robustness.lock() = Some((policy, shared.clone()));
        for id in self.users.ids() {
            if let Some(state) = self.users.get(&id) {
                let mut state = state.lock();
                state.tracker.retry = policy;
                state.tracker.breaker = Some(shared.clone());
            }
        }
        shared
    }

    /// Aggregate retry/breaker accounting across all users. All-zero
    /// unless [`AideEngine::enable_robustness`] was called.
    pub fn net_health(&self) -> NetHealth {
        let mut retries = RetrySnapshot::default();
        for id in self.users.ids() {
            if let Some(state) = self.users.get(&id) {
                retries = retries.plus(&state.lock().tracker.net_stats());
            }
        }
        let breaker = match &*self.robustness.lock() {
            // aide-lint: allow(lock-order-interproc): name-based call
            // resolution aliases CircuitBreaker::stats with the
            // shard-locking Repository::stats; this receiver is the
            // breaker, which takes no lock at all
            Some((_, b)) => b.stats(),
            None => BreakerStats::default(),
        };
        NetHealth { retries, breaker }
    }

    /// Creates a fresh [`aide_obs::MetricsRegistry`], installs it as
    /// the process-wide observability subscriber, and returns it.
    /// From here on every instrumented site in the stack (tracker
    /// decisions, snapshot cache probes, HtmlDiff alignment work,
    /// simulated-network faults) records into the returned registry;
    /// call [`aide_obs::uninstall`] to stop. With no subscriber
    /// installed instrumentation is a single atomic load per site and
    /// all outputs are byte-identical to an uninstrumented build.
    pub fn enable_observability(&self) -> Arc<aide_obs::MetricsRegistry> {
        let registry = Arc::new(aide_obs::MetricsRegistry::new());
        aide_obs::install(registry.clone());
        registry
    }

    /// Publishes the engine's aggregate counters — simulated-web
    /// traffic, snapshot service/lock/diff-cache stats, and
    /// [`NetHealth`] — as gauges on the installed observability
    /// subscriber; no-op without one. Call this right before exporting
    /// (the gauges are export-time mirrors of the bespoke atomic
    /// structs, not hot-path duplicates).
    pub fn publish_obs(&self) {
        if !aide_obs::enabled() {
            return;
        }
        self.web.stats().publish_obs();
        self.snapshot.publish_obs();
        let health = self.net_health();
        health.retries.publish_obs();
        health.breaker.publish_obs();
    }

    /// Adds a site-wide proxy cache with the given TTL (builder style).
    pub fn with_proxy(mut self, ttl: Duration) -> AideEngine<R> {
        self.proxy = Some(ProxyCache::new(self.web.clone(), ttl));
        self
    }

    /// The underlying Web.
    pub fn web(&self) -> &Web {
        &self.web
    }

    /// The shared clock.
    pub fn clock(&self) -> &Clock {
        self.web.clock()
    }

    /// The proxy, if configured.
    pub fn proxy(&self) -> Option<&ProxyCache> {
        self.proxy.as_ref()
    }

    /// The snapshot service.
    pub fn snapshot(&self) -> &SnapshotService<R> {
        &self.snapshot
    }

    /// A shared handle to the snapshot service, for co-resident services
    /// (the server tracker, fixed collections, the CGI layer).
    pub fn snapshot_arc(&self) -> Arc<SnapshotService<R>> {
        self.snapshot.clone()
    }

    /// Registers a user with a w3newer threshold configuration. Returns
    /// their browser handle (shared: cloning keeps the same history).
    pub fn register_user(&self, id: &str, config: ThresholdConfig) -> Browser {
        let browser = match &self.proxy {
            Some(p) => Browser::with_proxy(p.clone()),
            None => Browser::new(self.web.clone()),
        };
        let mut tracker = W3Newer::new(config);
        if let Some((policy, breaker)) = &*self.robustness.lock() {
            tracker.retry = *policy;
            tracker.breaker = Some(breaker.clone());
        }
        self.users.insert(
            UserId::new(id),
            UserState {
                browser: browser.clone(),
                tracker,
            },
        );
        browser
    }

    /// Adjusts a registered user's tracker flags (staleness, robots,
    /// error policy) — the §3.1 "special flags".
    pub fn set_tracker_flags(
        &self,
        id: &str,
        flags: aide_w3newer::checker::Flags,
    ) -> Result<(), EngineError> {
        let state = self
            .users
            .get(&UserId::new(id))
            .ok_or_else(|| EngineError::UnknownUser(id.to_string()))?;
        state.lock().tracker.flags = flags;
        Ok(())
    }

    /// The browser of a registered user.
    pub fn browser(&self, id: &str) -> Result<Browser, EngineError> {
        self.users
            .get(&UserId::new(id))
            .map(|u| u.lock().browser.clone())
            .ok_or_else(|| EngineError::UnknownUser(id.to_string()))
    }

    /// Runs w3newer for `id` over their hotlist. Returns the raw report.
    ///
    /// Holds only this user's lock: trackers of different users run
    /// concurrently (see [`AideEngine::poll_all_users`]).
    pub fn run_tracker(&self, id: &str) -> Result<RunReport, EngineError> {
        let state = self
            .users
            .get(&UserId::new(id))
            .ok_or_else(|| EngineError::UnknownUser(id.to_string()))?;
        let mut state = state.lock();
        let hotlist = state.browser.hotlist();
        let browser = state.browser.clone();
        let start = self.web.clock().now_secs();
        // aide-lint: allow(lock-order-interproc): the run holds only
        // this user's state mutex; the scheduler lock it reaches is an
        // independent leaf subsystem that never calls back into the
        // engine, so no cycle through user state is possible
        let report = state.tracker.run(
            &hotlist,
            &move |url| browser.last_visited(url),
            &self.web,
            self.proxy.as_ref(),
        );
        aide_obs::span("aide.run_tracker", start, self.web.clock().now_secs());
        Ok(report)
    }

    /// Polls every registered user's tracker, driving up to the
    /// machine's parallelism worth of users concurrently, and returns
    /// the reports in user-id order. Each user's run holds only that
    /// user's lock, so the batch scales with cores rather than
    /// serializing on a table-wide mutex — the paper's nightly "w3newer
    /// runs for every subscriber" sweep as one call.
    pub fn poll_all_users(&self) -> Vec<(UserId, RunReport)> {
        let ids = self.users.ids();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 8)
            .min(ids.len().max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunReport>>> = ids.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(id) = ids.get(i) else { break };
                    if let Ok(report) = self.run_tracker(&id.0) {
                        *slots[i].lock() = Some(report);
                    }
                });
            }
        });
        ids.into_iter()
            .zip(slots)
            .filter_map(|(id, slot)| slot.into_inner().map(|r| (id, r)))
            .collect()
    }

    /// Runs w3newer and renders the Figure 1 HTML report.
    pub fn tracker_report_html(&self, id: &str) -> Result<String, EngineError> {
        let report = self.run_tracker(id)?;
        Ok(render_report(&report, &ReportOptions::default()))
    }

    /// Remember: fetch the page and check it in for `id`.
    pub fn remember(&self, id: &str, url: &str) -> Result<RememberOutcome, EngineError> {
        let page = fetch_page(&self.web, self.proxy.as_ref(), url)?;
        Ok(self.snapshot.remember(&UserId::new(id), url, &page.body)?)
    }

    /// Diff: fetch the current page and compare with the user's last
    /// remembered version. Note this does *not* touch the browser
    /// history (the §6 wart).
    pub fn diff(
        &self,
        id: &str,
        url: &str,
        opts: &DiffOptions,
    ) -> Result<DiffOutcome, EngineError> {
        let page = fetch_page(&self.web, self.proxy.as_ref(), url)?;
        Ok(self
            .snapshot
            .diff_since_last(&UserId::new(id), url, &page.body, opts)?)
    }

    /// Diff between two stored revisions.
    pub fn diff_versions(
        &self,
        url: &str,
        from: RevId,
        to: RevId,
        opts: &DiffOptions,
    ) -> Result<DiffOutcome, EngineError> {
        Ok(self.snapshot.diff_versions(url, from, to, opts)?)
    }

    /// History of a URL with this user's seen flags.
    pub fn history(&self, id: &str, url: &str) -> Result<Vec<(RevisionMeta, bool)>, EngineError> {
        Ok(self.snapshot.history(&UserId::new(id), url)?)
    }

    /// View an archived revision (BASE-rewritten).
    pub fn view(&self, url: &str, rev: RevId) -> Result<String, EngineError> {
        Ok(self.snapshot.view(url, rev)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::Timestamp;
    use aide_w3newer::checker::UrlStatus;

    fn engine() -> AideEngine {
        let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 9, 0, 0));
        let web = Web::new(clock);
        web.set_page(
            "http://www.usenix.org/",
            "<HTML><P>Original home page text here.</HTML>",
            Timestamp::from_ymd_hms(1995, 9, 20, 0, 0, 0),
        )
        .unwrap();
        AideEngine::new(web)
    }

    #[test]
    fn full_remember_diff_cycle() {
        let e = engine();
        let b = e.register_user("fred@att.com", ThresholdConfig::default());
        b.add_bookmark("USENIX", "http://www.usenix.org/");

        // Remember the original.
        let out = e
            .remember("fred@att.com", "http://www.usenix.org/")
            .unwrap();
        assert!(out.created_archive);

        // The page changes.
        e.clock().advance(Duration::days(3));
        e.web()
            .touch_page(
                "http://www.usenix.org/",
                "<HTML><P>Original home page text here. Conference registration open!</HTML>",
                e.clock().now(),
            )
            .unwrap();

        // Diff shows the addition.
        let d = e
            .diff(
                "fred@att.com",
                "http://www.usenix.org/",
                &DiffOptions::default(),
            )
            .unwrap();
        assert_eq!(d.from, RevId(1));
        assert_eq!(d.to, RevId(2));
        assert!(d.html.contains("Conference registration open!"));

        // History shows both versions, both now seen by fred.
        let h = e.history("fred@att.com", "http://www.usenix.org/").unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.iter().all(|(_, seen)| *seen));
    }

    #[test]
    fn tracker_reports_change_after_modification() {
        let e = engine();
        let b = e.register_user("fred@att.com", ThresholdConfig::default());
        b.add_bookmark("USENIX", "http://www.usenix.org/");
        b.visit("http://www.usenix.org/").unwrap();

        // Nothing changed yet.
        let r = e.run_tracker("fred@att.com").unwrap();
        assert!(matches!(r.entries[0].status, UrlStatus::Unchanged { .. }));

        // The page changes; the tracker notices.
        e.clock().advance(Duration::days(10));
        e.web()
            .touch_page(
                "http://www.usenix.org/",
                "<HTML><P>new</HTML>",
                e.clock().now(),
            )
            .unwrap();
        let r = e.run_tracker("fred@att.com").unwrap();
        assert!(r.entries[0].status.is_changed());
        let html = e.tracker_report_html("fred@att.com").unwrap();
        assert!(html.contains("Changed pages"));
        assert!(html.contains("op=diff"));
    }

    #[test]
    fn htmldiff_view_does_not_update_history() {
        // The §6 wart, reproduced: after viewing a Diff, w3newer still
        // reports the page as changed, because the browser history only
        // records direct visits.
        let e = engine();
        let b = e.register_user("fred@att.com", ThresholdConfig::default());
        b.add_bookmark("USENIX", "http://www.usenix.org/");
        b.visit("http://www.usenix.org/").unwrap();
        e.remember("fred@att.com", "http://www.usenix.org/")
            .unwrap();

        e.clock().advance(Duration::days(2));
        e.web()
            .touch_page(
                "http://www.usenix.org/",
                "<HTML><P>changed</HTML>",
                e.clock().now(),
            )
            .unwrap();

        e.diff(
            "fred@att.com",
            "http://www.usenix.org/",
            &DiffOptions::default(),
        )
        .unwrap();
        let r = e.run_tracker("fred@att.com").unwrap();
        assert!(
            r.entries[0].status.is_changed(),
            "still reported changed after Diff view: {:?}",
            r.entries[0].status
        );

        // A direct visit clears it.
        b.visit("http://www.usenix.org/").unwrap();
        let r = e.run_tracker("fred@att.com").unwrap();
        assert!(matches!(r.entries[0].status, UrlStatus::Unchanged { .. }));
    }

    #[test]
    fn unknown_user_errors() {
        let e = engine();
        assert!(matches!(
            e.run_tracker("ghost"),
            Err(EngineError::UnknownUser(_))
        ));
        assert!(e.browser("ghost").is_err());
    }

    #[test]
    fn fetch_errors_surface() {
        let e = engine();
        e.register_user("u@x", ThresholdConfig::default());
        assert!(matches!(
            e.remember("u@x", "http://nonexistent-host/"),
            Err(EngineError::Fetch(_))
        ));
    }

    #[test]
    fn proxy_backed_engine_shares_cache_with_tracker() {
        let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 9, 0, 0));
        let web = Web::new(clock);
        web.set_page(
            "http://h/p",
            "<HTML>x</HTML>",
            Timestamp::from_ymd_hms(1995, 9, 30, 0, 0, 0),
        )
        .unwrap();
        let e = AideEngine::new(web).with_proxy(Duration::days(3));
        let b = e.register_user("u@x", ThresholdConfig::table1());
        b.add_bookmark("P", "http://h/p");
        // The user browses the page through the proxy...
        b.visit("http://h/p").unwrap();
        e.web().reset_stats();
        // ...so the tracker can answer from the proxy without origin load.
        let r = e.run_tracker("u@x").unwrap();
        assert!(matches!(
            r.entries[0].status,
            UrlStatus::Unchanged { .. } | UrlStatus::NotChecked { .. }
        ));
        assert_eq!(e.web().server_stats("h").unwrap().total(), 0);
    }

    #[test]
    fn tracker_flags_adjustable_per_user() {
        let e = engine();
        e.register_user("u@x", ThresholdConfig::default());
        // Distrust the cache entirely: every run re-polls.
        e.set_tracker_flags(
            "u@x",
            aide_w3newer::checker::Flags {
                staleness: Duration::ZERO,
                ..aide_w3newer::checker::Flags::default()
            },
        )
        .unwrap();
        let b = e.browser("u@x").unwrap();
        b.add_bookmark("U", "http://www.usenix.org/");
        // Visit so the cached verdict is "unchanged" — the staleness flag
        // governs how long that verdict is trusted ("known changed" never
        // needs re-polling).
        b.visit("http://www.usenix.org/").unwrap();
        e.run_tracker("u@x").unwrap();
        let first = e.web().stats().requests;
        e.run_tracker("u@x").unwrap();
        assert!(
            e.web().stats().requests > first,
            "staleness 0 forces re-polling"
        );
        assert!(e
            .set_tracker_flags("ghost", aide_w3newer::checker::Flags::default())
            .is_err());
    }

    #[test]
    fn poll_all_users_matches_individual_runs() {
        let e = engine();
        // Several users with overlapping and distinct hotlists, plus a
        // few extra pages so the trackers do real work.
        for h in 0..4 {
            e.web()
                .set_page(
                    &format!("http://site{h}.example.com/"),
                    &format!("<HTML><P>site {h}</HTML>"),
                    Timestamp::from_ymd_hms(1995, 9, 25, 0, 0, 0),
                )
                .unwrap();
        }
        for u in 0..6 {
            let id = format!("user{u}@example.com");
            let b = e.register_user(&id, ThresholdConfig::default());
            b.add_bookmark("USENIX", "http://www.usenix.org/");
            b.add_bookmark("site", &format!("http://site{}.example.com/", u % 4));
        }

        let batch = e.poll_all_users();
        assert_eq!(batch.len(), 6);
        let mut ids: Vec<&str> = batch.iter().map(|(id, _)| id.0.as_str()).collect();
        let sorted = {
            let mut s = ids.clone();
            s.sort();
            s
        };
        assert_eq!(ids, sorted, "reports come back in user-id order");
        ids.dedup();
        assert_eq!(ids.len(), 6);
        for (_, report) in &batch {
            assert_eq!(report.entries.len(), 2);
            // Never-visited bookmarks all report as changed-to-the-user.
            assert_eq!(report.changed_count(), 2);
        }
    }

    #[test]
    fn robustness_applies_to_existing_and_future_users() {
        use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
        let e = engine();
        let before = e.register_user("early@x", ThresholdConfig::default());
        before.add_bookmark("U", "http://www.usenix.org/");
        let breaker = e.enable_robustness(RetryPolicy::standard(42), BreakerConfig::default());
        let after = e.register_user("late@x", ThresholdConfig::default());
        after.add_bookmark("U", "http://www.usenix.org/");

        // A short full outage: the retry backoff carries both trackers
        // past it.
        let now = e.clock().now();
        e.web().install_fault_plan(FaultPlan::new(5).for_host(
            "www.usenix.org",
            FaultEpisode::rate(1.0, FaultKind::Timeout).between(now, now + Duration::seconds(4)),
        ));
        let reports = e.poll_all_users();
        assert_eq!(reports.len(), 2);
        for (id, r) in &reports {
            assert!(
                r.entries[0].status.is_changed(),
                "{}: recovered through retries, got {:?}",
                id.0,
                r.entries[0].status
            );
        }
        let health = e.net_health();
        assert!(health.retries.retries > 0, "retries aggregated: {health:?}");
        assert_eq!(health.retries.exhausted, 0);
        assert_eq!(breaker.stats().opened, 0, "no circuit tripped");
    }

    #[test]
    fn net_health_zero_without_robustness() {
        let e = engine();
        let b = e.register_user("u@x", ThresholdConfig::default());
        b.add_bookmark("U", "http://www.usenix.org/");
        e.run_tracker("u@x").unwrap();
        assert_eq!(e.net_health(), NetHealth::default());
    }

    #[test]
    fn view_returns_archived_version() {
        let e = engine();
        e.register_user("u@x", ThresholdConfig::default());
        e.remember("u@x", "http://www.usenix.org/").unwrap();
        let body = e.view("http://www.usenix.org/", RevId(1)).unwrap();
        assert!(body.contains("Original home page text"));
        assert!(
            body.contains("BASE HREF"),
            "archived copies carry BASE: {body}"
        );
    }
}
