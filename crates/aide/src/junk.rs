//! Semantic junk-change detection (§3.1's stated future work).
//!
//! "Automatic detection of modifications based on information such as
//! modification date and checksum can lead to the generation of 'junk
//! mail' as 'noisy' modifications trigger change notifications. For
//! instance, pages that report the number of times they have been
//! accessed, or embed the current time, will look different every time
//! they are retrieved... Addressing the problem of 'noisy' modifications
//! will require heuristics to examine the differences at a semantic
//! level."
//!
//! This module implements those heuristics on top of HtmlDiff: compare
//! the two versions, collect every word that actually changed, and
//! classify the change as **junk** when all of the changed words are
//! volatile tokens — numbers (hit counters), dates, and clock times.

use aide_diffcore::lcs::weighted_lcs;
use aide_htmldiff::compare::{compare_tokens, CompareOptions};
use aide_htmldiff::token::{DiffToken, Inline};
use aide_htmldiff::tokenize;

/// The verdict on one change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JunkReport {
    /// Words present in exactly one version (the changed material).
    pub changed_words: Vec<String>,
    /// The subset judged volatile (numbers/dates/times).
    pub noise_words: Vec<String>,
    /// True if the change is noise only — a tracker should not notify.
    pub junk: bool,
    /// True if the two documents are identical (vacuously not junk —
    /// there is nothing to report either way).
    pub identical: bool,
}

/// Month and weekday names, the vocabulary of embedded dates.
const DATE_WORDS: &[&str] = &[
    "jan",
    "feb",
    "mar",
    "apr",
    "may",
    "jun",
    "jul",
    "aug",
    "sep",
    "oct",
    "nov",
    "dec",
    "january",
    "february",
    "march",
    "april",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
    "mon",
    "tue",
    "wed",
    "thu",
    "fri",
    "sat",
    "sun",
    "monday",
    "tuesday",
    "wednesday",
    "thursday",
    "friday",
    "saturday",
    "sunday",
    "gmt",
    "est",
    "edt",
    "pst",
    "pdt",
    "am",
    "pm",
    "utc",
];

/// Is `word` a volatile token: a number, a date fragment, or a clock
/// time?
///
/// # Examples
///
/// ```
/// use aide::junk::is_noise_word;
///
/// assert!(is_noise_word("12345"));
/// assert!(is_noise_word("08:49:37"));
/// assert!(is_noise_word("Nov"));
/// assert!(is_noise_word("1995."));
/// assert!(!is_noise_word("conference"));
/// ```
pub fn is_noise_word(word: &str) -> bool {
    let core =
        word.trim_matches(|c: char| c.is_ascii_punctuation() && c != ':' && c != '/' && c != '-');
    if core.is_empty() {
        return true; // pure punctuation is not content
    }
    // Numeric (counters, years, sizes): digits with optional separators.
    if core
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, ',' | '.' | ':' | '/' | '-'))
        && core.chars().any(|c| c.is_ascii_digit())
    {
        return true;
    }
    // Ordinals: 1st, 22nd, 3rd, 15th.
    if core.len() > 2 {
        let (head, tail) = core.split_at(core.len() - 2);
        if matches!(
            tail.to_ascii_lowercase().as_str(),
            "st" | "nd" | "rd" | "th"
        ) && head.chars().all(|c| c.is_ascii_digit())
        {
            return true;
        }
    }
    DATE_WORDS.contains(&core.to_ascii_lowercase().as_str())
}

/// Classifies the change between two HTML documents.
pub fn classify(old_html: &str, new_html: &str) -> JunkReport {
    let old = tokenize(old_html);
    let new = tokenize(new_html);
    let al = compare_tokens(&old, &new, &CompareOptions::default());

    let mut changed_words: Vec<String> = Vec::new();

    // Words inside approximately-matched pairs that differ.
    for (k, &(i, j)) in al.alignment.pairs.iter().enumerate() {
        if al.identical[k] {
            continue;
        }
        if let (DiffToken::Sentence(a), DiffToken::Sentence(b)) = (&old[i], &new[j]) {
            let pairs = weighted_lcs(a.items.len(), b.items.len(), &|x, y| {
                u64::from(a.items[x].matches(&b.items[y]))
            });
            let matched_a: Vec<usize> = pairs.iter().map(|&(x, _)| x).collect();
            let matched_b: Vec<usize> = pairs.iter().map(|&(_, y)| y).collect();
            for (idx, item) in a.items.iter().enumerate() {
                if let Inline::Word(w) = item {
                    if !matched_a.contains(&idx) {
                        changed_words.push(w.clone());
                    }
                }
            }
            for (idx, item) in b.items.iter().enumerate() {
                if let Inline::Word(w) = item {
                    if !matched_b.contains(&idx) {
                        changed_words.push(w.clone());
                    }
                }
            }
        }
    }
    // Whole sentences on one side only.
    let in_pairs_old: Vec<usize> = al.alignment.pairs.iter().map(|&(i, _)| i).collect();
    let in_pairs_new: Vec<usize> = al.alignment.pairs.iter().map(|&(_, j)| j).collect();
    for (i, t) in old.iter().enumerate() {
        if in_pairs_old.contains(&i) {
            continue;
        }
        if let DiffToken::Sentence(s) = t {
            for item in &s.items {
                if let Inline::Word(w) = item {
                    changed_words.push(w.clone());
                }
            }
        }
    }
    for (j, t) in new.iter().enumerate() {
        if in_pairs_new.contains(&j) {
            continue;
        }
        if let DiffToken::Sentence(s) = t {
            for item in &s.items {
                if let Inline::Word(w) = item {
                    changed_words.push(w.clone());
                }
            }
        }
    }

    let identical =
        changed_words.is_empty() && old.len() == new.len() && al.alignment.pairs.len() == old.len();
    let noise_words: Vec<String> = changed_words
        .iter()
        .filter(|w| is_noise_word(w))
        .cloned()
        .collect();
    let junk = !changed_words.is_empty() && noise_words.len() == changed_words.len();
    JunkReport {
        changed_words,
        noise_words,
        junk,
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_counter_change_is_junk() {
        let old = "<HTML><P>You are visitor number 10461 to this page.</HTML>";
        let new = "<HTML><P>You are visitor number 10462 to this page.</HTML>";
        let r = classify(old, new);
        assert!(r.junk, "{r:?}");
        assert_eq!(r.changed_words, vec!["10461", "10462"]);
    }

    #[test]
    fn embedded_clock_is_junk() {
        let old = "<HTML><P>Generated Fri, 29 Sep 1995 12:00:00 GMT by the server.</HTML>";
        let new = "<HTML><P>Generated Sat, 30 Sep 1995 08:49:37 GMT by the server.</HTML>";
        let r = classify(old, new);
        assert!(r.junk, "{r:?}");
    }

    #[test]
    fn real_edit_is_not_junk() {
        let old = "<HTML><P>The deadline is October 10. Submit papers by mail.</HTML>";
        let new = "<HTML><P>The deadline is October 10. Submit papers by email instead!</HTML>";
        let r = classify(old, new);
        assert!(!r.junk, "{r:?}");
        assert!(r.changed_words.iter().any(|w| w.contains("email")));
    }

    #[test]
    fn mixed_change_is_not_junk() {
        // A counter changed AND a sentence was added: not junk.
        let old = "<HTML><P>Hits: 500.</HTML>";
        let new = "<HTML><P>Hits: 501.</P><P>We moved to a new building!</HTML>";
        let r = classify(old, new);
        assert!(!r.junk, "{r:?}");
    }

    #[test]
    fn identical_documents() {
        let r = classify("<P>same.", "<P>same.");
        assert!(r.identical);
        assert!(!r.junk);
        assert!(r.changed_words.is_empty());
    }

    #[test]
    fn date_stamp_only_update_is_junk() {
        let old = "<HTML><P>Content body here.</P><P>Last updated September 29, 1995.</HTML>";
        let new = "<HTML><P>Content body here.</P><P>Last updated November 3, 1995.</HTML>";
        let r = classify(old, new);
        assert!(r.junk, "{r:?}");
    }

    #[test]
    fn noise_word_cases() {
        for w in [
            "0",
            "1,234",
            "22:15",
            "1995/09/29",
            "3rd",
            "21st",
            "Nov",
            "GMT",
            "...",
        ] {
            assert!(is_noise_word(w), "{w} should be noise");
        }
        for w in ["paper", "O'Reilly", "x86", "3D", "IPv6"] {
            assert!(!is_noise_word(w), "{w} should be content");
        }
    }

    #[test]
    fn full_rewrite_is_not_junk() {
        let old = "<HTML><P>alpha beta gamma delta.</HTML>";
        let new = "<HTML><P>epsilon zeta eta theta!</HTML>";
        let r = classify(old, new);
        assert!(!r.junk);
        assert!(r.changed_words.len() >= 8);
    }
}
