//! AIDE — the AT&T Internet Difference Engine.
//!
//! The integration crate (§6 of the paper): w3newer finds out *that*
//! pages changed, snapshot remembers *what* they looked like, and
//! HtmlDiff shows *how* they differ. "Each page that is reported as
//! 'new' can immediately be passed to HtmlDiff, and any page in the list
//! can be 'remembered' for future use."
//!
//! - [`fetcher`]: page retrieval (direct or through the proxy), with
//!   redirect following — the network half the snapshot service
//!   deliberately does not contain.
//! - [`engine`]: the [`AideEngine`] — users, their hotlists and tracker
//!   state, and the Remember / Diff / History operations end to end.
//! - [`cgi`]: the CGI façade — query-string parsing and dispatch for the
//!   snapshot form interface and the §8.1 `rlog` / `co` / `rcsdiff`
//!   scripts.
//! - [`fixed`]: fixed-page collections (§8.2) — automatic archival on
//!   change plus a community "What's New" page.
//! - [`tracking`]: server-side URL tracking (§8.3) — one check per URL
//!   regardless of how many users registered it, plus recursive tracking
//!   of linked pages for hub pages.
//!
//! The paper's stated-but-unimplemented extensions are also built here:
//!
//! - [`junk`]: semantic noisy-change detection (§3.1 future work) —
//!   suppress notifications whose only changes are counters and clocks.
//! - [`entities`]: web-aware diffing via referenced-entity checksums
//!   (§5.3's "cheaper alternative").
//! - [`forms`]: tracking POST services by storing the filled-out form
//!   input (§8.4's sketched design).
//! - [`recursive`]: recursive HtmlDiff over a hub page and its links
//!   (§5.3/§8.3's "HtmlDiff could in turn be invoked recursively").

pub mod cgi;
pub mod engine;
pub mod entities;
pub mod fetcher;
pub mod fixed;
pub mod forms;
pub mod junk;
pub mod recursive;
pub mod tracking;

/// The observability layer, re-exported so engine users can install,
/// inspect, and export metric registries without naming the crate.
pub use aide_obs as obs;
pub use engine::{AideEngine, EngineError, NetHealth};
pub use entities::EntityChecker;
pub use fetcher::{fetch_page, FetchError, FetchedPage};
pub use fixed::FixedCollection;
pub use forms::FormRegistry;
pub use junk::JunkReport;
pub use recursive::RecursiveDiffer;
pub use tracking::ServerTracker;
