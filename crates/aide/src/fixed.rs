//! Fixed-page collections (§8.2).
//!
//! "AIDE can provide a community of users with specialized 'What's New'
//! pages that report when any of a fixed set of URLs has been changed.
//! Rather than having users specify when to archive a new version, each
//! page is automatically archived as soon as a change is detected. Then
//! users can easily see the most recent changes to a page using HtmlDiff,
//! and they can also use the History feature to see earlier versions
//! they may have missed."

use crate::fetcher::fetch_page;
use aide_htmlkit::entity::encode_entities;
use aide_rcs::archive::RevId;
use aide_rcs::repo::{MemRepository, Repository};
use aide_simweb::net::Web;
use aide_snapshot::service::{ServiceError, SnapshotService, UserId};
use aide_util::sync::Mutex;
use aide_util::time::Timestamp;
use std::sync::Arc;

/// One entry on the community "What's New" page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionEntry {
    /// The URL.
    pub url: String,
    /// Display title.
    pub title: String,
    /// Head revision, if archived yet.
    pub head: Option<RevId>,
    /// When the head revision was archived.
    pub last_change: Option<Timestamp>,
    /// Total revisions archived.
    pub revisions: usize,
}

/// A named, fixed set of automatically archived URLs, generic over
/// the snapshot service's storage backend.
pub struct FixedCollection<R: Repository = MemRepository> {
    /// The collection's display name.
    pub name: String,
    web: Web,
    snapshot: Arc<SnapshotService<R>>,
    members: Mutex<Vec<(String, String)>>, // (url, title)
    archivist: UserId,
}

impl<R: Repository> FixedCollection<R> {
    /// Creates a collection writing into `snapshot`.
    pub fn new(name: &str, web: Web, snapshot: Arc<SnapshotService<R>>) -> FixedCollection<R> {
        FixedCollection {
            name: name.to_string(),
            web,
            snapshot,
            members: Mutex::new(Vec::new()),
            archivist: UserId::new(&format!("aide-collection-{name}@snapshot")),
        }
    }

    /// Adds a member page.
    pub fn add(&self, title: &str, url: &str) {
        let mut m = self.members.lock();
        if !m.iter().any(|(u, _)| u == url) {
            m.push((url.to_string(), title.to_string()));
        }
    }

    /// Number of member pages.
    pub fn len(&self) -> usize {
        self.members.lock().len()
    }

    /// True if no members.
    pub fn is_empty(&self) -> bool {
        self.members.lock().is_empty()
    }

    /// Polls every member, archiving any change. Returns how many new
    /// revisions were stored.
    pub fn poll(&self) -> usize {
        let members = self.members.lock().clone();
        let mut stored = 0;
        for (url, _) in &members {
            if let Ok(page) = fetch_page(&self.web, None, url) {
                if let Ok(out) = self.snapshot.remember(&self.archivist, url, &page.body) {
                    if out.stored_new_revision {
                        stored += 1;
                    }
                }
            }
        }
        stored
    }

    /// Collection status, most recently changed first.
    pub fn entries(&self) -> Result<Vec<CollectionEntry>, ServiceError> {
        let members = self.members.lock().clone();
        let mut out = Vec::new();
        for (url, title) in members {
            let head = self.snapshot.head(&url)?;
            let revisions = match self.snapshot.history(&self.archivist, &url) {
                Ok(h) => h.len(),
                Err(ServiceError::NeverArchived(_)) => 0,
                Err(e) => return Err(e),
            };
            out.push(CollectionEntry {
                url,
                title,
                head: head.map(|(r, _)| r),
                last_change: head.map(|(_, t)| t),
                revisions,
            });
        }
        out.sort_by_key(|e| std::cmp::Reverse(e.last_change));
        Ok(out)
    }

    /// Renders the community "What's New" page with Diff and History
    /// links for every member.
    pub fn render_whats_new(&self, cgi_base: &str) -> Result<String, ServiceError> {
        let entries = self.entries()?;
        let mut out = format!(
            "<HTML><HEAD><TITLE>What's New: {name}</TITLE></HEAD><BODY>\n\
             <H1>What's New in {name}</H1>\n<UL>\n",
            name = encode_entities(&self.name)
        );
        for e in entries {
            let when = e
                .last_change
                .map(|t| t.to_http_date())
                .unwrap_or_else(|| "never archived".to_string());
            let diff_link = match e.head {
                Some(head) if head.0 > 1 => format!(
                    " [<A HREF=\"{cgi_base}?op=rcsdiff&url={}&from=1.{}&to={}\">Diff</A>]",
                    e.url,
                    head.0 - 1,
                    head
                ),
                _ => String::new(),
            };
            out.push_str(&format!(
                "<LI><A HREF=\"{}\">{}</A> &#183; {} &#183; {} version{}{}\
                 [<A HREF=\"{cgi_base}?op=rlog&url={}\">History</A>]\n",
                e.url,
                encode_entities(&e.title),
                when,
                e.revisions,
                if e.revisions == 1 { " " } else { "s " },
                diff_link,
                e.url,
            ));
        }
        out.push_str("</UL>\n</BODY></HTML>\n");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::{Clock, Duration};

    fn setup() -> (Web, FixedCollection) {
        let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 11, 1, 0, 0, 0));
        let web = Web::new(clock.clone());
        web.set_page(
            "http://docs/guide.html",
            "<HTML>guide v1</HTML>",
            Timestamp(100),
        )
        .unwrap();
        web.set_page(
            "http://docs/faq.html",
            "<HTML>faq v1</HTML>",
            Timestamp(100),
        )
        .unwrap();
        let snapshot = Arc::new(SnapshotService::new(
            MemRepository::new(),
            clock,
            64,
            Duration::hours(4),
        ));
        let c = FixedCollection::new("Project Docs", web.clone(), snapshot);
        c.add("The Guide", "http://docs/guide.html");
        c.add("The FAQ", "http://docs/faq.html");
        (web, c)
    }

    #[test]
    fn first_poll_archives_everything() {
        let (_, c) = setup();
        assert_eq!(c.poll(), 2);
        let entries = c.entries().unwrap();
        assert!(entries.iter().all(|e| e.head == Some(RevId(1))));
    }

    #[test]
    fn changes_archived_automatically() {
        let (web, c) = setup();
        c.poll();
        web.clock().advance(Duration::days(1));
        web.touch_page(
            "http://docs/guide.html",
            "<HTML>guide v2</HTML>",
            web.clock().now(),
        )
        .unwrap();
        assert_eq!(c.poll(), 1, "only the changed page re-archived");
        let entries = c.entries().unwrap();
        let guide = entries.iter().find(|e| e.url.contains("guide")).unwrap();
        assert_eq!(guide.head, Some(RevId(2)));
        assert_eq!(guide.revisions, 2);
    }

    #[test]
    fn entries_sorted_most_recent_first() {
        let (web, c) = setup();
        c.poll();
        web.clock().advance(Duration::days(2));
        web.touch_page(
            "http://docs/faq.html",
            "<HTML>faq v2</HTML>",
            web.clock().now(),
        )
        .unwrap();
        c.poll();
        let entries = c.entries().unwrap();
        assert!(entries[0].url.contains("faq"), "freshest change first");
    }

    #[test]
    fn whats_new_page_links() {
        let (web, c) = setup();
        c.poll();
        web.clock().advance(Duration::days(1));
        web.touch_page(
            "http://docs/guide.html",
            "<HTML>guide v2</HTML>",
            web.clock().now(),
        )
        .unwrap();
        c.poll();
        let html = c.render_whats_new("/cgi-bin/snapshot").unwrap();
        assert!(html.contains("What's New in Project Docs"));
        assert!(html.contains("op=rcsdiff&url=http://docs/guide.html&from=1.1&to=1.2"));
        assert!(html.contains("op=rlog"));
        assert!(html.contains("The FAQ"));
    }

    #[test]
    fn duplicate_add_ignored() {
        let (_, c) = setup();
        c.add("Dup", "http://docs/guide.html");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn unreachable_members_skipped() {
        let (_, c) = setup();
        c.add("Ghost", "http://gone-host/x.html");
        assert_eq!(c.poll(), 2, "reachable members still archived");
        let entries = c.entries().unwrap();
        let ghost = entries
            .iter()
            .find(|e| e.url.contains("gone-host"))
            .unwrap();
        assert_eq!(ghost.head, None);
        assert_eq!(ghost.revisions, 0);
    }
}
