//! Web-aware diffing: referenced-entity change detection (§5.3's stated
//! extension).
//!
//! "HtmlDiff is neither 'version-aware' nor 'web-aware'... if the
//! contents of an image file are changed but the URL of the file does
//! not, then the URL in the page will not be flagged as changed. To
//! support such comparison would require some sort of versioning of
//! referenced entities... Full versioning of all entities would
//! dramatically increase storage requirements. A cheaper alternative
//! would be to store a checksum of each entity and use the checksums to
//! determine if something has changed."
//!
//! This module implements the cheap alternative: an [`EntityChecker`]
//! stores one checksum per `(page, entity)` pair and reports entities
//! whose bytes changed behind an unchanged URL.

use aide_htmlkit::lexer::lex;
use aide_htmlkit::links::{extract_links, LinkKind};
use aide_htmlkit::url::Url;
use aide_simweb::http::Request;
use aide_simweb::net::Web;
use aide_util::checksum::PageChecksum;
use aide_util::sync::Mutex;
use std::collections::BTreeMap;

/// What happened to one referenced entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntityStatus {
    /// First time this entity is seen for this page (baseline recorded).
    Baseline,
    /// Bytes unchanged since last check.
    Unchanged,
    /// Bytes changed although the URL did not — invisible to HtmlDiff.
    ContentChanged,
    /// The entity could not be fetched.
    Unreachable,
}

/// Report for one entity of one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityReport {
    /// The entity's absolute URL.
    pub url: String,
    /// What kind of reference points at it.
    pub kind: LinkKind,
    /// The outcome.
    pub status: EntityStatus,
}

/// Checksums of referenced entities, per containing page.
pub struct EntityChecker {
    web: Web,
    /// `(page_url, entity_url)` → checksum.
    checksums: Mutex<BTreeMap<(String, String), PageChecksum>>,
    /// Also follow `<A HREF>` targets, not just images. Off by default:
    /// images are the paper's example; following every link is a
    /// crawler's worth of traffic.
    pub include_anchors: bool,
}

impl EntityChecker {
    /// Creates a checker against `web`.
    pub fn new(web: Web) -> EntityChecker {
        EntityChecker {
            web,
            checksums: Mutex::new(BTreeMap::new()),
            include_anchors: false,
        }
    }

    /// Checks every referenced entity of `page_html` (which lives at
    /// `page_url`), updating stored checksums and reporting each
    /// entity's status.
    pub fn check_entities(&self, page_url: &str, page_html: &str) -> Vec<EntityReport> {
        let base = Url::parse(page_url).ok();
        let tokens = lex(page_html);
        let links = extract_links(&tokens, base.as_ref());
        let mut out = Vec::new();
        let mut seen: Vec<String> = Vec::new();
        for link in links {
            let wanted = match link.kind {
                LinkKind::Image => true,
                LinkKind::Anchor => self.include_anchors,
                _ => false,
            };
            if !wanted {
                continue;
            }
            let Some(resolved) = link.resolved else {
                continue;
            };
            let entity_url = resolved.without_fragment().to_string();
            if seen.contains(&entity_url) {
                continue;
            }
            seen.push(entity_url.clone());
            let status = match self.web.request(&Request::get(&entity_url)) {
                Ok(resp) if resp.status.is_success() => {
                    let checksum = PageChecksum::of(resp.body.as_bytes());
                    let key = (page_url.to_string(), entity_url.clone());
                    let mut map = self.checksums.lock();
                    match map.insert(key, checksum) {
                        None => EntityStatus::Baseline,
                        Some(prev) if prev == checksum => EntityStatus::Unchanged,
                        Some(_) => EntityStatus::ContentChanged,
                    }
                }
                _ => EntityStatus::Unreachable,
            };
            out.push(EntityReport {
                url: entity_url,
                kind: link.kind,
                status,
            });
        }
        out
    }

    /// Entities currently tracked for `page_url`.
    pub fn tracked(&self, page_url: &str) -> Vec<String> {
        self.checksums
            .lock()
            .keys()
            .filter(|(p, _)| p == page_url)
            .map(|(_, e)| e.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::{Clock, Timestamp};

    const PAGE: &str = r#"<HTML><P>logo: <IMG SRC="/art/logo.gif">
        photo: <IMG SRC="/art/photo.gif">
        <A HREF="/next.html">next page</A></HTML>"#;

    fn setup() -> (Web, EntityChecker) {
        let web = Web::new(Clock::starting_at(Timestamp(1_000)));
        web.set_page(
            "http://h/art/logo.gif",
            "GIF89a-logo-bytes-v1",
            Timestamp(10),
        )
        .unwrap();
        web.set_page(
            "http://h/art/photo.gif",
            "GIF89a-photo-bytes-v1",
            Timestamp(10),
        )
        .unwrap();
        web.set_page("http://h/next.html", "<HTML>next</HTML>", Timestamp(10))
            .unwrap();
        let checker = EntityChecker::new(web.clone());
        (web, checker)
    }

    #[test]
    fn first_check_is_baseline() {
        let (_, checker) = setup();
        let reports = checker.check_entities("http://h/page.html", PAGE);
        assert_eq!(reports.len(), 2, "images only by default");
        assert!(reports.iter().all(|r| r.status == EntityStatus::Baseline));
        assert_eq!(checker.tracked("http://h/page.html").len(), 2);
    }

    #[test]
    fn changed_image_bytes_detected_behind_same_url() {
        let (web, checker) = setup();
        checker.check_entities("http://h/page.html", PAGE);
        // The logo is replaced; its URL stays identical.
        web.touch_page(
            "http://h/art/logo.gif",
            "GIF89a-logo-bytes-v2",
            Timestamp(2_000),
        )
        .unwrap();
        let reports = checker.check_entities("http://h/page.html", PAGE);
        let logo = reports.iter().find(|r| r.url.contains("logo")).unwrap();
        let photo = reports.iter().find(|r| r.url.contains("photo")).unwrap();
        assert_eq!(logo.status, EntityStatus::ContentChanged);
        assert_eq!(photo.status, EntityStatus::Unchanged);
    }

    #[test]
    fn anchors_included_on_request() {
        let (_, checker) = setup();
        let mut checker = checker;
        checker.include_anchors = true;
        let reports = checker.check_entities("http://h/page.html", PAGE);
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().any(|r| r.kind == LinkKind::Anchor));
    }

    #[test]
    fn unreachable_entities_flagged() {
        let (web, checker) = setup();
        web.unregister_host("h");
        let reports = checker.check_entities("http://h/page.html", PAGE);
        assert!(reports
            .iter()
            .all(|r| r.status == EntityStatus::Unreachable));
    }

    #[test]
    fn checksums_are_per_page() {
        // Two pages embedding the same image track it independently.
        let (web, checker) = setup();
        checker.check_entities("http://h/a.html", r#"<IMG SRC="http://h/art/logo.gif">"#);
        web.touch_page("http://h/art/logo.gif", "v2", Timestamp(2_000))
            .unwrap();
        // Page B sees it for the first time: baseline, not "changed".
        let b = checker.check_entities("http://h/b.html", r#"<IMG SRC="http://h/art/logo.gif">"#);
        assert_eq!(b[0].status, EntityStatus::Baseline);
        // Page A sees the change.
        let a = checker.check_entities("http://h/a.html", r#"<IMG SRC="http://h/art/logo.gif">"#);
        assert_eq!(a[0].status, EntityStatus::ContentChanged);
    }

    #[test]
    fn duplicate_references_checked_once() {
        let (_, checker) = setup();
        let html = r#"<IMG SRC="/art/logo.gif"><IMG SRC="/art/logo.gif">"#;
        let reports = checker.check_entities("http://h/p.html", html);
        assert_eq!(reports.len(), 1);
    }
}
