//! Recursive HtmlDiff (§5.3 / §8.3).
//!
//! HtmlDiff itself "does not... invoke itself recursively on other
//! referenced pages" (§5.3), but the centralized-tracking section
//! proposes exactly that: for a hub page, "HtmlDiff could in turn be
//! invoked recursively" (§8.3) so that one request shows what changed on
//! the hub *and* on the pages it points to. This module implements the
//! proposal on top of the snapshot service: diff the hub since the
//! user's last visit, then diff each followable link, and merge
//! everything into a single sectioned report.

use crate::fetcher::{fetch_page, FetchError};
use aide_htmldiff::Options as DiffOptions;
use aide_htmlkit::lexer::lex;
use aide_htmlkit::links::extract_followable;
use aide_htmlkit::url::Url;
use aide_rcs::repo::{MemRepository, Repository};
use aide_simweb::net::Web;
use aide_snapshot::service::{ServiceError, SnapshotService, UserId};
use std::sync::Arc;

/// What happened to one page in the recursive sweep.
#[derive(Debug, Clone)]
pub enum PageOutcome {
    /// Differences rendered (the page had prior history for this user).
    Diffed {
        /// The merged-page HTML.
        html: String,
        /// Whether any content actually changed.
        changed: bool,
    },
    /// First encounter: a baseline snapshot was stored; nothing to diff.
    Baseline,
    /// The page could not be fetched.
    Unreachable(String),
}

/// The combined result.
#[derive(Debug, Clone)]
pub struct RecursiveDiff {
    /// The hub's outcome.
    pub hub: (String, PageOutcome),
    /// Linked pages, in link order.
    pub children: Vec<(String, PageOutcome)>,
}

impl RecursiveDiff {
    /// Pages (hub included) whose content changed.
    pub fn changed_urls(&self) -> Vec<&str> {
        std::iter::once(&self.hub)
            .chain(self.children.iter())
            .filter_map(|(url, o)| match o {
                PageOutcome::Diffed { changed: true, .. } => Some(url.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Renders the combined sectioned report.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "<HTML><HEAD><TITLE>Recursive HtmlDiff</TITLE></HEAD><BODY>\n<H1>Recursive differences</H1>\n",
        );
        for (url, outcome) in std::iter::once(&self.hub).chain(self.children.iter()) {
            out.push_str(&format!("<H2><A HREF=\"{url}\">{url}</A></H2>\n"));
            match outcome {
                PageOutcome::Diffed { html, changed } => {
                    if *changed {
                        out.push_str(html);
                    } else {
                        out.push_str("<P>No changes since your last visit.\n");
                    }
                }
                PageOutcome::Baseline => {
                    out.push_str("<P>First visit: a baseline snapshot was stored.\n");
                }
                PageOutcome::Unreachable(e) => {
                    out.push_str(&format!(
                        "<P><B>Unreachable:</B> {}\n",
                        aide_htmlkit::entity::encode_entities(e)
                    ));
                }
            }
        }
        out.push_str("</BODY></HTML>\n");
        out
    }
}

/// The recursive differ, generic over the snapshot service's storage
/// backend.
pub struct RecursiveDiffer<R: Repository = MemRepository> {
    web: Web,
    snapshot: Arc<SnapshotService<R>>,
}

impl<R: Repository> RecursiveDiffer<R> {
    /// Creates a differ over `web` and `snapshot`.
    pub fn new(web: Web, snapshot: Arc<SnapshotService<R>>) -> RecursiveDiffer<R> {
        RecursiveDiffer { web, snapshot }
    }

    /// Diffs `hub_url` and every page it links to (one level deep — the
    /// Virtual Library / collection cases §8.3 names), on behalf of
    /// `user`. The hub must be fetchable; broken links degrade to
    /// [`PageOutcome::Unreachable`] entries.
    pub fn diff_hub(
        &self,
        user: &UserId,
        hub_url: &str,
        same_host_only: bool,
        opts: &DiffOptions,
    ) -> Result<RecursiveDiff, FetchError> {
        let hub_page = fetch_page(&self.web, None, hub_url)?;
        let hub_outcome = self.diff_one(user, hub_url, &hub_page.body, opts);

        // Links come from the *current* hub content.
        let mut children = Vec::new();
        if let Ok(base) = Url::parse(&hub_page.final_url) {
            let hub_host = base.host.clone();
            for link in extract_followable(&lex(&hub_page.body), &base) {
                if same_host_only && link.host != hub_host {
                    continue;
                }
                let url = link.to_string();
                if url == hub_url {
                    continue;
                }
                let outcome = match fetch_page(&self.web, None, &url) {
                    Ok(page) => self.diff_one(user, &url, &page.body, opts),
                    Err(e) => PageOutcome::Unreachable(e.to_string()),
                };
                children.push((url, outcome));
            }
        }
        Ok(RecursiveDiff {
            hub: (hub_url.to_string(), hub_outcome),
            children,
        })
    }

    fn diff_one(&self, user: &UserId, url: &str, body: &str, opts: &DiffOptions) -> PageOutcome {
        match self.snapshot.diff_since_last(user, url, body, opts) {
            Ok(out) => PageOutcome::Diffed {
                changed: out.from != out.to,
                html: out.html,
            },
            Err(ServiceError::NoUserHistory { .. }) => {
                // First encounter: store the baseline.
                match self.snapshot.remember(user, url, body) {
                    Ok(_) => PageOutcome::Baseline,
                    Err(e) => PageOutcome::Unreachable(e.to_string()),
                }
            }
            Err(e) => PageOutcome::Unreachable(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::{Clock, Duration, Timestamp};

    fn setup() -> (Web, RecursiveDiffer, UserId) {
        let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 11, 1, 0, 0, 0));
        let web = Web::new(clock.clone());
        web.set_page(
            "http://hub/index.html",
            r#"<HTML><H1>Hub</H1><UL>
               <LI><A HREF="/a.html">A</A>
               <LI><A HREF="/b.html">B</A>
               <LI><A HREF="http://elsewhere/x.html">external</A>
               </UL></HTML>"#,
            Timestamp(100),
        )
        .unwrap();
        web.set_page(
            "http://hub/a.html",
            "<HTML><P>page a v1.</HTML>",
            Timestamp(100),
        )
        .unwrap();
        web.set_page(
            "http://hub/b.html",
            "<HTML><P>page b v1.</HTML>",
            Timestamp(100),
        )
        .unwrap();
        web.set_page(
            "http://elsewhere/x.html",
            "<HTML><P>external v1.</HTML>",
            Timestamp(100),
        )
        .unwrap();
        let snapshot = Arc::new(SnapshotService::new(
            MemRepository::new(),
            clock,
            64,
            Duration::hours(4),
        ));
        (
            web.clone(),
            RecursiveDiffer::new(web, snapshot),
            UserId::new("u@x"),
        )
    }

    #[test]
    fn first_sweep_is_all_baselines() {
        let (_, differ, user) = setup();
        let r = differ
            .diff_hub(
                &user,
                "http://hub/index.html",
                true,
                &DiffOptions::default(),
            )
            .unwrap();
        assert!(matches!(r.hub.1, PageOutcome::Baseline));
        assert_eq!(r.children.len(), 2, "same-host only");
        assert!(r
            .children
            .iter()
            .all(|(_, o)| matches!(o, PageOutcome::Baseline)));
        assert!(r.changed_urls().is_empty());
    }

    #[test]
    fn child_change_detected_on_second_sweep() {
        let (web, differ, user) = setup();
        differ
            .diff_hub(
                &user,
                "http://hub/index.html",
                true,
                &DiffOptions::default(),
            )
            .unwrap();
        web.clock().advance(Duration::days(1));
        web.touch_page(
            "http://hub/b.html",
            "<HTML><P>page b v2, edited!</HTML>",
            web.clock().now(),
        )
        .unwrap();
        let r = differ
            .diff_hub(
                &user,
                "http://hub/index.html",
                true,
                &DiffOptions::default(),
            )
            .unwrap();
        assert_eq!(r.changed_urls(), vec!["http://hub/b.html"]);
        let html = r.render();
        assert!(html.contains("No changes since your last visit."));
        assert!(html.contains("page b v2, edited!"));
    }

    #[test]
    fn external_links_included_when_requested() {
        let (_, differ, user) = setup();
        let r = differ
            .diff_hub(
                &user,
                "http://hub/index.html",
                false,
                &DiffOptions::default(),
            )
            .unwrap();
        assert_eq!(r.children.len(), 3);
        assert!(r
            .children
            .iter()
            .any(|(u, _)| u == "http://elsewhere/x.html"));
    }

    #[test]
    fn broken_child_links_degrade() {
        let (web, differ, user) = setup();
        web.set_page(
            "http://hub/index.html",
            r#"<A HREF="/a.html">A</A> <A HREF="http://dead-host/x">dead</A>"#,
            Timestamp(200),
        )
        .unwrap();
        let r = differ
            .diff_hub(
                &user,
                "http://hub/index.html",
                false,
                &DiffOptions::default(),
            )
            .unwrap();
        let dead = r
            .children
            .iter()
            .find(|(u, _)| u.contains("dead-host"))
            .unwrap();
        assert!(matches!(&dead.1, PageOutcome::Unreachable(_)));
        let html = r.render();
        assert!(html.contains("Unreachable:"));
    }

    #[test]
    fn unreachable_hub_is_an_error() {
        let (_, differ, user) = setup();
        assert!(differ
            .diff_hub(&user, "http://gone/hub.html", true, &DiffOptions::default())
            .is_err());
    }

    #[test]
    fn hub_changes_also_reported() {
        let (web, differ, user) = setup();
        differ
            .diff_hub(
                &user,
                "http://hub/index.html",
                true,
                &DiffOptions::default(),
            )
            .unwrap();
        web.clock().advance(Duration::days(1));
        web.touch_page(
            "http://hub/index.html",
            r#"<HTML><H1>Hub</H1><UL>
               <LI><A HREF="/a.html">A</A>
               <LI><A HREF="/b.html">B</A>
               </UL><P>Hub announcement added!</HTML>"#,
            web.clock().now(),
        )
        .unwrap();
        let r = differ
            .diff_hub(
                &user,
                "http://hub/index.html",
                true,
                &DiffOptions::default(),
            )
            .unwrap();
        assert!(r.changed_urls().contains(&"http://hub/index.html"));
    }
}
