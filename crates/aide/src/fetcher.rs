//! Page retrieval for the snapshot facility.
//!
//! The snapshot CGI "might have to retrieve a page over the Internet and
//! then do a time-consuming comparison" (§4.2). This module is that
//! retrieval: GET the page (through the proxy when one is configured),
//! follow forwarding pointers, and classify failures so the caller can
//! report them usefully.

use aide_simweb::http::{NetError, Request, Status};
use aide_simweb::net::Web;
use aide_simweb::proxy::ProxyCache;
use aide_util::time::Timestamp;
use std::fmt;

/// A successfully fetched page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchedPage {
    /// The URL the content actually came from (after redirects).
    pub final_url: String,
    /// The body.
    pub body: String,
    /// Its `Last-Modified`, if the server provided one.
    pub last_modified: Option<Timestamp>,
}

/// Fetch failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// Network-level failure.
    Net(NetError),
    /// HTTP-level failure.
    Http {
        /// The status code received.
        status: Status,
        /// The URL that produced it.
        url: String,
    },
    /// Redirects did not converge.
    TooManyRedirects(String),
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::Net(e) => write!(f, "{e}"),
            FetchError::Http { status, url } => write!(f, "HTTP {status} fetching {url}"),
            FetchError::TooManyRedirects(u) => write!(f, "too many redirects from {u}"),
        }
    }
}

impl std::error::Error for FetchError {}

impl From<NetError> for FetchError {
    fn from(e: NetError) -> Self {
        FetchError::Net(e)
    }
}

/// Maximum redirect chain length.
pub const MAX_REDIRECTS: usize = 5;

/// Fetches `url`, through `proxy` when given, following up to
/// [`MAX_REDIRECTS`] permanent redirects.
pub fn fetch_page(
    web: &Web,
    proxy: Option<&ProxyCache>,
    url: &str,
) -> Result<FetchedPage, FetchError> {
    let mut current = url.to_string();
    for _ in 0..=MAX_REDIRECTS {
        let resp = match proxy {
            Some(p) => p.get(&current)?,
            None => web.request(&Request::get(&current))?,
        };
        match resp.status {
            Status::Ok => {
                return Ok(FetchedPage {
                    final_url: current,
                    body: resp.body,
                    last_modified: resp.last_modified,
                });
            }
            Status::MovedPermanently => match resp.location {
                Some(loc) => current = loc,
                None => {
                    return Err(FetchError::Http {
                        status: resp.status,
                        url: current,
                    })
                }
            },
            status => {
                return Err(FetchError::Http {
                    status,
                    url: current,
                })
            }
        }
    }
    Err(FetchError::TooManyRedirects(url.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_simweb::resource::Resource;
    use aide_util::time::{Clock, Duration};

    fn web() -> Web {
        let w = Web::new(Clock::starting_at(Timestamp(1_000_000)));
        w.set_page("http://h/p", "<HTML>content</HTML>", Timestamp(500))
            .unwrap();
        w
    }

    #[test]
    fn plain_fetch() {
        let w = web();
        let p = fetch_page(&w, None, "http://h/p").unwrap();
        assert_eq!(p.body, "<HTML>content</HTML>");
        assert_eq!(p.last_modified, Some(Timestamp(500)));
        assert_eq!(p.final_url, "http://h/p");
    }

    #[test]
    fn follows_moved() {
        let w = web();
        w.set_resource(
            "http://h/old",
            Resource::Moved {
                location: "http://h/p".into(),
            },
        )
        .unwrap();
        let p = fetch_page(&w, None, "http://h/old").unwrap();
        assert_eq!(p.final_url, "http://h/p");
    }

    #[test]
    fn redirect_loop_detected() {
        let w = web();
        w.set_resource(
            "http://h/a",
            Resource::Moved {
                location: "http://h/b".into(),
            },
        )
        .unwrap();
        w.set_resource(
            "http://h/b",
            Resource::Moved {
                location: "http://h/a".into(),
            },
        )
        .unwrap();
        assert!(matches!(
            fetch_page(&w, None, "http://h/a"),
            Err(FetchError::TooManyRedirects(_))
        ));
    }

    #[test]
    fn http_errors_classified() {
        let w = web();
        assert!(matches!(
            fetch_page(&w, None, "http://h/missing"),
            Err(FetchError::Http {
                status: Status::NotFound,
                ..
            })
        ));
        w.set_resource("http://h/gone", Resource::Gone).unwrap();
        assert!(matches!(
            fetch_page(&w, None, "http://h/gone"),
            Err(FetchError::Http {
                status: Status::Gone,
                ..
            })
        ));
    }

    #[test]
    fn net_errors_classified() {
        let w = web();
        assert!(matches!(
            fetch_page(&w, None, "http://unknown-host/"),
            Err(FetchError::Net(NetError::UnknownHost(_)))
        ));
    }

    #[test]
    fn fetches_through_proxy() {
        let w = web();
        let proxy = ProxyCache::new(w.clone(), Duration::hours(1));
        fetch_page(&w, Some(&proxy), "http://h/p").unwrap();
        let origin_before = w.server_stats("h").unwrap().total();
        fetch_page(&w, Some(&proxy), "http://h/p").unwrap();
        assert_eq!(
            w.server_stats("h").unwrap().total(),
            origin_before,
            "cache hit"
        );
        assert_eq!(proxy.stats().hits, 1);
    }
}
