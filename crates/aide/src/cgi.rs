//! The CGI façade.
//!
//! "Pages can be registered with the service via an HTML form, and
//! differences can be retrieved in the same fashion" (§4.1). §8.1 adds
//! the server-side scripts: `/cgi-bin/rlog` "converts the output of rlog
//! into HTML, showing the user a history of the document with links to
//! view any specific version or to see the differences between two
//! versions"; `/cgi-bin/co` "displays a version of a document"; and
//! `/cgi-bin/rcsdiff` "displays the differences. If the file's name ends
//! in .html then HtmlDiff is used... rather than the rcsdiff program."
//!
//! §8.4's limitation is honoured: services invoked via `POST` are
//! rejected with an explanatory error, since "the input to the services
//! is not stored".

use crate::engine::AideEngine;
use aide_diffcore::lines::diff_lines;
use aide_htmldiff::Options as DiffOptions;
use aide_htmlkit::entity::encode_entities;
use aide_rcs::archive::RevId;
use aide_rcs::repo::Repository;
use aide_snapshot::keepalive::{run as keepalive_run, KeepaliveConfig, KeepaliveOutcome};
use aide_util::time::Duration;
use std::collections::BTreeMap;

/// A parsed CGI request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgiRequest {
    /// The `op` parameter (empty if missing).
    pub op: String,
    /// All query parameters.
    pub params: BTreeMap<String, String>,
}

/// A CGI response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgiResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type`.
    pub content_type: String,
    /// Body.
    pub body: String,
}

impl CgiResponse {
    fn html(body: String) -> CgiResponse {
        CgiResponse {
            status: 200,
            content_type: "text/html".to_string(),
            body,
        }
    }

    fn plain(body: String) -> CgiResponse {
        CgiResponse {
            status: 200,
            content_type: "text/plain".to_string(),
            body,
        }
    }

    fn error(status: u16, message: &str) -> CgiResponse {
        CgiResponse {
            status,
            content_type: "text/html".to_string(),
            body: format!(
                "<HTML><HEAD><TITLE>AIDE error</TITLE></HEAD><BODY><H1>Error</H1>\
                 <P>{}</BODY></HTML>\n",
                encode_entities(message)
            ),
        }
    }
}

/// Decodes `%XX` escapes and `+` in a query component.
pub fn urldecode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 3 <= bytes.len() => {
                match u8::from_str_radix(&s[i + 1..i + 3], 16) {
                    Ok(b) => {
                        out.push(b);
                        i += 3;
                    }
                    Err(_) => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses a query string (`op=diff&url=http%3A%2F%2Fx%2F`).
pub fn parse_query(query: &str) -> CgiRequest {
    let mut params = BTreeMap::new();
    for pair in query.split('&') {
        if pair.is_empty() {
            continue;
        }
        match pair.split_once('=') {
            Some((k, v)) => {
                params.insert(urldecode(k), urldecode(v));
            }
            None => {
                params.insert(urldecode(pair), String::new());
            }
        }
    }
    let op = params.get("op").cloned().unwrap_or_default();
    CgiRequest { op, params }
}

/// Dispatches one GET request against the engine on behalf of `user`.
/// Generic over the storage backend, like the engine itself: the CGI
/// façade and `aide-serve` run identically on `MemRepository` and
/// `DiskRepository`.
pub fn dispatch<R: Repository>(engine: &AideEngine<R>, user: &str, query: &str) -> CgiResponse {
    let req = parse_query(query);
    let Some(url) = req.params.get("url") else {
        return CgiResponse::error(400, "missing url parameter");
    };
    match req.op.as_str() {
        "remember" => match engine.remember(user, url) {
            Ok(out) => CgiResponse::html(format!(
                "<HTML><BODY><P>Remembered <A HREF=\"{url}\">{url}</A> as revision {}{}.\
                 </BODY></HTML>\n",
                out.rev,
                if out.stored_new_revision {
                    ""
                } else {
                    " (unchanged)"
                }
            )),
            Err(e) => CgiResponse::error(502, &e.to_string()),
        },
        "diff" => match engine.diff(user, url, &DiffOptions::default()) {
            Ok(out) => CgiResponse::html(out.html),
            Err(e) => CgiResponse::error(502, &e.to_string()),
        },
        "history" | "rlog" => match engine.history(user, url) {
            Ok(revs) => {
                let mut body = format!(
                    "<HTML><HEAD><TITLE>History of {url}</TITLE></HEAD><BODY>\
                     <H1>Versions of {url}</H1>\n<UL>\n"
                );
                let ids: Vec<RevId> = revs.iter().map(|(m, _)| m.id).collect();
                for (meta, seen) in &revs {
                    let mut line = format!(
                        "<LI>[<A HREF=\"?op=co&url={url}&rev={rev}\">{rev}</A>] {date} by {author}{seen}",
                        rev = meta.id,
                        date = meta.date.to_http_date(),
                        author = encode_entities(&meta.author),
                        seen = if *seen { " (seen)" } else { "" },
                    );
                    if let Some(prev) = ids.iter().find(|r| r.0 == meta.id.0.saturating_sub(1)) {
                        line.push_str(&format!(
                            " [<A HREF=\"?op=rcsdiff&url={url}&from={prev}&to={rev}\">diff to previous</A>]",
                            rev = meta.id,
                        ));
                    }
                    body.push_str(&line);
                    body.push('\n');
                }
                body.push_str("</UL>\n</BODY></HTML>\n");
                CgiResponse::html(body)
            }
            Err(e) => CgiResponse::error(404, &e.to_string()),
        },
        "view" | "co" => {
            // §2.2: "A CGI interface to RCS allows a user to request a URL
            // at a particular date, from anywhere on the W3" — `date=`
            // takes an RCS datestamp; `rev=` takes a revision number.
            if let Some(date) = req.params.get("date") {
                let Some(when) = aide_util::time::Timestamp::parse_rcs_date(date) else {
                    return CgiResponse::error(400, &format!("bad date {date:?}"));
                };
                return match engine.snapshot().view_at(url, when) {
                    Ok((rev, _)) => match engine.view(url, rev) {
                        Ok(body) => CgiResponse::html(body),
                        Err(e) => CgiResponse::error(404, &e.to_string()),
                    },
                    Err(e) => CgiResponse::error(404, &e.to_string()),
                };
            }
            let rev = req
                .params
                .get("rev")
                .and_then(|r| RevId::parse(r))
                .unwrap_or(RevId::FIRST);
            match engine.view(url, rev) {
                Ok(body) => CgiResponse::html(body),
                Err(e) => CgiResponse::error(404, &e.to_string()),
            }
        }
        "rcsdiff" => {
            let (Some(from), Some(to)) = (
                req.params.get("from").and_then(|r| RevId::parse(r)),
                req.params.get("to").and_then(|r| RevId::parse(r)),
            ) else {
                return CgiResponse::error(400, "missing or bad from/to revisions");
            };
            // "If the file's name ends in .html then HtmlDiff is used to
            // display the differences, rather than the rcsdiff program."
            let html_mode = url.ends_with(".html") || url.ends_with('/') || !url.contains('.');
            if html_mode {
                match engine.diff_versions(url, from, to, &DiffOptions::default()) {
                    Ok(out) => CgiResponse::html(out.html),
                    Err(e) => CgiResponse::error(404, &e.to_string()),
                }
            } else {
                let snapshot = engine.snapshot();
                match (
                    snapshot.revision_text(url, from),
                    snapshot.revision_text(url, to),
                ) {
                    (Ok(a), Ok(b)) => CgiResponse::plain(diff_lines(&a, &b).unified(
                        &from.to_string(),
                        &to.to_string(),
                        3,
                    )),
                    (Err(e), _) | (_, Err(e)) => CgiResponse::error(404, &e.to_string()),
                }
            }
        }
        "" => CgiResponse::error(400, "missing op parameter"),
        other => CgiResponse::error(400, &format!("unknown op {other:?}")),
    }
}

/// Dispatches a POST: always refused, per §8.4 ("services that use POST
/// cannot be accessed, because the input to the services is not stored").
pub fn dispatch_post<R: Repository>(
    _engine: &AideEngine<R>,
    _user: &str,
    _query: &str,
) -> CgiResponse {
    CgiResponse::error(
        501,
        "AIDE cannot track POST services: the form input is not stored. \
         Save the filled-out form and use a GET URL instead.",
    )
}

/// Runs a dispatch under httpd's CGI timeout with the snapshot
/// keep-alive child. `work_estimate` is the simulated time the operation
/// takes (retrieval plus HtmlDiff).
pub fn dispatch_with_keepalive<R: Repository>(
    engine: &AideEngine<R>,
    user: &str,
    query: &str,
    work_estimate: Duration,
    cfg: &KeepaliveConfig,
) -> Result<(CgiResponse, u64), Duration> {
    match keepalive_run(cfg, work_estimate) {
        KeepaliveOutcome::Completed { padding } => Ok((dispatch(engine, user, query), padding)),
        KeepaliveOutcome::TimedOut { after } => Err(after),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_simweb::net::Web;
    use aide_util::time::{Clock, Timestamp};
    use aide_w3newer::config::ThresholdConfig;

    fn engine() -> AideEngine {
        let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 0, 0, 0));
        let web = Web::new(clock);
        web.set_page(
            "http://h/page.html",
            "<HTML><P>version one text.</HTML>",
            Timestamp(100),
        )
        .unwrap();
        web.set_page("http://h/data.txt", "line1\nline2\n", Timestamp(100))
            .unwrap();
        let e = AideEngine::new(web);
        e.register_user("u@x", ThresholdConfig::default());
        e
    }

    #[test]
    fn urldecode_cases() {
        assert_eq!(urldecode("a+b"), "a b");
        assert_eq!(urldecode("http%3A%2F%2Fh%2F"), "http://h/");
        assert_eq!(urldecode("100%"), "100%");
        assert_eq!(urldecode("%ZZ"), "%ZZ");
        assert_eq!(urldecode(""), "");
    }

    #[test]
    fn parse_query_basic() {
        let r = parse_query("op=diff&url=http%3A%2F%2Fh%2F&rev=1.2");
        assert_eq!(r.op, "diff");
        assert_eq!(r.params["url"], "http://h/");
        assert_eq!(r.params["rev"], "1.2");
        let r = parse_query("");
        assert_eq!(r.op, "");
        let r = parse_query("flag&x=1");
        assert!(r.params.contains_key("flag"));
    }

    #[test]
    fn remember_then_diff_via_cgi() {
        let e = engine();
        let r = dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fpage.html");
        assert_eq!(r.status, 200);
        assert!(r.body.contains("revision 1.1"));

        e.clock().advance(Duration::days(1));
        e.web()
            .touch_page(
                "http://h/page.html",
                "<HTML><P>version one text. plus more!</HTML>",
                e.clock().now(),
            )
            .unwrap();
        let r = dispatch(&e, "u@x", "op=diff&url=http%3A%2F%2Fh%2Fpage.html");
        assert_eq!(r.status, 200);
        assert!(r.body.contains("plus more!"));
        assert!(r.body.contains("<STRONG><I>"));
    }

    #[test]
    fn history_and_co() {
        let e = engine();
        dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fpage.html");
        e.clock().advance(Duration::days(1));
        e.web()
            .touch_page("http://h/page.html", "<HTML><P>v2</HTML>", e.clock().now())
            .unwrap();
        dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fpage.html");

        let r = dispatch(&e, "u@x", "op=rlog&url=http%3A%2F%2Fh%2Fpage.html");
        assert!(r.body.contains("1.1"));
        assert!(r.body.contains("1.2"));
        assert!(r.body.contains("op=rcsdiff"));
        assert!(r.body.contains("(seen)"));

        let r = dispatch(&e, "u@x", "op=co&url=http%3A%2F%2Fh%2Fpage.html&rev=1.1");
        assert!(r.body.contains("version one text."));
    }

    #[test]
    fn rcsdiff_html_vs_plain() {
        let e = engine();
        dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fpage.html");
        dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fdata.txt");
        e.clock().advance(Duration::days(1));
        e.web()
            .touch_page(
                "http://h/page.html",
                "<HTML><P>v2 now.</HTML>",
                e.clock().now(),
            )
            .unwrap();
        e.web()
            .touch_page("http://h/data.txt", "line1\nlineTWO\n", e.clock().now())
            .unwrap();
        dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fpage.html");
        dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fdata.txt");

        let html = dispatch(
            &e,
            "u@x",
            "op=rcsdiff&url=http%3A%2F%2Fh%2Fpage.html&from=1.1&to=1.2",
        );
        assert_eq!(html.content_type, "text/html");
        assert!(html.body.contains("AIDE HtmlDiff"));

        let plain = dispatch(
            &e,
            "u@x",
            "op=rcsdiff&url=http%3A%2F%2Fh%2Fdata.txt&from=1.1&to=1.2",
        );
        assert_eq!(plain.content_type, "text/plain");
        assert!(plain.body.contains("-line2"));
        assert!(plain.body.contains("+lineTWO"));
    }

    #[test]
    fn time_travel_by_date() {
        // The §2.2 "time travel" interface: co by RCS datestamp.
        let e = engine();
        dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fpage.html");
        let t_between = e.clock().now() + Duration::hours(12);
        e.clock().advance(Duration::days(1));
        e.web()
            .touch_page(
                "http://h/page.html",
                "<HTML><P>second edition</HTML>",
                e.clock().now(),
            )
            .unwrap();
        dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fpage.html");

        let r = dispatch(
            &e,
            "u@x",
            &format!(
                "op=co&url=http%3A%2F%2Fh%2Fpage.html&date={}",
                t_between.to_rcs_date()
            ),
        );
        assert_eq!(r.status, 200);
        assert!(r.body.contains("version one text."), "{}", r.body);
        // A bad date is a 400; a date before any revision is a 404.
        assert_eq!(
            dispatch(
                &e,
                "u@x",
                "op=co&url=http%3A%2F%2Fh%2Fpage.html&date=not-a-date"
            )
            .status,
            400
        );
        assert_eq!(
            dispatch(
                &e,
                "u@x",
                "op=co&url=http%3A%2F%2Fh%2Fpage.html&date=1980.01.01.00.00.00"
            )
            .status,
            404
        );
    }

    #[test]
    fn error_paths() {
        let e = engine();
        assert_eq!(dispatch(&e, "u@x", "url=http%3A%2F%2Fh%2F").status, 400);
        assert_eq!(dispatch(&e, "u@x", "op=diff").status, 400);
        assert_eq!(dispatch(&e, "u@x", "op=bogus&url=x").status, 400);
        assert_eq!(
            dispatch(&e, "u@x", "op=history&url=http%3A%2F%2Fnever%2F").status,
            404
        );
        assert_eq!(
            dispatch(&e, "u@x", "op=remember&url=http%3A%2F%2Fgone-host%2F").status,
            502
        );
        assert_eq!(
            dispatch(
                &e,
                "u@x",
                "op=rcsdiff&url=http%3A%2F%2Fh%2Fpage.html&from=bad&to=1.2"
            )
            .status,
            400
        );
    }

    #[test]
    fn post_refused() {
        let e = engine();
        let r = dispatch_post(&e, "u@x", "op=remember&url=http%3A%2F%2Fh%2Fpage.html");
        assert_eq!(r.status, 501);
        assert!(r.body.contains("POST"));
    }

    #[test]
    fn keepalive_wraps_dispatch() {
        let e = engine();
        let cfg = KeepaliveConfig {
            server_timeout: Duration::seconds(60),
            heartbeat: Some(Duration::seconds(5)),
        };
        // A long HtmlDiff (3 minutes) survives thanks to the heartbeat.
        let (resp, padding) = dispatch_with_keepalive(
            &e,
            "u@x",
            "op=remember&url=http%3A%2F%2Fh%2Fpage.html",
            Duration::minutes(3),
            &cfg,
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(padding, 36);
        // Without the heartbeat, httpd kills it.
        let cfg = KeepaliveConfig {
            server_timeout: Duration::seconds(60),
            heartbeat: None,
        };
        let err = dispatch_with_keepalive(
            &e,
            "u@x",
            "op=remember&url=http%3A%2F%2Fh%2Fpage.html",
            Duration::minutes(3),
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err, Duration::seconds(60));
    }
}
