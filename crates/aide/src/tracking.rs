//! Server-side URL tracking (§8.3).
//!
//! "Regardless of how many users have registered an interest in a page,
//! it need only be checked once; if changed, the new version could be
//! saved automatically. Then a user could request a list of all pages
//! that have been saved away, and get an indication of which pages have
//! changed since they were saved by the user." The hub-page extension is
//! here too: "following links recursively is inappropriate for tools run
//! by every user individually but would be feasible for a centralized
//! service" — Virtual Library pages and collections of related pages.

use crate::fetcher::{fetch_page, FetchError};
use aide_htmlkit::lexer::lex;
use aide_htmlkit::links::extract_followable;
use aide_htmlkit::url::Url;
use aide_rcs::repo::{MemRepository, Repository};
use aide_simweb::net::Web;
use aide_snapshot::service::{ServiceError, SnapshotService, UserId};
use aide_util::sync::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Result of one polling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PollSummary {
    /// URLs examined.
    pub checked: usize,
    /// URLs whose content changed (new revision archived).
    pub changed: usize,
    /// URLs archived for the first time.
    pub new_archives: usize,
    /// URLs that failed to fetch.
    pub errors: usize,
}

/// A page a user would see on their server-side "what's new" list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackedStatus {
    /// The URL.
    pub url: String,
    /// Head revision in the archive.
    pub head: aide_rcs::archive::RevId,
    /// True if the user has not seen the head revision.
    pub changed_for_user: bool,
}

/// The centralized tracker, generic over the snapshot service's
/// storage backend.
pub struct ServerTracker<R: Repository = MemRepository> {
    web: Web,
    snapshot: Arc<SnapshotService<R>>,
    registrations: Mutex<BTreeMap<String, BTreeSet<UserId>>>,
    daemon: UserId,
}

impl<R: Repository> ServerTracker<R> {
    /// Creates a tracker writing into `snapshot`.
    pub fn new(web: Web, snapshot: Arc<SnapshotService<R>>) -> ServerTracker<R> {
        ServerTracker {
            web,
            snapshot,
            registrations: Mutex::new(BTreeMap::new()),
            daemon: UserId::new("aide-daemon@snapshot"),
        }
    }

    /// Registers `user`'s interest in `url`.
    pub fn register(&self, user: &UserId, url: &str) {
        self.registrations
            .lock()
            .entry(url.to_string())
            .or_default()
            .insert(user.clone());
    }

    /// Registers a hub page and, recursively to `depth`, the pages it
    /// links to. Returns every URL registered (the hub first).
    ///
    /// With `same_host_only`, only links back into the hub's host are
    /// followed — the "collections of related pages" case; without it,
    /// external links are followed too — the "Virtual Library" case.
    pub fn register_hub(
        &self,
        user: &UserId,
        hub_url: &str,
        depth: usize,
        same_host_only: bool,
    ) -> Result<Vec<String>, FetchError> {
        let mut registered = Vec::new();
        let mut frontier = vec![(hub_url.to_string(), 0usize)];
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let hub_host = Url::parse(hub_url).map(|u| u.host).unwrap_or_default();
        while let Some((url, d)) = frontier.pop() {
            if !seen.insert(url.clone()) {
                continue;
            }
            self.register(user, &url);
            registered.push(url.clone());
            if d >= depth {
                continue;
            }
            // Follow the page's links.
            let page = match fetch_page(&self.web, None, &url) {
                Ok(p) => p,
                Err(_) if d > 0 => continue, // broken leaf links are tolerated
                Err(e) => return Err(e),
            };
            let base = match Url::parse(&page.final_url) {
                Ok(b) => b,
                Err(_) => continue,
            };
            for link in extract_followable(&lex(&page.body), &base) {
                if same_host_only && link.host != hub_host {
                    continue;
                }
                frontier.push((link.to_string(), d + 1));
            }
        }
        Ok(registered)
    }

    /// All registered URLs, sorted.
    pub fn registered_urls(&self) -> Vec<String> {
        self.registrations.lock().keys().cloned().collect()
    }

    /// Number of users interested in `url`.
    pub fn interest_count(&self, url: &str) -> usize {
        self.registrations
            .lock()
            .get(url)
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// One sweep: each registered URL is fetched **once** and archived if
    /// changed, no matter how many users registered it.
    pub fn poll_all(&self) -> PollSummary {
        let urls = self.registered_urls();
        let mut summary = PollSummary::default();
        for url in urls {
            summary.checked += 1;
            let page = match fetch_page(&self.web, None, &url) {
                Ok(p) => p,
                Err(_) => {
                    summary.errors += 1;
                    continue;
                }
            };
            match self.snapshot.remember(&self.daemon, &url, &page.body) {
                Ok(out) => {
                    if out.created_archive {
                        summary.new_archives += 1;
                    } else if out.stored_new_revision {
                        summary.changed += 1;
                    }
                }
                Err(_) => summary.errors += 1,
            }
        }
        summary
    }

    /// The user's server-side report: every URL they registered, with
    /// whether its head revision postdates what they have seen.
    pub fn whats_new(&self, user: &UserId) -> Result<Vec<TrackedStatus>, ServiceError> {
        let regs = self.registrations.lock();
        let mut out = Vec::new();
        for (url, users) in regs.iter() {
            if !users.contains(user) {
                continue;
            }
            let Some((head, _)) = self.snapshot.head(url)? else {
                continue; // not yet polled
            };
            let seen = self.snapshot.last_seen(user, url);
            out.push(TrackedStatus {
                url: url.clone(),
                head,
                changed_for_user: seen != Some(head),
            });
        }
        Ok(out)
    }

    /// Marks that `user` has now seen the head of `url` (they viewed it
    /// through the service). Re-remembering the pristine head text
    /// records the revision in the user's control file without creating a
    /// new revision.
    pub fn mark_seen(&self, user: &UserId, url: &str) -> Result<(), ServiceError> {
        if let Some((head, _)) = self.snapshot.head(url)? {
            let pristine = self.snapshot.revision_text(url, head)?;
            self.snapshot.remember(user, url, &pristine)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_snapshot::service::UserId;
    use aide_util::time::{Clock, Duration, Timestamp};

    fn setup() -> (Web, ServerTracker) {
        let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 0, 0, 0));
        let web = Web::new(clock.clone());
        web.set_page("http://a/1.html", "<HTML>one</HTML>", Timestamp(100))
            .unwrap();
        web.set_page("http://a/2.html", "<HTML>two</HTML>", Timestamp(100))
            .unwrap();
        let snapshot = Arc::new(SnapshotService::new(
            MemRepository::new(),
            clock,
            64,
            Duration::hours(4),
        ));
        let tracker = ServerTracker::new(web.clone(), snapshot);
        (web, tracker)
    }

    fn alice() -> UserId {
        UserId::new("alice@x")
    }

    fn bob() -> UserId {
        UserId::new("bob@x")
    }

    #[test]
    fn one_check_per_url_regardless_of_users() {
        let (web, t) = setup();
        t.register(&alice(), "http://a/1.html");
        t.register(&bob(), "http://a/1.html");
        assert_eq!(t.interest_count("http://a/1.html"), 2);
        web.reset_stats();
        let s = t.poll_all();
        assert_eq!(s.checked, 1);
        assert_eq!(s.new_archives, 1);
        assert_eq!(web.stats().gets, 1, "one GET for two interested users");
    }

    #[test]
    fn changed_pages_archived_automatically() {
        let (web, t) = setup();
        t.register(&alice(), "http://a/1.html");
        t.poll_all();
        web.touch_page(
            "http://a/1.html",
            "<HTML>one, updated</HTML>",
            Timestamp(90_000_000),
        )
        .unwrap();
        let s = t.poll_all();
        assert_eq!(s.changed, 1);
        // Two revisions now exist.
        let urls = t.snapshot.archived_urls().unwrap();
        assert_eq!(urls, vec!["http://a/1.html"]);
    }

    #[test]
    fn unchanged_pages_not_rearchived() {
        let (_, t) = setup();
        t.register(&alice(), "http://a/1.html");
        t.poll_all();
        let s = t.poll_all();
        assert_eq!(s.changed, 0);
        assert_eq!(s.new_archives, 0);
    }

    #[test]
    fn whats_new_per_user() {
        let (web, t) = setup();
        t.register(&alice(), "http://a/1.html");
        t.poll_all();
        // Alice has never seen it: changed for her.
        let list = t.whats_new(&alice()).unwrap();
        assert_eq!(list.len(), 1);
        assert!(list[0].changed_for_user);
        // Alice views it; now it is not new to her.
        t.mark_seen(&alice(), "http://a/1.html").unwrap();
        let list = t.whats_new(&alice()).unwrap();
        assert!(!list[0].changed_for_user);
        // Page changes again: new to Alice once re-polled.
        web.touch_page("http://a/1.html", "<HTML>v3</HTML>", Timestamp(95_000_000))
            .unwrap();
        t.poll_all();
        let list = t.whats_new(&alice()).unwrap();
        assert!(list[0].changed_for_user);
    }

    #[test]
    fn errors_counted() {
        let (_, t) = setup();
        t.register(&alice(), "http://a/missing.html");
        let s = t.poll_all();
        assert_eq!(s.errors, 1);
    }

    #[test]
    fn hub_registration_follows_links() {
        let (web, t) = setup();
        web.set_page(
            "http://hub/index.html",
            r#"<HTML><UL>
               <LI><A HREF="/a.html">A</A>
               <LI><A HREF="/b.html">B</A>
               <LI><A HREF="http://a/1.html">external</A>
               </UL></HTML>"#,
            Timestamp(100),
        )
        .unwrap();
        web.set_page("http://hub/a.html", "<HTML>a</HTML>", Timestamp(100))
            .unwrap();
        web.set_page("http://hub/b.html", "<HTML>b</HTML>", Timestamp(100))
            .unwrap();

        let regs = t
            .register_hub(&alice(), "http://hub/index.html", 1, true)
            .unwrap();
        assert_eq!(regs.len(), 3, "hub + two same-host links: {regs:?}");
        assert!(
            !regs.contains(&"http://a/1.html".to_string()),
            "external excluded"
        );

        let all = t
            .register_hub(&bob(), "http://hub/index.html", 1, false)
            .unwrap();
        assert_eq!(
            all.len(),
            4,
            "virtual-library mode follows external links too"
        );
    }

    #[test]
    fn hub_depth_limits_recursion() {
        let (web, t) = setup();
        web.set_page("http://d/0.html", r#"<A HREF="1.html">n</A>"#, Timestamp(1))
            .unwrap();
        web.set_page("http://d/1.html", r#"<A HREF="2.html">n</A>"#, Timestamp(1))
            .unwrap();
        web.set_page("http://d/2.html", r#"<A HREF="3.html">n</A>"#, Timestamp(1))
            .unwrap();
        web.set_page("http://d/3.html", "end", Timestamp(1))
            .unwrap();
        let regs = t
            .register_hub(&alice(), "http://d/0.html", 2, true)
            .unwrap();
        assert_eq!(regs.len(), 3, "depth 2 stops at 2.html: {regs:?}");
    }

    #[test]
    fn hub_cycles_terminate() {
        let (web, t) = setup();
        web.set_page("http://c/x.html", r#"<A HREF="y.html">n</A>"#, Timestamp(1))
            .unwrap();
        web.set_page("http://c/y.html", r#"<A HREF="x.html">n</A>"#, Timestamp(1))
            .unwrap();
        let regs = t
            .register_hub(&alice(), "http://c/x.html", 10, true)
            .unwrap();
        assert_eq!(regs.len(), 2);
    }
}
