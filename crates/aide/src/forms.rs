//! Tracking POST services: stored forms (§8.4's sketched design).
//!
//! "Services that use POST cannot be accessed, because the input to the
//! services is not stored... A user could manually save the source to an
//! HTML form and change the URL the form invokes to be something
//! provided by AIDE. It, in turn, would have to make a copy of its input
//! to pass along to the actual service."
//!
//! This module implements that design: a [`FormRegistry`] stores the
//! filled-out form body under a user-chosen alias; polling an alias
//! re-POSTs the stored input to the real service and checksums the
//! result (POST output never carries `Last-Modified`), and the result
//! body can be fed into the snapshot service for archival and HtmlDiff
//! like any page.

use aide_simweb::http::{NetError, Request, Status};
use aide_simweb::net::Web;
use aide_util::checksum::PageChecksum;
use aide_util::sync::Mutex;
use std::collections::BTreeMap;
use std::fmt;

/// One saved form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredForm {
    /// The `ACTION` URL of the original form.
    pub action: String,
    /// The saved, filled-out input (urlencoded body).
    pub input: String,
    /// Checksum of the last polled result.
    pub last_checksum: Option<PageChecksum>,
}

/// Outcome of polling a stored form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormStatus {
    /// First poll; baseline recorded.
    Baseline,
    /// Output identical to last poll.
    Unchanged,
    /// Output differs from last poll.
    Changed,
}

/// Errors from the registry.
#[derive(Debug)]
pub enum FormError {
    /// No such alias.
    UnknownAlias(String),
    /// The POST failed at the network level.
    Net(NetError),
    /// The service answered with a non-success status.
    Http(Status),
}

impl fmt::Display for FormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormError::UnknownAlias(a) => write!(f, "no stored form named {a:?}"),
            FormError::Net(e) => write!(f, "{e}"),
            FormError::Http(s) => write!(f, "HTTP {s} from form service"),
        }
    }
}

impl std::error::Error for FormError {}

/// The registry of stored forms.
pub struct FormRegistry {
    web: Web,
    forms: Mutex<BTreeMap<String, StoredForm>>,
}

impl FormRegistry {
    /// Creates a registry against `web`.
    pub fn new(web: Web) -> FormRegistry {
        FormRegistry {
            web,
            forms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Saves a filled-out form under `alias` (replacing any previous
    /// form with that alias).
    pub fn register(&self, alias: &str, action_url: &str, input: &str) {
        self.forms.lock().insert(
            alias.to_string(),
            StoredForm {
                action: action_url.to_string(),
                input: input.to_string(),
                last_checksum: None,
            },
        );
    }

    /// Removes a stored form; returns whether one existed.
    pub fn unregister(&self, alias: &str) -> bool {
        self.forms.lock().remove(alias).is_some()
    }

    /// All aliases, sorted.
    pub fn aliases(&self) -> Vec<String> {
        self.forms.lock().keys().cloned().collect()
    }

    /// The stored form for `alias`.
    pub fn get(&self, alias: &str) -> Option<StoredForm> {
        self.forms.lock().get(alias).cloned()
    }

    /// Re-POSTs the stored input and returns the result body — the
    /// "fetch" that snapshot's Remember needs for a POST service.
    pub fn fetch(&self, alias: &str) -> Result<String, FormError> {
        let form = self
            .get(alias)
            .ok_or_else(|| FormError::UnknownAlias(alias.to_string()))?;
        let resp = self
            .web
            .request(&Request::post(&form.action, &form.input))
            .map_err(FormError::Net)?;
        if resp.status != Status::Ok {
            return Err(FormError::Http(resp.status));
        }
        Ok(resp.body)
    }

    /// Polls the service: POSTs the stored input, checksums the output,
    /// compares against the previous poll. Returns the status and the
    /// fresh body.
    pub fn poll(&self, alias: &str) -> Result<(FormStatus, String), FormError> {
        let body = self.fetch(alias)?;
        let checksum = PageChecksum::of(body.as_bytes());
        let mut forms = self.forms.lock();
        let form = forms
            .get_mut(alias)
            .ok_or_else(|| FormError::UnknownAlias(alias.to_string()))?;
        let status = match form.last_checksum.replace(checksum) {
            None => FormStatus::Baseline,
            Some(prev) if prev == checksum => FormStatus::Unchanged,
            Some(_) => FormStatus::Changed,
        };
        Ok((status, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_simweb::resource::Resource;
    use aide_util::time::{Clock, Timestamp};

    fn setup() -> (Web, FormRegistry) {
        let web = Web::new(Clock::starting_at(Timestamp(1_000)));
        // A search service whose output depends on the POSTed input.
        web.set_resource(
            "http://search.example/cgi-bin/query",
            Resource::Cgi {
                template: "<HTML>Results for [{INPUT}]: three documents found.</HTML>".to_string(),
                hits: 0,
            },
        )
        .unwrap();
        let reg = FormRegistry::new(web.clone());
        (web, reg)
    }

    #[test]
    fn stored_input_reaches_the_service() {
        let (_, reg) = setup();
        reg.register(
            "my-search",
            "http://search.example/cgi-bin/query",
            "q=mobile+computing",
        );
        let body = reg.fetch("my-search").unwrap();
        assert!(body.contains("q=mobile+computing"), "{body}");
    }

    #[test]
    fn poll_baseline_then_unchanged_then_changed() {
        let (web, reg) = setup();
        reg.register("my-search", "http://search.example/cgi-bin/query", "q=web");
        let (s, _) = reg.poll("my-search").unwrap();
        assert_eq!(s, FormStatus::Baseline);
        let (s, _) = reg.poll("my-search").unwrap();
        assert_eq!(s, FormStatus::Unchanged);
        // The service's answer for this query changes.
        web.set_resource(
            "http://search.example/cgi-bin/query",
            Resource::Cgi {
                template: "<HTML>Results for [{INPUT}]: five documents found!</HTML>".to_string(),
                hits: 0,
            },
        )
        .unwrap();
        let (s, body) = reg.poll("my-search").unwrap();
        assert_eq!(s, FormStatus::Changed);
        assert!(body.contains("five documents"));
    }

    #[test]
    fn distinct_aliases_same_service() {
        let (_, reg) = setup();
        reg.register("search-a", "http://search.example/cgi-bin/query", "q=alpha");
        reg.register("search-b", "http://search.example/cgi-bin/query", "q=beta");
        let a = reg.fetch("search-a").unwrap();
        let b = reg.fetch("search-b").unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.aliases(), vec!["search-a", "search-b"]);
    }

    #[test]
    fn unknown_alias_errors() {
        let (_, reg) = setup();
        assert!(matches!(
            reg.fetch("ghost"),
            Err(FormError::UnknownAlias(_))
        ));
        assert!(!reg.unregister("ghost"));
    }

    #[test]
    fn network_and_http_errors() {
        let (web, reg) = setup();
        reg.register("s", "http://search.example/cgi-bin/query", "q=x");
        web.set_network_up(false);
        assert!(matches!(reg.poll("s"), Err(FormError::Net(_))));
        web.set_network_up(true);
        reg.register("missing", "http://search.example/cgi-bin/other", "q=x");
        assert!(matches!(
            reg.poll("missing"),
            Err(FormError::Http(Status::NotFound))
        ));
    }

    #[test]
    fn reregister_resets_baseline() {
        let (_, reg) = setup();
        reg.register("s", "http://search.example/cgi-bin/query", "q=x");
        reg.poll("s").unwrap();
        reg.register("s", "http://search.example/cgi-bin/query", "q=y");
        let (status, _) = reg.poll("s").unwrap();
        assert_eq!(status, FormStatus::Baseline, "new input, new baseline");
    }

    #[test]
    fn archival_of_form_output_via_snapshot() {
        // The §8.4 end state: POST output stored under RCS and diffable.
        use aide_rcs::repo::MemRepository;
        use aide_snapshot::service::{SnapshotService, UserId};
        use aide_util::time::Duration;
        let (web, reg) = setup();
        let service = SnapshotService::new(
            MemRepository::new(),
            web.clock().clone(),
            8,
            Duration::hours(1),
        );
        let user = UserId::new("u@x");
        reg.register("s", "http://search.example/cgi-bin/query", "q=web");
        let (_, body) = reg.poll("s").unwrap();
        // Archive under a synthetic aide-form: URL.
        let pseudo_url = "aide-form:s";
        service.remember(&user, pseudo_url, &body).unwrap();
        web.set_resource(
            "http://search.example/cgi-bin/query",
            Resource::Cgi {
                template: "<HTML>Results for [{INPUT}]: none found today.</HTML>".to_string(),
                hits: 0,
            },
        )
        .unwrap();
        let (status, body2) = reg.poll("s").unwrap();
        assert_eq!(status, FormStatus::Changed);
        let out = service
            .diff_since_last(&user, pseudo_url, &body2, &Default::default())
            .unwrap();
        assert!(out.html.contains("none found today"));
    }
}
