//! The real-I/O edge: aide-serve on a std TCP listener.
//!
//! The library core is deterministic and socket-free; this example is
//! the entire adapter needed to put it on a real port — a `Connection`
//! impl over `TcpStream` and the bounded accept pool. Run with:
//!
//! ```sh
//! cargo run -p aide-serve --example serve_tcp -- 127.0.0.1:8080
//! ```
//!
//! then browse `/`, `/history?url=…&user=fred@research.att.com`,
//! `/timegate/<url>`, etc. The content is the same three-revision
//! fixture the test suites use.

use aide::engine::AideEngine;
use aide_serve::{AideServer, ConnError, Connection, ServeConfig};
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::config::ThresholdConfig;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// `Connection` over a real socket: the whole adapter.
struct TcpConn(TcpStream);

impl Connection for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, ConnError> {
        self.0.read(buf).map_err(|_| ConnError::Reset)
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), ConnError> {
        self.0.write_all(bytes).map_err(|_| ConnError::Reset)
    }
}

fn fixture_engine() -> Arc<AideEngine> {
    const URL: &str = "http://www.usenix.org/index.html";
    const USER: &str = "fred@research.att.com";
    let t0 = Timestamp::from_ymd_hms(1995, 9, 1, 12, 0, 0);
    let clock = Clock::starting_at(t0);
    let web = Web::new(clock);
    web.set_page(
        URL,
        "<HTML><P>version one body text.</HTML>",
        t0 - Duration::days(1),
    )
    .unwrap();
    let engine = Arc::new(AideEngine::new(web));
    engine.register_user(USER, ThresholdConfig::default());
    engine.remember(USER, URL).unwrap();
    for body in [
        "<HTML><P>version two body text.</HTML>",
        "<HTML><P>version three body text, larger than before.</HTML>",
    ] {
        engine.clock().advance(Duration::days(10));
        engine
            .web()
            .touch_page(URL, body, engine.clock().now())
            .unwrap();
        engine.remember(USER, URL).unwrap();
    }
    engine
}

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let server = Arc::new(AideServer::with_config(
        fixture_engine(),
        ServeConfig::default(),
    ));
    let listener = TcpListener::bind(&addr).expect("bind");
    println!("aide-serve listening on http://{addr}/");

    // The bounded accept pool: N threads all blocked on the one shared
    // listener — the same worker-pool shape as engine::poll_all_users,
    // with the kernel's accept queue standing in for the atomic index.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let server = server.clone();
            let listener = listener.try_clone().expect("clone listener");
            s.spawn(move || {
                while let Ok((stream, _peer)) = listener.accept() {
                    let mut conn = TcpConn(stream);
                    server.handle_connection(&mut conn);
                }
            });
        }
    });
}
