//! Memento (RFC 7089) conformance suite.
//!
//! TimeGate negotiation edge cases, TimeMap listings and pagination,
//! and the required headers — `Vary: accept-datetime`, `Link`,
//! `Memento-Datetime` — asserted byte for byte against the fixture
//! archive (three revisions at known virtual instants).
//!
//! The final test replays a fixed request script and, when
//! `AIDE_SERVE_DUMP` names a file, writes the full wire transcript
//! there; ci.sh runs it twice and `cmp`s the dumps, pinning the whole
//! serving layer — parser, router, renderer, cache — to byte-identical
//! behaviour across runs.

mod common;

use aide_serve::ServeConfig;
use common::{get, get_with, header, rev_dates, server, server_with, status_line, URL};

#[test]
fn timegate_without_accept_datetime_picks_latest() {
    let s = server();
    let [_, _, t3] = rev_dates();
    let resp = get(&s, &format!("/timegate/{URL}"));
    assert_eq!(status_line(&resp), "HTTP/1.1 302 Found");
    assert_eq!(header(&resp, "Vary"), Some("accept-datetime"));
    assert_eq!(
        header(&resp, "Location"),
        Some(format!("/memento/{}/{URL}", t3.to_rcs_date()).as_str())
    );
}

#[test]
fn timegate_malformed_accept_datetime_is_400() {
    let s = server();
    for bad in [
        "yesterday",
        "1995-09-11T12:00:00Z",
        "Mon, 32 Sep 1995 12:00:00 GMT",
        "Mon, 11 Sep 1995 12:00:00",
    ] {
        let resp = get_with(&s, &format!("/timegate/{URL}"), &[("Accept-Datetime", bad)]);
        assert_eq!(
            status_line(&resp),
            "HTTP/1.1 400 Bad Request",
            "Accept-Datetime {bad:?}"
        );
        // Even the error advertises that this resource negotiates.
        assert_eq!(header(&resp, "Vary"), Some("accept-datetime"));
    }
}

#[test]
fn timegate_clamps_before_first_and_after_last() {
    let s = server();
    let [t1, _, t3] = rev_dates();
    // A datetime years before the first revision clamps to the first.
    let resp = get_with(
        &s,
        &format!("/timegate/{URL}"),
        &[("Accept-Datetime", "Thu, 01 Jan 1970 00:00:00 GMT")],
    );
    assert_eq!(status_line(&resp), "HTTP/1.1 302 Found");
    assert_eq!(
        header(&resp, "Location"),
        Some(format!("/memento/{}/{URL}", t1.to_rcs_date()).as_str())
    );
    // A datetime after the last clamps to the last.
    let resp = get_with(
        &s,
        &format!("/timegate/{URL}"),
        &[("Accept-Datetime", "Sat, 01 Jan 2000 00:00:00 GMT")],
    );
    assert_eq!(
        header(&resp, "Location"),
        Some(format!("/memento/{}/{URL}", t3.to_rcs_date()).as_str())
    );
}

#[test]
fn timegate_selects_nearest_revision() {
    let s = server();
    let [t1, t2, _] = rev_dates();
    // Two days after rev 1: rev 1 is nearer than rev 2 (ten days apart).
    let near_first = t1 + aide_util::time::Duration::days(2);
    let resp = get_with(
        &s,
        &format!("/timegate/{URL}"),
        &[("Accept-Datetime", near_first.to_http_date().as_str())],
    );
    assert_eq!(
        header(&resp, "Location"),
        Some(format!("/memento/{}/{URL}", t1.to_rcs_date()).as_str())
    );
    // Two days before rev 2: rev 2 wins.
    let near_second = t2 - aide_util::time::Duration::days(2);
    let resp = get_with(
        &s,
        &format!("/timegate/{URL}"),
        &[("Accept-Datetime", near_second.to_http_date().as_str())],
    );
    assert_eq!(
        header(&resp, "Location"),
        Some(format!("/memento/{}/{URL}", t2.to_rcs_date()).as_str())
    );
    // An exact revision instant names that revision.
    let resp = get_with(
        &s,
        &format!("/timegate/{URL}"),
        &[("Accept-Datetime", t2.to_http_date().as_str())],
    );
    assert_eq!(
        header(&resp, "Location"),
        Some(format!("/memento/{}/{URL}", t2.to_rcs_date()).as_str())
    );
}

#[test]
fn timegate_link_header_byte_for_byte() {
    let s = server();
    let [_, t2, _] = rev_dates();
    let resp = get_with(
        &s,
        &format!("/timegate/{URL}"),
        &[("Accept-Datetime", t2.to_http_date().as_str())],
    );
    let expected = format!(
        "Link: <{URL}>; rel=\"original\", \
         </timemap/{URL}>; rel=\"timemap\"; type=\"application/link-format\", \
         </memento/{stamp}/{URL}>; rel=\"memento\"; datetime=\"{dt}\"\r\n",
        stamp = t2.to_rcs_date(),
        dt = t2.to_http_date(),
    );
    assert!(resp.contains(&expected), "missing Link header in:\n{resp}");
    assert!(resp.contains("Vary: accept-datetime\r\n"));
}

#[test]
fn timegate_unknown_url_is_404() {
    let s = server();
    let resp = get(&s, "/timegate/http://never.example.com/");
    assert_eq!(status_line(&resp), "HTTP/1.1 404 Not Found");
    let resp = get(&s, "/timegate/");
    assert_eq!(status_line(&resp), "HTTP/1.1 400 Bad Request");
}

#[test]
fn memento_exact_stamp_serves_archived_body() {
    let s = server();
    let [_, t2, _] = rev_dates();
    let resp = get(&s, &format!("/memento/{}/{URL}", t2.to_rcs_date()));
    assert_eq!(status_line(&resp), "HTTP/1.1 200 OK");
    // The two RFC 7089 response requirements, byte for byte.
    assert!(
        resp.contains(&format!("Memento-Datetime: {}\r\n", t2.to_http_date())),
        "missing Memento-Datetime in:\n{resp}"
    );
    let expected_link = format!(
        "Link: <{URL}>; rel=\"original\", \
         </timegate/{URL}>; rel=\"timegate\", \
         </timemap/{URL}>; rel=\"timemap\"; type=\"application/link-format\"\r\n"
    );
    assert!(resp.contains(&expected_link), "missing Link in:\n{resp}");
    assert!(resp.contains("version two body text."));
    // Archived copies carry the BASE rewrite, like /view.
    assert!(resp.contains("BASE"));
}

#[test]
fn memento_inexact_stamp_redirects_to_canonical() {
    let s = server();
    let [t1, _, _] = rev_dates();
    let off = t1 + aide_util::time::Duration::hours(3);
    let resp = get(&s, &format!("/memento/{}/{URL}", off.to_rcs_date()));
    assert_eq!(status_line(&resp), "HTTP/1.1 302 Found");
    assert_eq!(
        header(&resp, "Location"),
        Some(format!("/memento/{}/{URL}", t1.to_rcs_date()).as_str())
    );
    // Bad datestamp and missing URL are client errors, not panics.
    assert_eq!(
        status_line(&get(&s, &format!("/memento/not-a-date/{URL}"))),
        "HTTP/1.1 400 Bad Request"
    );
    assert_eq!(
        status_line(&get(&s, "/memento/1995.09.01.12.00.00/")),
        "HTTP/1.1 400 Bad Request"
    );
}

#[test]
fn timemap_lists_all_mementos_in_link_format() {
    let s = server();
    let [t1, t2, t3] = rev_dates();
    let resp = get(&s, &format!("/timemap/{URL}"));
    assert_eq!(status_line(&resp), "HTTP/1.1 200 OK");
    assert_eq!(
        header(&resp, "Content-Type"),
        Some("application/link-format")
    );
    let body = resp.split("\r\n\r\n").nth(1).unwrap();
    assert!(body.starts_with(&format!("<{URL}>;rel=\"original\",\n")));
    assert!(body.contains(&format!("</timegate/{URL}>;rel=\"timegate\",\n")));
    assert!(body.contains(&format!(
        "</timemap/{URL}>;rel=\"self\";type=\"application/link-format\",\n"
    )));
    assert!(body.contains(&format!(
        "</memento/{}/{URL}>;rel=\"first memento\";datetime=\"{}\",\n",
        t1.to_rcs_date(),
        t1.to_http_date()
    )));
    assert!(body.contains(&format!(
        "</memento/{}/{URL}>;rel=\"memento\";datetime=\"{}\",\n",
        t2.to_rcs_date(),
        t2.to_http_date()
    )));
    // The last entry ends the list without a trailing comma.
    assert!(body.ends_with(&format!(
        "</memento/{}/{URL}>;rel=\"last memento\";datetime=\"{}\"\n",
        t3.to_rcs_date(),
        t3.to_http_date()
    )));
}

#[test]
fn timemap_paginates() {
    let s = server_with(ServeConfig {
        timemap_page: 2,
        ..ServeConfig::default()
    });
    let [t1, t2, t3] = rev_dates();
    // Page 0: two mementos and a next link.
    let resp = get(&s, &format!("/timemap/{URL}"));
    let body = resp.split("\r\n\r\n").nth(1).unwrap();
    assert!(body.contains(&t1.to_rcs_date()));
    assert!(body.contains(&t2.to_rcs_date()));
    assert!(!body.contains(&t3.to_rcs_date()));
    assert!(body.contains(&format!(
        "</timemap/1/{URL}>;rel=\"next\";type=\"application/link-format\",\n"
    )));
    assert!(!body.contains("rel=\"prev\""));
    // Page 1: the last memento and a prev link back to page 0.
    let resp = get(&s, &format!("/timemap/1/{URL}"));
    let body = resp.split("\r\n\r\n").nth(1).unwrap();
    assert!(!body.contains(&t1.to_rcs_date()));
    assert!(body.contains(&format!(
        "</memento/{}/{URL}>;rel=\"last memento\"",
        t3.to_rcs_date()
    )));
    assert!(body.contains(&format!(
        "</timemap/{URL}>;rel=\"prev\";type=\"application/link-format\",\n"
    )));
    // Past the end: 404. Unknown URL: 404.
    assert_eq!(
        status_line(&get(&s, &format!("/timemap/2/{URL}"))),
        "HTTP/1.1 404 Not Found"
    );
    assert_eq!(
        status_line(&get(&s, "/timemap/http://never.example.com/")),
        "HTTP/1.1 404 Not Found"
    );
}

#[test]
fn deterministic_transcript() {
    // A fixed request script over a fresh fixture. The transcript is a
    // pure function of the fixture: ci.sh runs this test twice with
    // AIDE_SERVE_DUMP set and cmp's the two files.
    let [t1, t2, _] = rev_dates();
    let script: Vec<String> = vec![
        "/".to_string(),
        format!("/history?url={URL}&user={}", common::USER),
        format!("/diff?url={URL}&from=1.1&to=1.2"),
        format!("/view?url={URL}&rev=1.1"),
        format!("/timegate/{URL}"),
        format!("/timemap/{URL}"),
        format!("/memento/{}/{URL}", t1.to_rcs_date()),
        format!("/memento/{}/{URL}", t2.to_rcs_date()),
        format!("/diff?url={URL}&from=1.1&to=1.2"), // render-cache replay
        "/nowhere".to_string(),
    ];
    let run = || {
        let s = server();
        let mut transcript = String::new();
        for target in &script {
            transcript.push_str(&format!(">>> GET {target}\n"));
            transcript.push_str(&get(&s, target));
            transcript.push('\n');
        }
        transcript
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two fixture runs must be byte-identical");
    if let Ok(path) = std::env::var("AIDE_SERVE_DUMP") {
        std::fs::write(path, a).unwrap();
    }
}
