//! HTTP/1.1 torture tests.
//!
//! Every adversarial framing a real network can produce — malformed
//! request lines, oversized headers, truncated bodies, byte-at-a-time
//! delivery, pipelining, mid-exchange hangups — must end in a clean
//! 4xx/5xx or a closed connection. Never a panic, never a wedged
//! worker: the batch test at the bottom proves a pool fed garbage keeps
//! serving the well-formed connections around it.

mod common;

use aide_serve::{Connection, ScriptedConn, ServeConfig};
use aide_simweb::wire::Limits;
use common::{header, server, server_with, status_line, URL, USER};

fn raw(server: &aide_serve::AideServer, bytes: &[u8]) -> (String, aide_serve::ConnOutcome) {
    let mut conn = ScriptedConn::new(bytes.to_vec());
    let outcome = server.handle_connection(&mut conn);
    (conn.output_text(), outcome)
}

#[test]
fn malformed_request_lines_get_400_and_close() {
    let s = server();
    for bad in [
        &b"\r\n\r\n"[..],
        b"GET\r\n\r\n",
        b"GET /\r\n\r\n",
        b"GET / HTTP/1.1 extra\r\n\r\n",
        b"G@T / HTTP/1.1\r\n\r\n",
        b"GET / SPDY/3\r\n\r\n",
        b"\xff\xfe / HTTP/1.1\r\n\r\n",
    ] {
        let (resp, outcome) = raw(&s, bad);
        assert!(
            resp.starts_with("HTTP/1.1 400 ") || resp.starts_with("HTTP/1.1 501 "),
            "{bad:?} => {resp}"
        );
        assert!(outcome.protocol_error);
        assert_eq!(outcome.requests, 0);
        assert!(resp.contains("Connection: close\r\n"));
    }
}

#[test]
fn oversized_inputs_get_specific_4xx() {
    let s = server_with(ServeConfig {
        limits: Limits {
            max_request_line: 64,
            max_header_bytes: 256,
            max_headers: 4,
            max_body: 128,
        },
        ..ServeConfig::default()
    });
    // Request line past the limit — even with no CRLF ever arriving.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(200));
    let (resp, _) = raw(&s, long.as_bytes());
    assert_eq!(status_line(&resp), "HTTP/1.1 414 URI Too Long");
    let (resp, _) = raw(&s, &vec![b'a'; 500]);
    assert_eq!(status_line(&resp), "HTTP/1.1 414 URI Too Long");
    // Header section past the byte limit.
    let big_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(400));
    let (resp, _) = raw(&s, big_header.as_bytes());
    assert_eq!(
        status_line(&resp),
        "HTTP/1.1 431 Request Header Fields Too Large"
    );
    // Too many header fields.
    let many = format!(
        "GET / HTTP/1.1\r\n{}\r\n",
        (0..6).map(|i| format!("H{i}: v\r\n")).collect::<String>()
    );
    let (resp, _) = raw(&s, many.as_bytes());
    assert_eq!(
        status_line(&resp),
        "HTTP/1.1 431 Request Header Fields Too Large"
    );
    // Declared body past the limit.
    let (resp, _) = raw(&s, b"POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
    assert_eq!(status_line(&resp), "HTTP/1.1 413 Payload Too Large");
}

#[test]
fn truncated_body_gets_400_on_eof() {
    let s = server();
    let (resp, outcome) = raw(
        &s,
        b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nonly a little",
    );
    assert_eq!(status_line(&resp), "HTTP/1.1 400 Bad Request");
    assert!(resp.contains("truncated request"));
    assert!(outcome.protocol_error);
    // Truncated header section, same story.
    let (resp, _) = raw(&s, b"GET / HTTP/1.1\r\nHost: half");
    assert_eq!(status_line(&resp), "HTTP/1.1 400 Bad Request");
}

#[test]
fn byte_at_a_time_request_still_serves() {
    let s = server();
    let req = format!("GET /view?url={URL}&rev=1.1 HTTP/1.1\r\nHost: aide\r\n\r\n");
    let mut conn = ScriptedConn::byte_at_a_time(req.as_bytes());
    let outcome = s.handle_connection(&mut conn);
    assert_eq!(outcome.requests, 1);
    let resp = conn.output_text();
    assert_eq!(status_line(&resp), "HTTP/1.1 200 OK");
    assert!(resp.contains("version one body text."));
}

#[test]
fn keep_alive_serves_many_then_connection_close_ends() {
    let s = server();
    let req1 = format!("GET /view?url={URL}&rev=1.1 HTTP/1.1\r\n\r\n");
    let req2 = format!("GET /view?url={URL}&rev=1.2 HTTP/1.1\r\n\r\n");
    let req3 = format!("GET /view?url={URL}&rev=1.3 HTTP/1.1\r\nConnection: close\r\n\r\n");
    let never = "GET /never HTTP/1.1\r\n\r\n".to_string();
    let mut conn = ScriptedConn::chunked(vec![
        req1.into_bytes(),
        req2.into_bytes(),
        req3.into_bytes(),
        never.into_bytes(),
    ]);
    let outcome = s.handle_connection(&mut conn);
    // The fourth request sits after Connection: close — never served.
    assert_eq!(outcome.requests, 3);
    let resp = conn.output_text();
    assert_eq!(resp.matches("HTTP/1.1 200 OK").count(), 3);
    assert!(resp.contains("version three body text"));
}

#[test]
fn pipelined_requests_all_answered_in_order() {
    let s = server();
    let burst = format!(
        "GET /view?url={URL}&rev=1.1 HTTP/1.1\r\n\r\n\
         GET /view?url={URL}&rev=1.2 HTTP/1.1\r\n\r\n\
         GET /nowhere HTTP/1.1\r\nConnection: close\r\n\r\n"
    );
    let mut conn = ScriptedConn::new(burst.into_bytes());
    let outcome = s.handle_connection(&mut conn);
    assert_eq!(outcome.requests, 3);
    let resp = conn.output_text();
    let one = resp.find("version one body text.").expect("rev 1.1 served");
    let two = resp.find("version two body text.").expect("rev 1.2 served");
    let nf = resp.find("404 Not Found").expect("404 last");
    assert!(one < two && two < nf, "responses in request order");
}

#[test]
fn premature_close_never_panics_or_wedges() {
    let s = server();
    // Reset before any bytes.
    let mut conn = ScriptedConn::chunked(vec![]).then_reset();
    let outcome = s.handle_connection(&mut conn);
    assert_eq!(outcome.requests, 0);
    // Reset mid-request.
    let mut conn = ScriptedConn::new(b"GET /view?url=".to_vec()).then_reset();
    let outcome = s.handle_connection(&mut conn);
    assert_eq!(outcome.requests, 0);
    // Reset after a complete request: the response write fails silently.
    let req = format!("GET /view?url={URL}&rev=1.1 HTTP/1.1\r\n\r\n");
    let mut conn = ScriptedConn::new(req.into_bytes()).then_reset();
    let outcome = s.handle_connection(&mut conn);
    assert_eq!(outcome.requests, 1);
}

#[test]
fn method_discipline() {
    let s = server();
    let (resp, _) = raw(&s, b"POST /report HTTP/1.1\r\nContent-Length: 3\r\n\r\na=b");
    assert_eq!(status_line(&resp), "HTTP/1.1 501 Not Implemented");
    assert!(resp.contains("POST"), "explains the \u{a7}8.4 refusal");
    let (resp, _) = raw(&s, b"DELETE / HTTP/1.1\r\n\r\n");
    assert_eq!(status_line(&resp), "HTTP/1.1 405 Method Not Allowed");
    assert_eq!(header(&resp, "Allow"), Some("GET, HEAD"));
    let (resp, _) = raw(&s, b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    assert_eq!(status_line(&resp), "HTTP/1.1 501 Not Implemented");
    // Absolute-form targets belong to proxies, not this origin server.
    let (resp, _) = raw(&s, b"GET http://elsewhere/ HTTP/1.1\r\n\r\n");
    assert_eq!(status_line(&resp), "HTTP/1.1 400 Bad Request");
}

#[test]
fn head_returns_headers_without_body() {
    let s = server();
    let req = format!("HEAD /view?url={URL}&rev=1.1 HTTP/1.1\r\nConnection: close\r\n\r\n");
    let mut conn = ScriptedConn::new(req.into_bytes());
    s.handle_connection(&mut conn);
    let resp = conn.output_text();
    assert_eq!(status_line(&resp), "HTTP/1.1 200 OK");
    let length: usize = header(&resp, "Content-Length").unwrap().parse().unwrap();
    assert!(length > 0, "HEAD keeps the would-be Content-Length");
    assert!(resp.ends_with("\r\n\r\n"), "but carries no body");
}

#[test]
fn http10_closes_by_default() {
    let s = server();
    let burst = format!(
        "GET /view?url={URL}&rev=1.1 HTTP/1.0\r\n\r\n\
         GET /view?url={URL}&rev=1.2 HTTP/1.0\r\n\r\n"
    );
    let mut conn = ScriptedConn::new(burst.into_bytes());
    let outcome = s.handle_connection(&mut conn);
    assert_eq!(outcome.requests, 1, "1.0 without keep-alive closes");
    assert!(conn.output_text().contains("Connection: close\r\n"));
}

#[test]
fn keepalive_bound_closes_eventually() {
    let s = server_with(ServeConfig {
        max_keepalive: 3,
        ..ServeConfig::default()
    });
    let req = format!("GET /view?url={URL}&rev=1.1 HTTP/1.1\r\n\r\n");
    let mut conn = ScriptedConn::new(req.repeat(10).into_bytes());
    let outcome = s.handle_connection(&mut conn);
    assert_eq!(outcome.requests, 3, "bounded keep-alive");
}

#[test]
fn garbage_batch_does_not_wedge_the_pool() {
    let s = server();
    let good = format!("GET /history?url={URL}&user={USER} HTTP/1.1\r\nConnection: close\r\n\r\n");
    let mut conns = Vec::new();
    for i in 0..32 {
        conns.push(match i % 4 {
            0 => ScriptedConn::new(good.clone().into_bytes()),
            1 => ScriptedConn::new(b"NONSENSE!!\r\n\r\n".to_vec()),
            2 => ScriptedConn::new(b"GET /trunc".to_vec()).then_reset(),
            _ => ScriptedConn::byte_at_a_time(good.as_bytes()),
        });
    }
    let served = s.serve_batch(conns, 4);
    assert_eq!(served.len(), 32);
    for (i, conn) in served.iter().enumerate() {
        match i % 4 {
            0 | 3 => assert!(
                conn.output_text().starts_with("HTTP/1.1 200 OK"),
                "conn {i}: {}",
                conn.output_text()
            ),
            1 => assert!(conn.output_text().starts_with("HTTP/1.1 400 ")),
            _ => {} // reset mid-request: nothing owed
        }
    }
    assert_eq!(s.stats().connections(), 32);
}

#[test]
fn write_through_trait_object() {
    // The Connection seam stays object-safe (the TCP adapter relies on
    // generic dispatch, but a dyn check keeps the trait honest).
    let s = server();
    let conn: &mut dyn Connection =
        &mut ScriptedConn::new(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec());
    let mut probe = [0u8; 4];
    assert!(conn.read(&mut probe).is_ok());
    let _ = s;
}
