//! Shared fixture: a three-revision archive behind a server, plus a
//! scripted HTTP client. Everything runs on the virtual clock — two
//! builds of this fixture are byte-identical.

// Each test binary uses its own slice of the fixture.
#![allow(dead_code)]

use aide::engine::AideEngine;
use aide_rcs::repo::Repository;
use aide_serve::{AideServer, ScriptedConn, ServeConfig};
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::config::ThresholdConfig;
use std::sync::Arc;

pub const URL: &str = "http://www.usenix.org/index.html";
pub const USER: &str = "fred@research.att.com";

/// Check-in instants of the three fixture revisions.
pub fn rev_dates() -> [Timestamp; 3] {
    let t0 = Timestamp::from_ymd_hms(1995, 9, 1, 12, 0, 0);
    [t0, t0 + Duration::days(10), t0 + Duration::days(20)]
}

/// A web whose fixture page will go through three versions, and the
/// clock driving it.
pub fn fixture_web() -> Web {
    let [t0, _, _] = rev_dates();
    let clock = Clock::starting_at(t0);
    let web = Web::new(clock);
    web.set_page(
        URL,
        "<HTML><P>version one body text.</HTML>",
        t0 - Duration::days(1),
    )
    .unwrap();
    web
}

/// Drives `engine` through the three check-ins (1.1, 1.2, 1.3 at the
/// [`rev_dates`] instants).
pub fn populate<R: Repository>(engine: &AideEngine<R>) {
    engine.register_user(USER, ThresholdConfig::default());
    engine.remember(USER, URL).unwrap();
    for body in [
        "<HTML><P>version two body text.</HTML>",
        "<HTML><P>version three body text, larger than before.</HTML>",
    ] {
        engine.clock().advance(Duration::days(10));
        engine
            .web()
            .touch_page(URL, body, engine.clock().now())
            .unwrap();
        engine.remember(USER, URL).unwrap();
    }
}

/// The standard in-memory fixture server.
pub fn server() -> AideServer {
    server_with(ServeConfig::default())
}

/// The fixture server with explicit tuning.
pub fn server_with(cfg: ServeConfig) -> AideServer {
    let engine = Arc::new(AideEngine::new(fixture_web()));
    populate(&engine);
    AideServer::with_config(engine, cfg)
}

/// One GET over a fresh connection; returns the raw response text.
pub fn get<R: Repository>(server: &AideServer<R>, target: &str) -> String {
    get_with(server, target, &[])
}

/// One GET with extra headers over a fresh connection.
pub fn get_with<R: Repository>(
    server: &AideServer<R>,
    target: &str,
    headers: &[(&str, &str)],
) -> String {
    let mut req = format!("GET {target} HTTP/1.1\r\nHost: aide\r\n");
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str("Connection: close\r\n\r\n");
    let mut conn = ScriptedConn::new(req.into_bytes());
    server.handle_connection(&mut conn);
    conn.output_text()
}

/// First line of a response.
pub fn status_line(resp: &str) -> &str {
    resp.split("\r\n").next().unwrap_or("")
}

/// Value of `name` in the response headers, if present.
pub fn header<'a>(resp: &'a str, name: &str) -> Option<&'a str> {
    let prefix = format!("{}:", name.to_ascii_lowercase());
    resp.split("\r\n\r\n")
        .next()
        .unwrap_or("")
        .split("\r\n")
        .find_map(|line| {
            let lower = line.to_ascii_lowercase();
            lower
                .starts_with(&prefix)
                .then(|| line[prefix.len()..].trim())
        })
}
