//! Real-socket smoke test.
//!
//! The deterministic suites drive the server through scripted
//! connections; this one check proves the `Connection` seam genuinely
//! carries a std TCP stream — bind an ephemeral port, serve accepted
//! sockets with the same worker-pool idiom as `examples/serve_tcp.rs`,
//! and make a few requests with a plain `TcpStream` client.

mod common;

use aide::engine::AideEngine;
use aide_serve::{AideServer, ConnError, Connection};
use common::{fixture_web, populate, URL, USER};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

struct TcpConn(TcpStream);

impl Connection for TcpConn {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, ConnError> {
        self.0.read(buf).map_err(|_| ConnError::Reset)
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), ConnError> {
        self.0.write_all(bytes).map_err(|_| ConnError::Reset)
    }
}

fn request_over_tcp(addr: std::net::SocketAddr, req: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(req.as_bytes()).unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn serves_real_sockets() {
    let engine = Arc::new(AideEngine::new(fixture_web()));
    populate(&engine);
    let server = Arc::new(AideServer::new(engine));

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    const CONNS: usize = 4;

    let acceptor = {
        let server = server.clone();
        std::thread::spawn(move || {
            for _ in 0..CONNS {
                let (stream, _) = listener.accept().unwrap();
                let mut conn = TcpConn(stream);
                server.handle_connection(&mut conn);
            }
        })
    };

    let resp = request_over_tcp(
        addr,
        &format!("GET /view?url={URL}&rev=1.2 HTTP/1.1\r\nConnection: close\r\n\r\n"),
    );
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
    assert!(resp.contains("version two body text."));

    let resp = request_over_tcp(
        addr,
        &format!("GET /history?url={URL}&user={USER} HTTP/1.1\r\nConnection: close\r\n\r\n"),
    );
    assert!(resp.contains("1.3"));

    // Keep-alive over a real socket: two requests, one connection.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "GET /view?url={URL}&rev=1.1 HTTP/1.1\r\n\r\n\
                 GET /view?url={URL}&rev=1.3 HTTP/1.1\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 2);

    // Garbage over a real socket: a 4xx, not a hang.
    let resp = request_over_tcp(addr, "EXPLODE\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    acceptor.join().unwrap();
}
