//! Conditional GET and render-cache correctness.
//!
//! The ETag scheme is content-derived (FNV over immutable archive
//! identifiers — see DESIGN.md §4j), which makes three strong promises
//! testable: the same page has the same ETag on the in-memory and disk
//! backends, ETags survive a full storage restart, and `If-None-Match`
//! answers 304 without invoking HtmlDiff or even probing the render
//! cache. Counters (`serve.render_cache.{hit,miss}` mirrors plus the
//! snapshot service's `htmldiff_invocations`) prove the zero-work
//! claims rather than trusting the status code.

mod common;

use aide::engine::AideEngine;
use aide_serve::AideServer;
use aide_store::{DiskRepository, StoreOptions};
use aide_util::time::Duration;
use aide_util::vfs::{MemVfs, Vfs};
use common::{fixture_web, get, get_with, header, populate, server, status_line, URL, USER};
use std::sync::Arc;

/// The fixture on the persistent backend over a shared in-memory VFS.
fn disk_server(vfs: Arc<MemVfs>) -> AideServer<DiskRepository> {
    let repo = DiskRepository::open(vfs as Arc<dyn Vfs>, "aide", StoreOptions::default()).unwrap();
    let engine = Arc::new(AideEngine::with_repository(fixture_web(), repo));
    populate(&engine);
    AideServer::new(engine)
}

/// A server over an already-populated store: reopen, register the user,
/// but do not re-remember anything.
fn reopened_server(vfs: Arc<MemVfs>) -> AideServer<DiskRepository> {
    let repo = DiskRepository::open(vfs as Arc<dyn Vfs>, "aide", StoreOptions::default()).unwrap();
    let engine = Arc::new(AideEngine::with_repository(fixture_web(), repo));
    engine.register_user(USER, aide_w3newer::config::ThresholdConfig::default());
    AideServer::new(engine)
}

fn etag_of(server_resp: &str) -> String {
    header(server_resp, "ETag")
        .unwrap_or_else(|| panic!("no ETag in:\n{server_resp}"))
        .to_string()
}

#[test]
fn etags_are_stable_and_present_on_cacheable_routes() {
    let s = server();
    for target in [
        format!("/diff?url={URL}&from=1.1&to=1.2"),
        format!("/view?url={URL}&rev=1.2"),
        format!("/history?url={URL}&user={USER}"),
        format!("/timemap/{URL}"),
    ] {
        let first = get(&s, &target);
        assert_eq!(status_line(&first), "HTTP/1.1 200 OK", "{target}");
        let second = get(&s, &target);
        assert_eq!(etag_of(&first), etag_of(&second), "{target}");
    }
    // The report is dynamic: no ETag, explicitly uncacheable.
    let report = get(&s, &format!("/report?user={USER}"));
    assert_eq!(header(&report, "ETag"), None);
    assert_eq!(header(&report, "Cache-Control"), Some("no-cache"));
}

#[test]
fn etags_agree_across_backends() {
    let mem = server();
    let disk = disk_server(MemVfs::shared());
    for target in [
        format!("/diff?url={URL}&from=1.1&to=1.3"),
        format!("/view?url={URL}&rev=1.1"),
        format!("/history?url={URL}&user={USER}"),
        format!("/timemap/{URL}"),
    ] {
        let a = get(&mem, &target);
        let b = get(&disk, &target);
        assert_eq!(etag_of(&a), etag_of(&b), "{target}");
        // Not just the tag: the whole page agrees.
        assert_eq!(
            a.split("\r\n\r\n").nth(1),
            b.split("\r\n\r\n").nth(1),
            "{target}"
        );
    }
}

#[test]
fn etags_survive_storage_restart() {
    let vfs = MemVfs::shared();
    let target = format!("/diff?url={URL}&from=1.1&to=1.2");
    let view = format!("/view?url={URL}&rev=1.3");
    let (etag_diff, etag_view) = {
        let s = disk_server(vfs.clone());
        (etag_of(&get(&s, &target)), etag_of(&get(&s, &view)))
    };
    // A brand-new server over a reopened repository: recovery replays
    // the WAL/segments, and the same pages carry the same tags.
    let s = reopened_server(vfs);
    assert_eq!(etag_of(&get(&s, &target)), etag_diff);
    assert_eq!(etag_of(&get(&s, &view)), etag_view);
    // ...so a client resuming with its old validator gets a 304.
    let resp = get_with(&s, &target, &[("If-None-Match", &etag_diff)]);
    assert_eq!(status_line(&resp), "HTTP/1.1 304 Not Modified");
}

#[test]
fn if_none_match_answers_304_with_zero_recomputation() {
    let s = server();
    let target = format!("/diff?url={URL}&from=1.2&to=1.3");
    let first = get(&s, &target);
    let etag = etag_of(&first);
    let rendered = s.engine().snapshot().snapshot_stats().htmldiff_invocations;
    let misses = s.cache_stats().misses();
    let hits = s.cache_stats().hits();

    for _ in 0..5 {
        let resp = get_with(&s, &target, &[("If-None-Match", &etag)]);
        assert_eq!(status_line(&resp), "HTTP/1.1 304 Not Modified");
        assert_eq!(header(&resp, "ETag").unwrap(), etag);
        assert!(!resp.contains("<HTML"), "304 carries no body");
    }
    let stats = s.engine().snapshot().snapshot_stats();
    assert_eq!(
        stats.htmldiff_invocations, rendered,
        "304 path must not touch HtmlDiff"
    );
    assert_eq!(s.cache_stats().misses(), misses, "no render-cache miss");
    assert_eq!(s.cache_stats().hits(), hits, "not even a cache probe");
    assert_eq!(s.stats().not_modified(), 5);

    // A stale validator still gets the full page.
    let resp = get_with(&s, &target, &[("If-None-Match", "\"v-0000000000000000\"")]);
    assert_eq!(status_line(&resp), "HTTP/1.1 200 OK");
}

#[test]
fn render_cache_replays_without_rerendering() {
    let s = server();
    let target = format!("/diff?url={URL}&from=1.1&to=1.2");
    let first = get(&s, &target);
    let after_first = s.engine().snapshot().snapshot_stats().htmldiff_invocations;
    assert_eq!(s.cache_stats().misses(), 1);
    let second = get(&s, &target);
    assert_eq!(first, second, "replayed page is byte-identical");
    assert_eq!(s.cache_stats().hits(), 1);
    assert_eq!(
        s.engine().snapshot().snapshot_stats().htmldiff_invocations,
        after_first,
        "second request came from the render cache"
    );
}

#[test]
fn new_checkin_invalidates_history_but_not_old_diffs() {
    let s = server();
    let history = format!("/history?url={URL}&user={USER}");
    let diff = format!("/diff?url={URL}&from=1.1&to=1.2");
    let old_history_etag = etag_of(&get(&s, &history));
    let old_diff_etag = etag_of(&get(&s, &diff));

    // A fourth revision arrives.
    let e = s.engine();
    e.clock().advance(Duration::days(5));
    e.web()
        .touch_page(
            URL,
            "<HTML><P>version four body text.</HTML>",
            e.clock().now(),
        )
        .unwrap();
    e.remember(USER, URL).unwrap();

    // The history page changed identity: the old validator re-fetches.
    let resp = get_with(&s, &history, &[("If-None-Match", &old_history_etag)]);
    assert_eq!(status_line(&resp), "HTTP/1.1 200 OK");
    assert_ne!(etag_of(&resp), old_history_etag);
    assert!(resp.contains("1.4"));

    // Immutable revision pairs keep their identity: still a 304.
    let resp = get_with(&s, &diff, &[("If-None-Match", &old_diff_etag)]);
    assert_eq!(status_line(&resp), "HTTP/1.1 304 Not Modified");

    // The timemap also rolls over (it now lists four mementos).
    let timemap = format!("/timemap/{URL}");
    assert!(get(&s, &timemap).contains("1995.09.26."));
}

#[test]
fn seen_flags_are_part_of_the_history_identity() {
    // Viewing a diff marks revisions seen, which changes the *content*
    // of the history page — so it must change the ETag too, or a
    // conditional client would cache a stale "unseen" page forever.
    let s = server();
    let history = format!("/history?url={URL}&user={USER}");
    let before = etag_of(&get(&s, &history));
    // remember() during fixture setup already marked everything seen;
    // register a second user whose control file is empty.
    s.engine().register_user(
        "observer@x",
        aide_w3newer::config::ThresholdConfig::default(),
    );
    let other = format!("/history?url={URL}&user=observer@x");
    let other_etag = etag_of(&get(&s, &other));
    assert_ne!(before, other_etag, "different seen-state, different tag");
}
