//! The HTTP/1.1 server core: routing, conditional GET, Memento.
//!
//! [`AideServer`] wraps an [`AideEngine`] and serves it over any
//! [`Connection`]. The §8.1 CGI operations become first-class routes:
//!
//! | route | serves |
//! |---|---|
//! | `/` | index: endpoints and the archived-URL census |
//! | `/report?user=U` | the w3newer Figure-1 change report |
//! | `/history?url=X&user=U` | per-URL revision history (`rlog`) |
//! | `/diff?url=X&from=1.N&to=1.M` | cached HtmlDiff page (`rcsdiff`) |
//! | `/view?url=X&rev=1.N` | one archived revision (`co`) |
//! | `/timegate/<url>` | Memento datetime negotiation (RFC 7089) |
//! | `/timemap/[<page>/]<url>` | Memento TimeMap (`application/link-format`) |
//! | `/memento/<rcs-date>/<url>` | one archived snapshot with `Memento-Datetime` |
//!
//! Every page whose bytes are a pure function of immutable archive
//! state carries a content-derived ETag (see `DESIGN.md` §4j for the
//! scheme), so `If-None-Match` answers 304 without touching HtmlDiff,
//! and the [`RenderCache`] replays full bodies without re-rendering.
//! POST is refused with 501, honouring §8.4 ("the input to the services
//! is not stored").

use crate::cache::{CachedPage, RenderCache};
use crate::conn::{ConnError, Connection};
use aide::cgi::parse_query;
use aide::engine::AideEngine;
use aide_htmldiff::Options as DiffOptions;
use aide_htmlkit::entity::encode_entities;
use aide_rcs::archive::RevId;
use aide_rcs::repo::{MemRepository, Repository};
use aide_simweb::wire::{error_response, Limits, RequestParser, WireRequest, WireResponse};
use aide_util::checksum::fnv1a64;
use aide_util::time::Timestamp;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning knobs for one server instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Parser limits applied per connection.
    pub limits: Limits,
    /// Total pages held by the render cache.
    pub cache_pages: usize,
    /// Mementos listed per TimeMap page.
    pub timemap_page: usize,
    /// Requests served on one connection before the server closes it
    /// (keep-alive bound, like httpd's `MaxKeepAliveRequests`).
    pub max_keepalive: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            limits: Limits::default(),
            cache_pages: 512,
            timemap_page: 50,
            max_keepalive: 100,
        }
    }
}

/// Server counters, mirrored to `serve.*` obs metrics at the moment
/// they change and readable as plain atomics in tests.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicU64,
    not_modified: AtomicU64,
    parse_errors: AtomicU64,
    connections: AtomicU64,
    bytes_out: AtomicU64,
}

impl ServeStats {
    /// Requests answered (any status).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// `If-None-Match` hits answered 304.
    pub fn not_modified(&self) -> u64 {
        self.not_modified.load(Ordering::Relaxed)
    }

    /// Connections that died of a protocol error.
    pub fn parse_errors(&self) -> u64 {
        self.parse_errors.load(Ordering::Relaxed)
    }

    /// Connections served.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Response bytes written.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }
}

/// What became of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnOutcome {
    /// Requests answered on this connection.
    pub requests: usize,
    /// Whether the connection ended on a protocol error.
    pub protocol_error: bool,
}

/// The serving layer over one engine.
pub struct AideServer<R: Repository = MemRepository> {
    engine: Arc<AideEngine<R>>,
    cfg: ServeConfig,
    cache: RenderCache,
    stats: ServeStats,
}

impl<R: Repository> AideServer<R> {
    /// Wraps `engine` with default [`ServeConfig`].
    pub fn new(engine: Arc<AideEngine<R>>) -> AideServer<R> {
        AideServer::with_config(engine, ServeConfig::default())
    }

    /// Wraps `engine` with explicit tuning.
    pub fn with_config(engine: Arc<AideEngine<R>>, cfg: ServeConfig) -> AideServer<R> {
        AideServer {
            engine,
            cache: RenderCache::new(cfg.cache_pages),
            cfg,
            stats: ServeStats::default(),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &AideEngine<R> {
        &self.engine
    }

    /// Server counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Render-cache counters.
    pub fn cache_stats(&self) -> &crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Serves `conn` to completion: reads requests (however the
    /// transport chunks them), answers each, honours keep-alive and
    /// pipelining, and never panics — a malformed stream earns one
    /// error response and a close.
    pub fn handle_connection<C: Connection>(&self, conn: &mut C) -> ConnOutcome {
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        aide_obs::counter("serve.connections", 1);
        let mut parser = RequestParser::with_limits(self.cfg.limits);
        let mut buf = [0u8; 4096];
        let mut served = 0usize;
        let mut protocol_error = false;
        'conn: loop {
            // Drain every complete request already buffered (pipelining)
            // before going back to the transport.
            loop {
                match parser.take_request() {
                    Ok(Some(req)) => {
                        let head_only = req.method == "HEAD";
                        let close = !req.keep_alive() || served + 1 >= self.cfg.max_keepalive;
                        let mut resp = self.respond(&req);
                        if close {
                            resp = resp.header("Connection", "close");
                        }
                        served += 1;
                        if self.write(conn, &resp, head_only).is_err() || close {
                            break 'conn;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        protocol_error = true;
                        self.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                        aide_obs::counter("serve.parse_error", 1);
                        let resp = self.finish(error_response(e.status(), &e.to_string()));
                        let _ = self.write(conn, &resp, false);
                        break 'conn;
                    }
                }
            }
            match conn.read(&mut buf) {
                Ok(0) => {
                    // Orderly EOF mid-request: a truncated request gets
                    // one 400 so the client knows; a clean boundary is
                    // just the end of the conversation.
                    if parser.buffered() > 0 {
                        protocol_error = true;
                        self.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                        aide_obs::counter("serve.parse_error", 1);
                        let resp = self.finish(error_response(400, "truncated request"));
                        let _ = self.write(conn, &resp, false);
                    }
                    break;
                }
                Ok(n) => parser.push(&buf[..n]),
                Err(ConnError::Reset) => break,
            }
        }
        aide_obs::observe("serve.requests_per_conn", served as u64);
        ConnOutcome {
            requests: served,
            protocol_error,
        }
    }

    /// Serves a batch of connections over `workers` scoped threads (the
    /// engine's bounded worker-pool idiom: shared atomic next-index, no
    /// channels), returning the connections in their original order.
    pub fn serve_batch<C: Connection + Send>(&self, conns: Vec<C>, workers: usize) -> Vec<C> {
        let slots: Vec<aide_util::sync::Mutex<Option<C>>> = conns
            .into_iter()
            .map(|c| aide_util::sync::Mutex::new(Some(c)))
            .collect();
        let workers = workers.clamp(1, slots.len().max(1));
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(i) else { break };
                    // Take the connection out rather than holding the
                    // slot mutex across the handler: handling reaches
                    // the engine's own locks, which must not nest under
                    // a structure guard.
                    let taken = slot.lock().take();
                    if let Some(mut conn) = taken {
                        self.handle_connection(&mut conn);
                        *slot.lock() = Some(conn);
                    }
                });
            }
        });
        slots.into_iter().filter_map(|s| s.into_inner()).collect()
    }

    /// Publishes aggregate server counters as gauges on the installed
    /// obs subscriber (no-op without one), alongside the engine's own.
    pub fn publish_obs(&self) {
        if !aide_obs::enabled() {
            return;
        }
        aide_obs::gauge("serve.total.requests", self.stats.requests());
        aide_obs::gauge("serve.total.not_modified", self.stats.not_modified());
        aide_obs::gauge("serve.total.parse_errors", self.stats.parse_errors());
        aide_obs::gauge("serve.total.connections", self.stats.connections());
        aide_obs::gauge("serve.total.bytes_out", self.stats.bytes_out());
        aide_obs::gauge("serve.render_cache.pages", self.cache.len() as u64);
        self.engine.publish_obs();
    }

    fn write<C: Connection>(
        &self,
        conn: &mut C,
        resp: &WireResponse,
        head_only: bool,
    ) -> Result<(), ConnError> {
        let bytes = resp.serialize(head_only);
        self.stats
            .bytes_out
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        conn.write_all(&bytes)
    }

    /// Stamps the headers every response carries.
    fn finish(&self, resp: WireResponse) -> WireResponse {
        let class = match resp.status / 100 {
            2 => "serve.http.2xx",
            3 => "serve.http.3xx",
            4 => "serve.http.4xx",
            _ => "serve.http.5xx",
        };
        aide_obs::counter(class, 1);
        resp.header("Server", "aide-serve/0.1")
            .header("Date", &self.engine.clock().now().to_http_date())
    }

    /// Routes one parsed request to a response. Infallible by design:
    /// every failure mode is an HTTP error page.
    pub fn respond(&self, req: &WireRequest) -> WireResponse {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        aide_obs::counter("serve.requests", 1);
        match req.method.as_str() {
            "GET" | "HEAD" => {}
            "POST" => {
                return self.finish(error_response(
                    501,
                    "AIDE cannot track POST services: the form input is not stored. \
                     Save the filled-out form and use a GET URL instead.",
                ))
            }
            _ => {
                return self.finish(
                    error_response(405, "only GET and HEAD are served")
                        .header("Allow", "GET, HEAD"),
                )
            }
        }
        let target = req.target.as_str();
        if !target.starts_with('/') {
            return self.finish(error_response(400, "origin-form request target required"));
        }
        // Memento-family routes embed the archived URL — query string
        // and all — in the path, so they route on the raw target.
        if let Some(url) = target.strip_prefix("/timegate/") {
            return self.finish(self.timegate(req, url));
        }
        if let Some(rest) = target.strip_prefix("/timemap/") {
            return self.finish(self.timemap(req, rest));
        }
        if let Some(rest) = target.strip_prefix("/memento/") {
            return self.finish(self.memento(req, rest));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let params = parse_query(query).params;
        let resp = match path {
            "/" => self.index(),
            "/report" => match params.get("user") {
                Some(user) => match self.engine.tracker_report_html(user) {
                    // The report polls the live (simulated) Web — never
                    // cached, never conditional.
                    Ok(html) => html_page(html).header("Cache-Control", "no-cache"),
                    Err(e) => error_response(404, &e.to_string()),
                },
                None => error_response(400, "missing user parameter"),
            },
            "/history" => self.history(req, &params),
            "/diff" => self.diff(req, &params),
            "/view" => self.view(req, &params),
            _ => error_response(404, &format!("no such route {path}")),
        };
        self.finish(resp)
    }

    fn index(&self) -> WireResponse {
        let mut urls = self.engine.snapshot().archived_urls().unwrap_or_default();
        urls.sort();
        let mut body = String::from(
            "<HTML><HEAD><TITLE>AIDE</TITLE></HEAD><BODY><H1>AIDE serving layer</H1>\
             <P>Routes: /report?user= · /history?url=&amp;user= · /diff?url=&amp;from=&amp;to= \
             · /view?url=&amp;rev= · /timegate/&lt;url&gt; · /timemap/&lt;url&gt; \
             · /memento/&lt;date&gt;/&lt;url&gt;\n<H2>Archived documents</H2>\n<UL>\n",
        );
        for url in &urls {
            body.push_str(&format!(
                "<LI><A HREF=\"/history?url={url}\">{url}</A> \
                 [<A HREF=\"/timemap/{url}\">timemap</A>]\n",
                url = encode_entities(url)
            ));
        }
        body.push_str("</UL>\n</BODY></HTML>\n");
        html_page(body)
    }

    /// Serves a cacheable page: answer 304 on an ETag match without
    /// rendering, otherwise replay from the render cache or render once
    /// and remember. `render` runs only on a cold cache.
    fn cached(
        &self,
        req: &WireRequest,
        etag: &str,
        content_type: &str,
        render: impl FnOnce() -> Result<String, WireResponse>,
    ) -> WireResponse {
        if if_none_match_hits(req, etag) {
            self.stats.not_modified.fetch_add(1, Ordering::Relaxed);
            aide_obs::counter("serve.not_modified", 1);
            return WireResponse::new(304).header("ETag", &format!("\"{etag}\""));
        }
        let page = match self.cache.get(etag) {
            Some(page) => page,
            None => {
                let body = match render() {
                    Ok(b) => b,
                    Err(resp) => return resp,
                };
                let page = CachedPage {
                    content_type: content_type.to_string(),
                    body: Arc::new(body),
                };
                self.cache.put(etag, page.clone());
                page
            }
        };
        WireResponse::new(200)
            .header("Content-Type", &page.content_type)
            .header("ETag", &format!("\"{etag}\""))
            .body(page.body.as_bytes().to_vec())
    }

    fn history(
        &self,
        req: &WireRequest,
        params: &std::collections::BTreeMap<String, String>,
    ) -> WireResponse {
        let (Some(url), Some(user)) = (params.get("url"), params.get("user")) else {
            return error_response(400, "missing url or user parameter");
        };
        // The seen-flags are part of the page, so they are part of the
        // ETag: a revision later marked seen changes the tag and busts
        // any stale 304. Costs one metadata read, zero diff work.
        let revs = match self.engine.history(user, url) {
            Ok(revs) => revs,
            Err(e) => return error_response(404, &e.to_string()),
        };
        let mut key = format!("h|{url}|{user}");
        for (meta, seen) in &revs {
            key.push_str(&format!("|{}@{}:{}", meta.id, meta.date.0, seen));
        }
        let etag = format!("h-{:016x}", fnv1a64(key.as_bytes()));
        self.cached(req, &etag, "text/html", move || {
            let mut body = format!(
                "<HTML><HEAD><TITLE>History of {url}</TITLE></HEAD><BODY>\
                 <H1>Versions of {url}</H1>\n<UL>\n",
                url = encode_entities(url)
            );
            for (meta, seen) in &revs {
                body.push_str(&format!(
                    "<LI>[<A HREF=\"/view?url={url}&rev={rev}\">{rev}</A>] {date} by {author}{seen}",
                    rev = meta.id,
                    date = meta.date.to_http_date(),
                    author = encode_entities(&meta.author),
                    seen = if *seen { " (seen)" } else { "" },
                ));
                if meta.id.0 > 1 {
                    body.push_str(&format!(
                        " [<A HREF=\"/diff?url={url}&from=1.{prev}&to={rev}\">diff to previous</A>]",
                        prev = meta.id.0 - 1,
                        rev = meta.id,
                    ));
                }
                body.push('\n');
            }
            body.push_str("</UL>\n</BODY></HTML>\n");
            Ok(body)
        })
    }

    fn diff(
        &self,
        req: &WireRequest,
        params: &std::collections::BTreeMap<String, String>,
    ) -> WireResponse {
        let Some(url) = params.get("url") else {
            return error_response(400, "missing url parameter");
        };
        let (Some(from), Some(to)) = (
            params.get("from").and_then(|r| RevId::parse(r)),
            params.get("to").and_then(|r| RevId::parse(r)),
        ) else {
            return error_response(400, "missing or bad from/to revisions");
        };
        // Stored revisions are immutable, so identifiers alone key the
        // page; the options fingerprint guards against a future default
        // change silently serving stale renders.
        let opts = DiffOptions::default();
        let fp = fnv1a64(format!("{opts:?}").as_bytes());
        let etag = format!(
            "d-{:016x}",
            fnv1a64(format!("d|{url}|{from}|{to}|{fp:016x}").as_bytes())
        );
        let engine = &self.engine;
        self.cached(req, &etag, "text/html", move || {
            engine
                .diff_versions(url, from, to, &opts)
                .map(|out| out.html)
                .map_err(|e| error_response(404, &e.to_string()))
        })
    }

    fn view(
        &self,
        req: &WireRequest,
        params: &std::collections::BTreeMap<String, String>,
    ) -> WireResponse {
        let Some(url) = params.get("url") else {
            return error_response(400, "missing url parameter");
        };
        let Some(rev) = params.get("rev").and_then(|r| RevId::parse(r)) else {
            return error_response(400, "missing or bad rev parameter");
        };
        let etag = format!("v-{:016x}", fnv1a64(format!("v|{url}|{rev}").as_bytes()));
        let engine = &self.engine;
        self.cached(req, &etag, "text/html", move || {
            engine
                .view(url, rev)
                .map_err(|e| error_response(404, &e.to_string()))
        })
    }

    /// RFC 7089 TimeGate: negotiate on `Accept-Datetime` and redirect
    /// to the closest memento. No header means "most recent" (§4.5.2);
    /// a malformed one is a client error.
    fn timegate(&self, req: &WireRequest, url: &str) -> WireResponse {
        if url.is_empty() {
            return error_response(400, "missing url in /timegate/<url>");
        }
        let when = match req.header("accept-datetime") {
            Some(raw) => match Timestamp::parse_http_date(raw) {
                Some(t) => t,
                None => {
                    return error_response(400, &format!("bad Accept-Datetime {raw:?}"))
                        .header("Vary", "accept-datetime")
                }
            },
            None => self.engine.clock().now(),
        };
        let (_, rev_date, _) = match self.engine.snapshot().memento_of(url, when) {
            Ok(hit) => hit,
            Err(e) => return error_response(404, &e.to_string()),
        };
        let location = format!("/memento/{}/{url}", rev_date.to_rcs_date());
        WireResponse::new(302)
            .header("Vary", "accept-datetime")
            .header("Location", &location)
            .header(
                "Link",
                &format!(
                    "<{url}>; rel=\"original\", \
                     </timemap/{url}>; rel=\"timemap\"; type=\"application/link-format\", \
                     <{location}>; rel=\"memento\"; datetime=\"{dt}\"",
                    dt = rev_date.to_http_date()
                ),
            )
            .body(format!("See {location}\n"))
    }

    /// One archived snapshot. An exact revision datestamp serves the
    /// body with `Memento-Datetime`; any other stamp redirects to the
    /// canonical URL of the nearest revision, so every datetime names
    /// exactly one cacheable page.
    fn memento(&self, req: &WireRequest, rest: &str) -> WireResponse {
        let Some((stamp, url)) = rest.split_once('/') else {
            return error_response(400, "expected /memento/<rcs-date>/<url>");
        };
        let Some(when) = Timestamp::parse_rcs_date(stamp) else {
            return error_response(400, &format!("bad datestamp {stamp:?}"));
        };
        if url.is_empty() {
            return error_response(400, "missing url in /memento/<rcs-date>/<url>");
        }
        let (rev, rev_date, body) = match self.engine.snapshot().memento_of(url, when) {
            Ok(hit) => hit,
            Err(e) => return error_response(404, &e.to_string()),
        };
        if rev_date != when {
            let location = format!("/memento/{}/{url}", rev_date.to_rcs_date());
            return WireResponse::new(302)
                .header("Location", &location)
                .body(format!("See {location}\n"));
        }
        let etag = format!(
            "m-{:016x}",
            fnv1a64(format!("m|{url}|{rev}|{}", rev_date.0).as_bytes())
        );
        let link = format!(
            "<{url}>; rel=\"original\", \
             </timegate/{url}>; rel=\"timegate\", \
             </timemap/{url}>; rel=\"timemap\"; type=\"application/link-format\"",
        );
        self.cached(req, &etag, "text/html", move || Ok(body))
            .header("Memento-Datetime", &rev_date.to_http_date())
            .header("Link", &link)
    }

    /// RFC 7089 §5 TimeMap in `application/link-format`, paginated as
    /// `/timemap/<page>/<url>` with page 0 at `/timemap/<url>`.
    fn timemap(&self, req: &WireRequest, rest: &str) -> WireResponse {
        // A leading "<digits>/" is a page number; an archived URL
        // ("http://…") can never start that way.
        let (page, url) = match rest.split_once('/') {
            Some((first, tail))
                if first.bytes().all(|b| b.is_ascii_digit()) && !first.is_empty() =>
            {
                match first.parse::<usize>() {
                    Ok(n) => (n, tail),
                    Err(_) => return error_response(400, "bad timemap page number"),
                }
            }
            _ => (0, rest),
        };
        if url.is_empty() {
            return error_response(400, "missing url in /timemap/<url>");
        }
        let metas = match self.engine.snapshot().revisions(url) {
            Ok(m) => m,
            Err(e) => return error_response(404, &e.to_string()),
        };
        let per = self.cfg.timemap_page.max(1);
        let pages = metas.len().div_ceil(per).max(1);
        if page >= pages {
            return error_response(404, &format!("timemap page {page} of {pages}"));
        }
        let etag = format!(
            "t-{:016x}",
            fnv1a64(format!("t|{url}|{page}|{per}|{}", metas.len()).as_bytes())
        );
        let self_path = if page == 0 {
            format!("/timemap/{url}")
        } else {
            format!("/timemap/{page}/{url}")
        };
        self.cached(req, &etag, "application/link-format", move || {
            let mut body = format!(
                "<{url}>;rel=\"original\",\n\
                 </timegate/{url}>;rel=\"timegate\",\n\
                 <{self_path}>;rel=\"self\";type=\"application/link-format\",\n"
            );
            if page > 0 {
                let prev = if page == 1 {
                    format!("/timemap/{url}")
                } else {
                    format!("/timemap/{}/{url}", page - 1)
                };
                body.push_str(&format!(
                    "<{prev}>;rel=\"prev\";type=\"application/link-format\",\n"
                ));
            }
            if page + 1 < pages {
                body.push_str(&format!(
                    "</timemap/{}/{url}>;rel=\"next\";type=\"application/link-format\",\n",
                    page + 1
                ));
            }
            let last_index = metas.len() - 1;
            for (i, meta) in metas.iter().enumerate().skip(page * per).take(per) {
                let rel = if i == 0 && i == last_index {
                    "first last memento"
                } else if i == 0 {
                    "first memento"
                } else if i == last_index {
                    "last memento"
                } else {
                    "memento"
                };
                body.push_str(&format!(
                    "</memento/{stamp}/{url}>;rel=\"{rel}\";datetime=\"{dt}\",\n",
                    stamp = meta.date.to_rcs_date(),
                    dt = meta.date.to_http_date(),
                ));
            }
            // link-format lists end without a trailing comma.
            let trimmed = body.trim_end_matches(",\n").to_string() + "\n";
            Ok(trimmed)
        })
    }
}

/// Does the request's `If-None-Match` match `etag` (unquoted form)?
fn if_none_match_hits(req: &WireRequest, etag: &str) -> bool {
    match req.header("if-none-match") {
        Some(raw) => raw.split(',').any(|t| {
            let t = t.trim().trim_start_matches("W/");
            t == "*" || t.trim_matches('"') == etag
        }),
        None => false,
    }
}

/// A 200 HTML response.
fn html_page(body: String) -> WireResponse {
    WireResponse::new(200)
        .header("Content-Type", "text/html")
        .body(body)
}
