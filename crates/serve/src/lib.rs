//! `aide-serve`: the HTTP/1.1 + Memento serving layer.
//!
//! The paper's §8.1 interface was a set of CGI scripts behind httpd;
//! this crate is their production successor: a dependency-free HTTP/1.1
//! server over the AIDE engine, generic over the storage backend
//! (in-memory or the crash-safe disk store), with RFC 7089 Memento
//! datetime negotiation turning the rcs check-out-by-date machinery
//! into a standards-shaped time-travel API.
//!
//! Three design commitments, inherited from the rest of the workspace:
//!
//! - **One parser.** Request parsing and response serialization live in
//!   [`aide_simweb::wire`], shared with the simulated net, so both the
//!   simulation and the real server exercise identical protocol code.
//! - **Deterministic core, IO edge.** The server speaks to the
//!   [`conn::Connection`] trait, not to sockets. Tests and the capacity
//!   harness drive it with scripted in-process connections on the
//!   virtual clock — byte-identical across runs; the thin real-TCP
//!   adapter lives in `examples/serve_tcp.rs`.
//! - **Render once.** Pages whose bytes are functions of immutable
//!   archive state carry content-derived ETags; `If-None-Match` answers
//!   304 with zero diff recomputation, and the [`cache::RenderCache`]
//!   replays bodies across users and backends.

pub mod cache;
pub mod conn;
pub mod server;

pub use cache::{CacheStats, CachedPage, RenderCache};
pub use conn::{ConnError, Connection, ScriptedConn};
pub use server::{AideServer, ConnOutcome, ServeConfig, ServeStats};
