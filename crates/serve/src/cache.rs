//! The render cache: finished HTTP page bodies, keyed by ETag.
//!
//! `ShardedDiffCache` (in aide-snapshot) caches *token-level diff
//! computations*; this cache sits a layer above it and stores the
//! *final rendered page* — the HtmlDiff report wrapped in its HTML
//! shell, the BASE-rewritten archived view, the history listing. Since
//! every cacheable page already carries a content-derived ETag (see
//! `DESIGN.md` §4j), the ETag doubles as the cache key: two requests
//! that would produce byte-identical pages share one entry, across
//! users and across backends.
//!
//! Eviction is sharded LRU with linear-scan shards: capacities are
//! small (hundreds of pages), scans are over a `Vec`, and — unlike a
//! `HashMap` walk — the order is fully deterministic, so two same-seed
//! runs evict identically.

use aide_util::checksum::fnv1a64;
use aide_util::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards.
const SHARDS: usize = 8;

/// One cached page: what is needed to replay the 200 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedPage {
    /// `Content-Type` of the rendered page.
    pub content_type: String,
    /// The rendered body.
    pub body: Arc<String>,
}

#[derive(Default)]
struct Shard {
    /// LRU order: front = coldest, back = hottest.
    entries: Vec<(String, CachedPage)>,
}

/// Counters mirroring the `serve.render_cache.*` obs counters, kept as
/// plain atomics so tests can assert on them without installing a
/// metrics registry.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to render.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Pages pushed out by capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// A sharded LRU of rendered pages, keyed by ETag.
pub struct RenderCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    stats: CacheStats,
}

impl RenderCache {
    /// A cache holding about `capacity` pages in total.
    pub fn new(capacity: usize) -> RenderCache {
        RenderCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: capacity.div_ceil(SHARDS).max(1),
            stats: CacheStats::default(),
        }
    }

    fn shard(&self, etag: &str) -> &Mutex<Shard> {
        &self.shards[fnv1a64(etag.as_bytes()) as usize % SHARDS]
    }

    /// Looks up the page rendered under `etag`, refreshing its LRU
    /// position. Counts a hit or a miss either way.
    pub fn get(&self, etag: &str) -> Option<CachedPage> {
        let mut shard = self.shard(etag).lock();
        let found = shard.entries.iter().position(|(k, _)| k == etag);
        match found {
            Some(i) => {
                let entry = shard.entries.remove(i);
                let page = entry.1.clone();
                shard.entries.push(entry);
                drop(shard);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                aide_obs::counter("serve.render_cache.hit", 1);
                Some(page)
            }
            None => {
                drop(shard);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                aide_obs::counter("serve.render_cache.miss", 1);
                None
            }
        }
    }

    /// Stores `page` under `etag`, evicting the coldest entry if the
    /// shard is full. Re-inserting an existing key refreshes the page.
    pub fn put(&self, etag: &str, page: CachedPage) {
        let mut shard = self.shard(etag).lock();
        if let Some(i) = shard.entries.iter().position(|(k, _)| k == etag) {
            shard.entries.remove(i);
        } else if shard.entries.len() >= self.per_shard_cap {
            shard.entries.remove(0);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            aide_obs::counter("serve.render_cache.eviction", 1);
        }
        shard.entries.push((etag.to_string(), page));
    }

    /// Cache counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(body: &str) -> CachedPage {
        CachedPage {
            content_type: "text/html".to_string(),
            body: Arc::new(body.to_string()),
        }
    }

    #[test]
    fn get_put_and_counters() {
        let c = RenderCache::new(64);
        assert!(c.get("v-1").is_none());
        assert_eq!(c.stats().misses(), 1);
        c.put("v-1", page("hello"));
        let hit = c.get("v-1").unwrap();
        assert_eq!(*hit.body, "hello");
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_coldest_per_shard() {
        // Capacity 8 over 8 shards = 1 page per shard: a second key in
        // the same shard evicts the first.
        let c = RenderCache::new(8);
        let mut keys = Vec::new();
        for i in 0..64 {
            let k = format!("k{i}");
            c.put(&k, page(&k));
            keys.push(k);
        }
        assert!(c.len() <= 8, "capacity respected: {}", c.len());
        assert!(c.stats().evictions() > 0);
        // The most recently inserted key of some shard is still present.
        assert!(c.get("k63").is_some());
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let c = RenderCache::new(64);
        c.put("a", page("one"));
        c.put("a", page("two"));
        assert_eq!(c.len(), 1);
        assert_eq!(*c.get("a").unwrap().body, "two");
    }
}
