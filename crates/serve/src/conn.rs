//! The transport seam: byte-stream connections the server can serve.
//!
//! The server core never touches a socket. It speaks to a
//! [`Connection`] — read some bytes, write some bytes — and everything
//! above that line is pure, deterministic computation on the virtual
//! clock. Tests drive the server through [`ScriptedConn`]s (in-process,
//! byte-identical across runs, able to replay adversarial framings like
//! byte-at-a-time delivery or mid-request hangups); the real-TCP
//! adapter in `examples/serve_tcp.rs` implements the same trait over
//! `TcpStream` in a couple of lines. This is the same
//! deterministic-core / IO-edge split the storage engine draws with its
//! `Vfs` trait.

use std::collections::VecDeque;
use std::fmt;

/// Transport-level failures. Deliberately coarse: the server reacts to
/// every one of them the same way — stop serving this connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// The peer vanished mid-read or mid-write (RST, broken pipe, or a
    /// scripted premature close).
    Reset,
}

impl fmt::Display for ConnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnError::Reset => write!(f, "connection reset"),
        }
    }
}

impl std::error::Error for ConnError {}

/// A bidirectional byte stream, as the server sees it.
pub trait Connection {
    /// Reads up to `buf.len()` bytes. `Ok(0)` means orderly end of
    /// stream (the peer finished sending).
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, ConnError>;

    /// Writes all of `bytes` or fails.
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), ConnError>;
}

/// A deterministic in-process connection: the client side is a script
/// of input chunks prepared up front; everything the server writes is
/// captured for inspection.
///
/// The chunking *is* the test surface — `[b"GET /", b" HTTP/1.1..."]`
/// exercises exactly the partial-read path a slow real client would,
/// and [`ScriptedConn::byte_at_a_time`] is the worst case.
#[derive(Debug, Default)]
pub struct ScriptedConn {
    chunks: VecDeque<Vec<u8>>,
    /// After draining `chunks`: `false` = orderly EOF, `true` = reset.
    reset_at_end: bool,
    out: Vec<u8>,
    refused_writes: bool,
}

impl ScriptedConn {
    /// A connection that sends `bytes` in one chunk, then closes.
    pub fn new(bytes: impl Into<Vec<u8>>) -> ScriptedConn {
        ScriptedConn::chunked(vec![bytes.into()])
    }

    /// A connection delivering the given chunks in order, then EOF.
    pub fn chunked(chunks: Vec<Vec<u8>>) -> ScriptedConn {
        ScriptedConn {
            chunks: chunks.into_iter().filter(|c| !c.is_empty()).collect(),
            reset_at_end: false,
            out: Vec::new(),
            refused_writes: false,
        }
    }

    /// The slowest possible client: every byte arrives alone.
    pub fn byte_at_a_time(bytes: &[u8]) -> ScriptedConn {
        ScriptedConn::chunked(bytes.iter().map(|&b| vec![b]).collect())
    }

    /// After the scripted chunks, the connection *resets* instead of
    /// closing cleanly, and any later server write fails — a client
    /// that hung up mid-exchange.
    pub fn then_reset(mut self) -> ScriptedConn {
        self.reset_at_end = true;
        self
    }

    /// Everything the server has written so far.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// The captured output as text (responses here are ASCII).
    pub fn output_text(&self) -> String {
        String::from_utf8_lossy(&self.out).into_owned()
    }

    /// Takes the captured output, leaving the connection empty.
    pub fn into_output(self) -> Vec<u8> {
        self.out
    }
}

impl Connection for ScriptedConn {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize, ConnError> {
        let Some(front) = self.chunks.front_mut() else {
            if self.reset_at_end {
                self.refused_writes = true;
                return Err(ConnError::Reset);
            }
            return Ok(0);
        };
        let n = front.len().min(buf.len());
        buf[..n].copy_from_slice(&front[..n]);
        if n == front.len() {
            self.chunks.pop_front();
        } else {
            front.drain(..n);
        }
        Ok(n)
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), ConnError> {
        if self.refused_writes {
            return Err(ConnError::Reset);
        }
        self.out.extend_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_reads_respect_chunking() {
        let mut c = ScriptedConn::chunked(vec![b"abc".to_vec(), b"de".to_vec()]);
        let mut buf = [0u8; 2];
        assert_eq!(c.read(&mut buf), Ok(2));
        assert_eq!(&buf, b"ab");
        assert_eq!(c.read(&mut buf), Ok(1));
        assert_eq!(&buf[..1], b"c");
        assert_eq!(c.read(&mut buf), Ok(2));
        assert_eq!(&buf, b"de");
        assert_eq!(c.read(&mut buf), Ok(0), "orderly EOF");
    }

    #[test]
    fn byte_at_a_time_is_one_byte_per_read() {
        let mut c = ScriptedConn::byte_at_a_time(b"xy");
        let mut buf = [0u8; 8];
        assert_eq!(c.read(&mut buf), Ok(1));
        assert_eq!(c.read(&mut buf), Ok(1));
        assert_eq!(c.read(&mut buf), Ok(0));
    }

    #[test]
    fn reset_fails_reads_and_writes() {
        let mut c = ScriptedConn::new(b"x".to_vec()).then_reset();
        let mut buf = [0u8; 8];
        assert_eq!(c.read(&mut buf), Ok(1));
        assert_eq!(c.read(&mut buf), Err(ConnError::Reset));
        assert_eq!(c.write_all(b"late"), Err(ConnError::Reset));
    }

    #[test]
    fn writes_accumulate() {
        let mut c = ScriptedConn::new(Vec::new());
        c.write_all(b"one").unwrap();
        c.write_all(b"two").unwrap();
        assert_eq!(c.output(), b"onetwo");
        assert_eq!(c.output_text(), "onetwo");
    }
}
