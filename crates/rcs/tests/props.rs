//! Property-based tests for the revision store.
//!
//! Invariants:
//! - `Delta::compute(a, b).apply(a) == b` for arbitrary texts.
//! - Delta text format round-trips through parse.
//! - Archives check out every revision exactly as checked in, including
//!   after an emit/parse round trip of the `,v` format.
//! - Unchanged check-ins never create revisions.

use aide_rcs::archive::Archive;
use aide_rcs::delta::Delta;
use aide_rcs::format::{emit, parse};
use aide_rcs::repo::{escape_key, unescape_key};
use aide_util::time::Timestamp;
use proptest::prelude::*;

/// Arbitrary multi-line texts with tricky content: empty lines, `@` signs
/// (the RCS quote character), missing trailing newlines.
fn text_strategy() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(
            prop_oneof![
                Just("line"),
                Just(""),
                Just("@"),
                Just("@@"),
                Just("text with @ inside"),
                Just("d1 2"),
                Just("a3 1"),
                Just("<P>html</P>"),
            ],
            0..20,
        ),
        any::<bool>(),
    )
        .prop_map(|(lines, trailing)| {
            let mut s = lines.join("\n");
            if trailing && !s.is_empty() {
                s.push('\n');
            }
            s
        })
}

proptest! {
    #[test]
    fn delta_apply_roundtrip(a in text_strategy(), b in text_strategy()) {
        let d = Delta::compute(&a, &b);
        prop_assert_eq!(d.apply(&a).unwrap(), b);
    }

    #[test]
    fn delta_text_format_roundtrip(a in text_strategy(), b in text_strategy()) {
        let d = Delta::compute(&a, &b);
        let parsed = Delta::parse(&d.to_text()).unwrap();
        prop_assert_eq!(parsed.apply(&a).unwrap(), b);
    }

    #[test]
    fn delta_identity_is_empty(a in text_strategy()) {
        prop_assert!(Delta::compute(&a, &a).is_empty());
    }

    #[test]
    fn archive_checkouts_match_checkins(texts in proptest::collection::vec(text_strategy(), 1..8)) {
        let mut archive = Archive::create("k", &texts[0], "u", "init", Timestamp(0));
        // Record the revision each text landed at (dedup-aware).
        let mut at: Vec<(aide_rcs::archive::RevId, String)> =
            vec![(archive.head(), texts[0].clone())];
        for (i, t) in texts.iter().enumerate().skip(1) {
            let out = archive.checkin(t, "u", "log", Timestamp(i as u64 * 100)).unwrap();
            at.push((out.rev(), t.clone()));
        }
        for (rev, expected) in &at {
            prop_assert_eq!(&archive.checkout(*rev).unwrap(), expected);
        }
    }

    #[test]
    fn archive_format_roundtrip(texts in proptest::collection::vec(text_strategy(), 1..8)) {
        let mut archive = Archive::create("http://host/p?q=@x", &texts[0], "user@host", "init", Timestamp(0));
        for (i, t) in texts.iter().enumerate().skip(1) {
            archive.checkin(t, "user@host", "msg @ here", Timestamp(i as u64 * 100)).unwrap();
        }
        let parsed = parse(&emit(&archive)).unwrap();
        prop_assert_eq!(&parsed, &archive);
        for meta in archive.metas() {
            prop_assert_eq!(
                parsed.checkout(meta.id).unwrap(),
                archive.checkout(meta.id).unwrap()
            );
        }
    }

    #[test]
    fn unchanged_checkin_is_noop(a in text_strategy(), b in text_strategy()) {
        let mut archive = Archive::create("k", &a, "u", "init", Timestamp(0));
        archive.checkin(&b, "u", "l", Timestamp(10)).unwrap();
        let len = archive.len();
        let out = archive.checkin(&b, "u", "l", Timestamp(20)).unwrap();
        prop_assert!(!out.is_new());
        prop_assert_eq!(archive.len(), len);
    }

    #[test]
    fn key_escape_roundtrip(key in "[ -~]{0,40}") {
        prop_assert_eq!(unescape_key(&escape_key(&key)), Some(key));
    }

    /// The on-disk format must be identity for bodies full of RCS
    /// keywords — both the collapsed markers (`$Id$`) users write and the
    /// expanded forms (`$Id: page,v 1.3 ...$`) the CGI layer serves,
    /// which contain `$`, `:` and `,v` sequences that must not confuse
    /// the `,v` emitter.
    #[test]
    fn archive_roundtrip_with_keyword_expansion(
        texts in proptest::collection::vec(text_strategy(), 1..6),
        expand_rev in any::<bool>(),
    ) {
        let mut archive = Archive::create("k", &texts[0], "user@host", "init", Timestamp(0));
        for (i, t) in texts.iter().enumerate().skip(1) {
            let mut body = format!("$Id$\n$Revision$ $Date$\n{t}");
            if expand_rev {
                // Feed back an *expanded* keyword block, as a page saved
                // from the viewer would contain.
                let meta = archive.metas().last().unwrap();
                body = aide_rcs::keyword::expand(&body, meta, "page,v");
            }
            archive.checkin(&body, "user@host", "kw", Timestamp(i as u64 * 100)).unwrap();
        }
        let parsed = parse(&emit(&archive)).unwrap();
        prop_assert_eq!(&parsed, &archive);
        for meta in archive.metas() {
            prop_assert_eq!(
                parsed.checkout(meta.id).unwrap(),
                archive.checkout(meta.id).unwrap()
            );
        }
        // Collapsing the expanded keywords is stable across the round trip.
        let head = parsed.checkout(parsed.head()).unwrap();
        prop_assert_eq!(
            aide_rcs::keyword::collapse(&head),
            aide_rcs::keyword::collapse(archive.head_text())
        );
    }

    /// Histories that pass through the empty body — pages that were
    /// cleared, then repopulated — round-trip exactly, including an
    /// archive *created* empty.
    #[test]
    fn archive_roundtrip_through_empty_bodies(
        texts in proptest::collection::vec(text_strategy(), 1..6),
    ) {
        let mut archive = Archive::create("k", "", "u", "init", Timestamp(0));
        for (i, t) in texts.iter().enumerate() {
            // Alternate real text with empties so deltas cross the
            // zero-length boundary in both directions.
            archive.checkin(t, "u", "fill", Timestamp(i as u64 * 100 + 10)).unwrap();
            archive.checkin("", "u", "clear", Timestamp(i as u64 * 100 + 20)).unwrap();
        }
        let parsed = parse(&emit(&archive)).unwrap();
        prop_assert_eq!(&parsed, &archive);
        prop_assert_eq!(parsed.checkout(parsed.head()).unwrap(), "");
        for meta in archive.metas() {
            prop_assert_eq!(
                parsed.checkout(meta.id).unwrap(),
                archive.checkout(meta.id).unwrap()
            );
        }
    }
}
