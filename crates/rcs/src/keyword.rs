//! RCS keyword expansion: `$Id$`, `$Revision$`, `$Date$`, `$Author$`,
//! `$Log$` markers in checked-out text.
//!
//! §8.1's server-side version control example sets up "a `Last-Modified`
//! field at the bottom of an HTML document" as a link to the rlog script;
//! content providers using RCS in 1995 almost universally relied on
//! keyword expansion to stamp that field. Expansion happens at check-out;
//! the archive stores the unexpanded (or previously expanded) form and
//! [`collapse`] strips values so check-ins of expanded text do not create
//! spurious diffs.

use crate::archive::RevisionMeta;

/// The keywords RCS expands.
const KEYWORDS: &[&str] = &["Id", "Revision", "Date", "Author", "Source", "Header"];

/// Expands RCS keywords in `text` for a revision.
///
/// # Examples
///
/// ```
/// use aide_rcs::archive::{RevId, RevisionMeta};
/// use aide_rcs::keyword::expand;
/// use aide_util::time::Timestamp;
///
/// let meta = RevisionMeta {
///     id: RevId(3),
///     date: Timestamp::from_ymd_hms(1995, 11, 3, 8, 49, 37),
///     author: "douglis".to_string(),
///     log: String::new(),
///     text_len: 0,
/// };
/// let out = expand("<!-- $Revision$ -->", &meta, "page.html");
/// assert_eq!(out, "<!-- $Revision: 1.3 $ -->");
/// ```
pub fn expand(text: &str, meta: &RevisionMeta, filename: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find('$') {
        out.push_str(&rest[..start]);
        let after = &rest[start + 1..];
        match parse_keyword(after) {
            Some((kw, consumed)) => {
                out.push('$');
                out.push_str(kw);
                out.push_str(": ");
                out.push_str(&value_for(kw, meta, filename));
                out.push_str(" $");
                rest = &after[consumed..];
            }
            None => {
                out.push('$');
                rest = after;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Collapses expanded keywords back to their bare `$Keyword$` form, so
/// that re-checking-in expanded text does not record noise.
pub fn collapse(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find('$') {
        out.push_str(&rest[..start]);
        let after = &rest[start + 1..];
        match parse_keyword(after) {
            Some((kw, consumed)) => {
                out.push('$');
                out.push_str(kw);
                out.push('$');
                rest = &after[consumed..];
            }
            None => {
                out.push('$');
                rest = after;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Recognizes `Keyword$` or `Keyword: value $` at the start of `s`.
/// Returns the keyword and bytes consumed (through the closing `$`).
fn parse_keyword(s: &str) -> Option<(&'static str, usize)> {
    for kw in KEYWORDS {
        if let Some(rest) = s.strip_prefix(kw) {
            if let Some(r2) = rest.strip_prefix('$') {
                let _ = r2;
                return Some((kw, kw.len() + 1));
            }
            if let Some(r2) = rest.strip_prefix(':') {
                // Expanded form: value runs to the next '$' on the same line.
                let end = r2.find(['$', '\n'])?;
                if r2.as_bytes()[end] == b'$' {
                    return Some((kw, kw.len() + 1 + end + 1));
                }
                return None;
            }
        }
    }
    None
}

fn value_for(kw: &str, meta: &RevisionMeta, filename: &str) -> String {
    match kw {
        "Revision" => meta.id.to_string(),
        "Date" => format!("{} ", meta.date.to_rcs_date())
            .trim_end()
            .to_string(),
        "Author" => meta.author.clone(),
        "Source" => filename.to_string(),
        "Id" | "Header" => format!(
            "{} {} {} {}",
            filename,
            meta.id,
            meta.date.to_rcs_date(),
            meta.author
        ),
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::RevId;
    use aide_util::time::Timestamp;

    fn meta() -> RevisionMeta {
        RevisionMeta {
            id: RevId(7),
            date: Timestamp::from_ymd_hms(1995, 12, 24, 18, 0, 0),
            author: "ball".to_string(),
            log: String::new(),
            text_len: 0,
        }
    }

    #[test]
    fn expands_bare_keywords() {
        let out = expand("rev $Revision$ by $Author$ on $Date$", &meta(), "f.html");
        assert_eq!(
            out,
            "rev $Revision: 1.7 $ by $Author: ball $ on $Date: 1995.12.24.18.00.00 $"
        );
    }

    #[test]
    fn expands_id() {
        let out = expand("$Id$", &meta(), "index.html");
        assert_eq!(out, "$Id: index.html 1.7 1995.12.24.18.00.00 ball $");
    }

    #[test]
    fn reexpands_already_expanded() {
        let once = expand("$Revision$", &meta(), "f");
        let mut meta2 = meta();
        meta2.id = RevId(8);
        let twice = expand(&once, &meta2, "f");
        assert_eq!(twice, "$Revision: 1.8 $");
    }

    #[test]
    fn collapse_strips_values() {
        let expanded = expand("a $Id$ b $Date$ c", &meta(), "f");
        assert_eq!(collapse(&expanded), "a $Id$ b $Date$ c");
    }

    #[test]
    fn collapse_of_bare_is_identity() {
        assert_eq!(collapse("$Revision$ and $Id$"), "$Revision$ and $Id$");
    }

    #[test]
    fn non_keywords_untouched() {
        for s in ["$PATH", "cost $5", "$Unknown$", "a$b$c", "$", "$$"] {
            assert_eq!(expand(s, &meta(), "f"), s, "{s:?} should not expand");
        }
    }

    #[test]
    fn unterminated_expanded_form_untouched() {
        // "$Revision: 1.2" with no closing '$' before newline.
        let s = "$Revision: 1.2\nmore";
        assert_eq!(expand(s, &meta(), "f"), s);
    }
}
