//! RCS edit deltas: the `diff -n` command language.
//!
//! An RCS file stores the newest revision in full; each older revision is
//! reconstructed by applying an *edit script* to its successor. The script
//! language is that of `diff -n`: `d<line> <count>` deletes `count` lines
//! starting at 1-based `line` of the input, and `a<line> <count>` appends
//! `count` following lines of script text after input line `line`. Line
//! numbers always refer to the *input* text, so commands apply in a single
//! left-to-right pass.

use aide_diffcore::lines::diff_lines;
use aide_diffcore::script::EditOp;
use aide_util::lines::split_keep_newlines;
use std::fmt;

/// One edit command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Delete `count` input lines starting at 1-based `line`.
    Delete {
        /// 1-based first input line to delete.
        line: usize,
        /// Number of lines deleted.
        count: usize,
    },
    /// Insert `lines` after 1-based input line `line` (0 = at the top).
    Add {
        /// 1-based input line after which to insert.
        line: usize,
        /// The inserted lines, each retaining its `\n` (the final one may
        /// lack it).
        lines: Vec<String>,
    },
}

/// An edit script transforming one text into another.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Delta {
    /// Commands in increasing input-line order.
    pub edits: Vec<Edit>,
}

/// Error applying a [`Delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaError(pub String);

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delta apply failed: {}", self.0)
    }
}

impl std::error::Error for DeltaError {}

impl Delta {
    /// Computes the delta that transforms `from` into `to`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_rcs::delta::Delta;
    ///
    /// let d = Delta::compute("a\nb\nc\n", "a\nx\nc\n");
    /// assert_eq!(d.apply("a\nb\nc\n").unwrap(), "a\nx\nc\n");
    /// ```
    pub fn compute(from: &str, to: &str) -> Delta {
        let diff = diff_lines(from, to);
        let mut edits = Vec::new();
        for op in diff.alignment.script().ops {
            match op {
                EditOp::Equal { .. } => {}
                EditOp::Delete { a_start, len, .. } => {
                    edits.push(Edit::Delete {
                        line: a_start + 1,
                        count: len,
                    });
                }
                EditOp::Insert {
                    a_pos,
                    b_start,
                    len,
                } => {
                    edits.push(Edit::Add {
                        line: a_pos,
                        lines: diff.new_lines[b_start..b_start + len].to_vec(),
                    });
                }
            }
        }
        Delta { edits }
    }

    /// True if the delta makes no changes.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Number of lines added across all commands.
    pub fn lines_added(&self) -> usize {
        self.edits
            .iter()
            .map(|e| match e {
                Edit::Add { lines, .. } => lines.len(),
                _ => 0,
            })
            .sum()
    }

    /// Number of lines deleted across all commands.
    pub fn lines_deleted(&self) -> usize {
        self.edits
            .iter()
            .map(|e| match e {
                Edit::Delete { count, .. } => *count,
                _ => 0,
            })
            .sum()
    }

    /// Applies the delta to `input`, producing the transformed text.
    ///
    /// Fails if a command references lines the input does not have —
    /// which indicates a corrupted archive, not bad user input.
    pub fn apply(&self, input: &str) -> Result<String, DeltaError> {
        let lines = split_keep_newlines(input);
        let mut out = String::with_capacity(input.len());
        let mut cursor = 0usize; // 0-based index of next uncopied input line
        for edit in &self.edits {
            match edit {
                Edit::Delete { line, count } => {
                    let start = line
                        .checked_sub(1)
                        .ok_or_else(|| DeltaError("delete at line 0".into()))?;
                    if start < cursor {
                        return Err(DeltaError(format!(
                            "delete at line {line} overlaps earlier edit"
                        )));
                    }
                    if start + count > lines.len() {
                        return Err(DeltaError(format!(
                            "delete {count}@{line} past end of {} lines",
                            lines.len()
                        )));
                    }
                    for l in &lines[cursor..start] {
                        out.push_str(l);
                    }
                    cursor = start + count;
                }
                Edit::Add { line, lines: add } => {
                    if *line < cursor {
                        return Err(DeltaError(format!(
                            "add after line {line} overlaps earlier edit"
                        )));
                    }
                    if *line > lines.len() {
                        return Err(DeltaError(format!(
                            "add after line {line} past end of {} lines",
                            lines.len()
                        )));
                    }
                    for l in &lines[cursor..*line] {
                        out.push_str(l);
                    }
                    cursor = *line;
                    for l in add {
                        out.push_str(l);
                    }
                }
            }
        }
        for l in &lines[cursor..] {
            out.push_str(l);
        }
        Ok(out)
    }

    /// Serializes in `diff -n` syntax (the body of an RCS delta).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for edit in &self.edits {
            match edit {
                Edit::Delete { line, count } => {
                    out.push_str(&format!("d{line} {count}\n"));
                }
                Edit::Add { line, lines } => {
                    out.push_str(&format!("a{line} {}\n", lines.len()));
                    for l in lines {
                        // Lines are stored verbatim. Only the final line of
                        // the final command can lack a newline (it can only
                        // come from the end of the source text), so command
                        // parsing never misfires on it.
                        out.push_str(l);
                    }
                }
            }
        }
        out
    }

    /// Parses `diff -n` syntax produced by [`Delta::to_text`].
    ///
    /// Added lines are stored verbatim, so a final added line without a
    /// trailing newline round-trips exactly.
    pub fn parse(text: &str) -> Result<Delta, DeltaError> {
        let mut edits = Vec::new();
        let lines = split_keep_newlines(text);
        let mut i = 0;
        while i < lines.len() {
            let cmd = lines[i].trim_end_matches('\n');
            i += 1;
            if cmd.is_empty() {
                continue;
            }
            let (kind, rest) = cmd.split_at(1);
            let mut nums = rest.split_whitespace();
            let line: usize = nums
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| DeltaError(format!("bad command {cmd:?}")))?;
            let count: usize = nums
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| DeltaError(format!("bad command {cmd:?}")))?;
            match kind {
                "d" => edits.push(Edit::Delete { line, count }),
                "a" => {
                    if i + count > lines.len() {
                        return Err(DeltaError(format!(
                            "add command wants {count} lines, {} remain",
                            lines.len() - i
                        )));
                    }
                    let add: Vec<String> =
                        lines[i..i + count].iter().map(|s| s.to_string()).collect();
                    i += count;
                    edits.push(Edit::Add { line, lines: add });
                }
                other => return Err(DeltaError(format!("unknown command {other:?}"))),
            }
        }
        Ok(Delta { edits })
    }

    /// Approximate storage cost of this delta in bytes, as stored in an
    /// archive file.
    pub fn byte_size(&self) -> usize {
        self.to_text().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(from: &str, to: &str) {
        let d = Delta::compute(from, to);
        assert_eq!(d.apply(from).unwrap(), to, "{from:?} -> {to:?}");
    }

    #[test]
    fn identity_delta_is_empty() {
        let d = Delta::compute("x\ny\n", "x\ny\n");
        assert!(d.is_empty());
        assert_eq!(d.apply("x\ny\n").unwrap(), "x\ny\n");
    }

    #[test]
    fn simple_edits_roundtrip() {
        roundtrip("a\nb\nc\n", "a\nx\nc\n");
        roundtrip("a\nb\nc\n", "b\nc\n");
        roundtrip("a\nb\n", "a\nb\nc\n");
        roundtrip("", "new\ncontent\n");
        roundtrip("old\ncontent\n", "");
        roundtrip("a\nb\nc\nd\ne\n", "e\nd\nc\nb\na\n");
    }

    #[test]
    fn no_trailing_newline_roundtrip() {
        roundtrip("a\nb", "a\nb\nc");
        roundtrip("a\nb\nc", "a\nb");
        roundtrip("x", "y");
    }

    #[test]
    fn insert_at_top() {
        let d = Delta::compute("b\n", "a\nb\n");
        assert_eq!(
            d.edits,
            vec![Edit::Add {
                line: 0,
                lines: vec!["a\n".into()]
            }]
        );
    }

    #[test]
    fn change_is_delete_then_add() {
        let d = Delta::compute("a\nb\nc\n", "a\nB\nc\n");
        assert_eq!(d.edits.len(), 2);
        assert!(matches!(d.edits[0], Edit::Delete { line: 2, count: 1 }));
        assert!(matches!(&d.edits[1], Edit::Add { line: 2, .. }));
    }

    #[test]
    fn text_format_roundtrip() {
        let d = Delta::compute("one\ntwo\nthree\nfour\n", "one\nTWO\nthree\nfive\nsix\n");
        let text = d.to_text();
        let parsed = Delta::parse(&text).unwrap();
        assert_eq!(
            parsed.apply("one\ntwo\nthree\nfour\n").unwrap(),
            "one\nTWO\nthree\nfive\nsix\n"
        );
    }

    #[test]
    fn counts() {
        let d = Delta::compute("a\nb\nc\n", "a\nx\ny\n");
        assert_eq!(d.lines_deleted(), 2);
        assert_eq!(d.lines_added(), 2);
    }

    #[test]
    fn apply_rejects_out_of_range() {
        let d = Delta {
            edits: vec![Edit::Delete { line: 5, count: 2 }],
        };
        assert!(d.apply("one\n").is_err());
        let d = Delta {
            edits: vec![Edit::Add {
                line: 9,
                lines: vec!["x\n".into()],
            }],
        };
        assert!(d.apply("one\n").is_err());
    }

    #[test]
    fn apply_rejects_overlapping_commands() {
        let d = Delta {
            edits: vec![
                Edit::Delete { line: 2, count: 2 },
                Edit::Delete { line: 3, count: 1 },
            ],
        };
        assert!(d.apply("a\nb\nc\nd\n").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Delta::parse("x3 1\n").is_err());
        assert!(Delta::parse("d\n").is_err());
        assert!(Delta::parse("a1 5\nonly\n").is_err());
    }

    #[test]
    fn delta_smaller_than_full_copy_for_small_edits() {
        let base: String = (0..200).map(|i| format!("line number {i}\n")).collect();
        let mut edited = base.clone();
        edited.push_str("appended line\n");
        let d = Delta::compute(&base, &edited);
        assert!(
            d.byte_size() < base.len() / 10,
            "delta should be tiny: {}",
            d.byte_size()
        );
    }
}
