//! Keyed repositories of archives.
//!
//! The snapshot service stores one archive per URL (§2.2: histories are
//! "addressed by their URLs"). A [`Repository`] maps string keys to
//! [`Archive`]s; [`MemRepository`] backs tests and simulations, and the
//! `aide-store` crate provides `DiskRepository`, the crash-safe on-disk
//! engine (WAL + append-only segments) behind the same trait. Both report
//! the storage totals §7 measures ("the archive uses under 8 Mbytes of
//! disk storage (an average of 14.3 Kbytes/URL)").
//!
//! # Concurrency
//!
//! Repositories are shared across the snapshot service's worker threads,
//! so every operation takes `&self` and implementations must be
//! [`Send`] + [`Sync`]. Archives come back as [`Arc<Archive>`] handles:
//! readers (diff, history, view) share the stored revision data without
//! copying it, and a check-in builds a new `Arc` that replaces the old
//! one atomically — per-URL readers never observe a half-updated
//! archive.
//!
//! [`MemRepository`] keeps its map in fixed shards, each behind its own
//! `RwLock`, so operations on different URLs almost never touch the same
//! lock. *Exclusion* between two writers of the same URL is not the
//! repository's job: callers that read-modify-write an archive (the
//! snapshot service's Remember path) serialize per URL with their own
//! named locks, in shard-index order when they must span shards (see
//! `aide-snapshot`'s `locks` module for the full ordering invariant).
//!
//! # Accounting
//!
//! Each shard carries running byte/revision counters maintained on every
//! store/remove, so [`Repository::stats`] is O(shards), not O(data) — a
//! serving-path requirement once archives hold years of history. The
//! counted size of an archive is `emit(&archive).len()`: the bytes its
//! `,v` serialization occupies, which is also exactly what `aide-store`
//! keeps on disk, so both backends agree byte-for-byte.

use crate::archive::Archive;
use crate::format::{emit, FormatError};
use aide_util::checksum::fnv1a64;
use aide_util::sync::RwLock;
use aide_util::vfs::VfsError;
use std::collections::BTreeMap;
use std::fmt;
use std::io; // aide-lint: allow(vfs-boundary): error *type* only, no I/O
use std::sync::Arc;

/// Error from repository operations.
#[derive(Debug)]
pub enum RepoError {
    /// Underlying I/O failure (disk repositories only).
    Io(io::Error),
    /// A stored archive failed to parse.
    Format(FormatError),
    /// The storage backend's virtual filesystem failed.
    Storage(VfsError),
    /// The stored record for `key` is unreadable (checksum mismatch,
    /// torn frame, or unparseable archive text). The rest of the
    /// repository is still serviceable; callers that can degrade should
    /// treat the key as absent rather than failing the request (see
    /// `SnapshotService`).
    Corrupt {
        /// The key whose record is damaged.
        key: String,
        /// What exactly failed to validate.
        detail: String,
    },
}

impl RepoError {
    /// Builds a [`RepoError::Corrupt`] for `key`.
    pub fn corrupt(key: &str, detail: impl Into<String>) -> RepoError {
        RepoError::Corrupt {
            key: key.to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "repository I/O error: {e}"),
            RepoError::Format(e) => write!(f, "repository format error: {e}"),
            RepoError::Storage(e) => write!(f, "repository storage error: {e}"),
            RepoError::Corrupt { key, detail } => {
                write!(f, "corrupt archive record for {key:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for RepoError {}

impl From<io::Error> for RepoError {
    fn from(e: io::Error) -> Self {
        RepoError::Io(e)
    }
}

impl From<FormatError> for RepoError {
    fn from(e: FormatError) -> Self {
        RepoError::Format(e)
    }
}

impl From<VfsError> for RepoError {
    fn from(e: VfsError) -> Self {
        RepoError::Storage(e)
    }
}

/// Storage accounting for a repository — the numbers §7 reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageStats {
    /// Number of archives (URLs).
    pub archives: usize,
    /// Total revisions across all archives.
    pub revisions: usize,
    /// Total stored bytes.
    pub bytes: usize,
}

impl StorageStats {
    /// Average bytes per archive (the paper's "14.3 Kbytes/URL").
    pub fn bytes_per_archive(&self) -> f64 {
        if self.archives == 0 {
            0.0
        } else {
            self.bytes as f64 / self.archives as f64
        }
    }
}

/// A keyed, concurrently shareable store of [`Archive`]s.
pub trait Repository: Send + Sync {
    /// Loads a shared handle to the archive for `key`, if present.
    fn load(&self, key: &str) -> Result<Option<Arc<Archive>>, RepoError>;

    /// Stores (creates or replaces) the archive for `key`. Callers that
    /// load-modify-store must provide their own per-key exclusion.
    fn store(&self, key: &str, archive: &Archive) -> Result<(), RepoError>;

    /// Removes the archive for `key`; returns whether one existed.
    fn remove(&self, key: &str) -> Result<bool, RepoError>;

    /// All keys, sorted.
    fn keys(&self) -> Result<Vec<String>, RepoError>;

    /// Storage accounting.
    fn stats(&self) -> Result<StorageStats, RepoError>;

    /// Per-key stored size in bytes, sorted descending — §7 singles out
    /// the three largest files ("Three files account for 2.7 Mbytes").
    fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError>;
}

/// Smart pointers delegate, so a shared backend (e.g. one disk store
/// serving both a snapshot service and its background compactor) and a
/// boxed-dynamic backend both satisfy `R: Repository` directly.
macro_rules! delegate_repository {
    ($($ptr:ty),*) => {$(
        impl<T: Repository + ?Sized> Repository for $ptr {
            fn load(&self, key: &str) -> Result<Option<Arc<Archive>>, RepoError> {
                (**self).load(key)
            }
            fn store(&self, key: &str, archive: &Archive) -> Result<(), RepoError> {
                (**self).store(key, archive)
            }
            fn remove(&self, key: &str) -> Result<bool, RepoError> {
                (**self).remove(key)
            }
            fn keys(&self) -> Result<Vec<String>, RepoError> {
                (**self).keys()
            }
            fn stats(&self) -> Result<StorageStats, RepoError> {
                (**self).stats()
            }
            fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError> {
                (**self).sizes()
            }
        }
    )*};
}

delegate_repository!(Box<T>, Arc<T>);

/// Number of independent buckets in [`MemRepository`]. Power of two,
/// comfortably above typical core counts, so URL-distinct operations
/// rarely share a lock.
const MEM_SHARDS: usize = 64;

/// One stored archive plus its serialized size, computed once at store
/// time so accounting never re-emits.
struct Stored {
    archive: Arc<Archive>,
    bytes: usize,
}

/// One bucket of the map plus its running accounting totals.
#[derive(Default)]
struct MemShard {
    map: BTreeMap<String, Stored>,
    bytes: usize,
    revisions: usize,
}

/// An in-memory repository, sharded for concurrent access, with O(shards)
/// storage accounting.
pub struct MemRepository {
    shards: Vec<RwLock<MemShard>>,
}

impl Default for MemRepository {
    fn default() -> Self {
        MemRepository::new()
    }
}

impl MemRepository {
    /// Creates an empty repository.
    pub fn new() -> MemRepository {
        MemRepository {
            shards: (0..MEM_SHARDS)
                .map(|_| RwLock::new(MemShard::default()))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<MemShard> {
        &self.shards[fnv1a64(key.as_bytes()) as usize % MEM_SHARDS]
    }

    /// A point-in-time snapshot of every (key, archive) pair, visiting
    /// shards in index order and never holding more than one shard guard.
    fn snapshot(&self) -> Vec<(String, Arc<Archive>)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            all.extend(
                guard
                    .map
                    .iter()
                    .map(|(k, s)| (k.clone(), s.archive.clone())),
            );
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// The counters' ground truth: a full scan that re-emits every
    /// archive. O(data); used by the debug-build reconciliation in
    /// [`stats`](Repository::stats) and directly by tests.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn scan_stats(&self) -> StorageStats {
        let mut s = StorageStats::default();
        // Sizes are computed outside the shard guards: emit() can be
        // expensive and must not block writers (ordering invariant:
        // bucket guards are never held across serialization).
        for (_, a) in self.snapshot() {
            s.archives += 1;
            s.revisions += a.len();
            s.bytes += emit(&a).len();
        }
        s
    }
}

impl Clone for MemRepository {
    fn clone(&self) -> Self {
        let copy = MemRepository::new();
        for shard in &self.shards {
            let guard = shard.read();
            for (k, s) in guard.map.iter() {
                let target = copy.shard(k);
                let mut t = target.write();
                t.bytes += s.bytes;
                t.revisions += s.archive.len();
                t.map.insert(
                    k.clone(),
                    Stored {
                        archive: s.archive.clone(),
                        bytes: s.bytes,
                    },
                );
            }
        }
        copy
    }
}

impl fmt::Debug for MemRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let keys = self.keys().map_err(|_| fmt::Error)?;
        f.debug_struct("MemRepository")
            .field("keys", &keys)
            .finish()
    }
}

impl Repository for MemRepository {
    fn load(&self, key: &str) -> Result<Option<Arc<Archive>>, RepoError> {
        Ok(self
            .shard(key)
            .read()
            .map
            .get(key)
            .map(|s| s.archive.clone()))
    }

    fn store(&self, key: &str, archive: &Archive) -> Result<(), RepoError> {
        // Serialize outside the guard (guards are never held across
        // emit); the length feeds the shard's running counters.
        let bytes = emit(archive).len();
        let revisions = archive.len();
        let handle = Arc::new(archive.clone());
        let mut shard = self.shard(key).write();
        if let Some(old) = shard.map.insert(
            key.to_string(),
            Stored {
                archive: handle,
                bytes,
            },
        ) {
            shard.bytes -= old.bytes;
            shard.revisions -= old.archive.len();
        }
        shard.bytes += bytes;
        shard.revisions += revisions;
        Ok(())
    }

    fn remove(&self, key: &str) -> Result<bool, RepoError> {
        let mut shard = self.shard(key).write();
        match shard.map.remove(key) {
            Some(old) => {
                shard.bytes -= old.bytes;
                shard.revisions -= old.archive.len();
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn keys(&self) -> Result<Vec<String>, RepoError> {
        Ok(self.snapshot().into_iter().map(|(k, _)| k).collect())
    }

    fn stats(&self) -> Result<StorageStats, RepoError> {
        let mut s = StorageStats::default();
        for shard in &self.shards {
            let guard = shard.read();
            s.archives += guard.map.len();
            s.revisions += guard.revisions;
            s.bytes += guard.bytes;
        }
        // In debug builds, reconcile the running counters against the
        // full scan: any drift is a counter-maintenance bug.
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            s,
            self.scan_stats(),
            "running stats counters drifted from the full scan"
        );
        Ok(s)
    }

    fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError> {
        let mut v: Vec<(String, usize)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            v.extend(guard.map.iter().map(|(k, s)| (k.clone(), s.bytes)));
        }
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(v)
    }
}

/// Escapes a key (URL) into a safe flat filename, reversibly.
///
/// Alphanumerics, `-`, `.` and `_` pass through; everything else becomes
/// `%XX`.
pub fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'.' | b'_' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Reverses [`escape_key`]. Returns `None` on malformed escapes.
pub fn unescape_key(escaped: &str) -> Option<String> {
    let bytes = escaped.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = escaped.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::Timestamp;

    fn archive(text: &str) -> Archive {
        Archive::create("desc", text, "me", "init", Timestamp(100))
    }

    #[test]
    fn mem_store_load_remove() {
        let r = MemRepository::new();
        assert!(r.load("http://x/").unwrap().is_none());
        r.store("http://x/", &archive("body\n")).unwrap();
        assert_eq!(r.load("http://x/").unwrap().unwrap().head_text(), "body\n");
        assert!(r.remove("http://x/").unwrap());
        assert!(!r.remove("http://x/").unwrap());
    }

    #[test]
    fn mem_keys_sorted() {
        let r = MemRepository::new();
        r.store("b", &archive("1\n")).unwrap();
        r.store("a", &archive("2\n")).unwrap();
        assert_eq!(r.keys().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn mem_stats_and_sizes() {
        let r = MemRepository::new();
        r.store("small", &archive("x\n")).unwrap();
        r.store("large", &archive(&"line of page text\n".repeat(200)))
            .unwrap();
        let s = r.stats().unwrap();
        assert_eq!(s.archives, 2);
        assert_eq!(s.revisions, 2);
        assert!(s.bytes > 3000);
        let sizes = r.sizes().unwrap();
        assert_eq!(sizes[0].0, "large");
        assert!(sizes[0].1 > sizes[1].1);
    }

    #[test]
    fn mem_running_counters_match_scan_through_churn() {
        let r = MemRepository::new();
        for i in 0..40 {
            let mut a = archive(&format!("page {i}\nline\n"));
            for rev in 0..(i % 5) {
                a.checkin(
                    &format!("page {i}\nrevised {rev}\n"),
                    "me",
                    "change",
                    Timestamp(200 + rev as u64),
                )
                .unwrap();
            }
            r.store(&format!("http://h{}/p{i}", i % 7), &a).unwrap();
        }
        // Overwrite some, remove others: counters must track exactly.
        for i in 0..40 {
            if i % 3 == 0 {
                r.store(&format!("http://h{}/p{i}", i % 7), &archive("tiny\n"))
                    .unwrap();
            } else if i % 3 == 1 {
                r.remove(&format!("http://h{}/p{i}", i % 7)).unwrap();
            }
        }
        let fast = r.stats().unwrap();
        assert_eq!(fast, r.scan_stats(), "O(shards) stats == full scan");
        let from_sizes: usize = r.sizes().unwrap().iter().map(|(_, b)| b).sum();
        assert_eq!(fast.bytes, from_sizes);
    }

    #[test]
    fn mem_clone_is_deep_snapshot() {
        let r = MemRepository::new();
        r.store("a", &archive("one\n")).unwrap();
        let snap = r.clone();
        r.store("b", &archive("two\n")).unwrap();
        assert_eq!(
            snap.keys().unwrap(),
            vec!["a"],
            "clone unaffected by later stores"
        );
        assert_eq!(r.keys().unwrap(), vec!["a", "b"]);
        assert_eq!(snap.stats().unwrap(), snap.scan_stats());
    }

    #[test]
    fn mem_concurrent_distinct_keys() {
        let r = std::sync::Arc::new(MemRepository::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..20 {
                    let key = format!("http://h{t}/p{k}");
                    r.store(&key, &archive(&format!("body {t} {k}\n"))).unwrap();
                    assert!(r.load(&key).unwrap().is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.stats().unwrap().archives, 160);
    }

    #[test]
    fn corrupt_error_displays_key_and_detail() {
        let e = RepoError::corrupt("http://x/", "crc mismatch in frame 3");
        let msg = e.to_string();
        assert!(msg.contains("http://x/"), "{msg}");
        assert!(msg.contains("crc mismatch"), "{msg}");
    }

    #[test]
    fn escape_roundtrip() {
        for key in [
            "http://www.yahoo.com/",
            "http://host:600/a b/c?d=e&f=g",
            "file:/home/user/x.html",
            "weird%percent",
            "",
        ] {
            assert_eq!(unescape_key(&escape_key(key)).as_deref(), Some(key));
        }
    }

    #[test]
    fn escape_produces_safe_names() {
        let e = escape_key("http://a/b?c=d");
        assert!(!e.contains('/'));
        assert!(!e.contains('?'));
        assert!(!e.contains(':'));
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert_eq!(unescape_key("%"), None);
        assert_eq!(unescape_key("%Z9"), None);
        assert_eq!(unescape_key("%2"), None);
    }
}
