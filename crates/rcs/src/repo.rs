//! Keyed repositories of archives.
//!
//! The snapshot service stores one archive per URL (§2.2: histories are
//! "addressed by their URLs"). A [`Repository`] maps string keys to
//! [`Archive`]s; [`MemRepository`] backs tests and simulations,
//! [`DiskRepository`] persists each archive as a `,v` file the way the
//! real service kept RCS files in its CGI area. Both report the storage
//! totals §7 measures ("the archive uses under 8 Mbytes of disk storage
//! (an average of 14.3 Kbytes/URL)").

use crate::archive::Archive;
use crate::format::{emit, parse, FormatError};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Error from repository operations.
#[derive(Debug)]
pub enum RepoError {
    /// Underlying I/O failure (disk repositories only).
    Io(io::Error),
    /// A stored archive failed to parse.
    Format(FormatError),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "repository I/O error: {e}"),
            RepoError::Format(e) => write!(f, "repository format error: {e}"),
        }
    }
}

impl std::error::Error for RepoError {}

impl From<io::Error> for RepoError {
    fn from(e: io::Error) -> Self {
        RepoError::Io(e)
    }
}

impl From<FormatError> for RepoError {
    fn from(e: FormatError) -> Self {
        RepoError::Format(e)
    }
}

/// Storage accounting for a repository — the numbers §7 reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageStats {
    /// Number of archives (URLs).
    pub archives: usize,
    /// Total revisions across all archives.
    pub revisions: usize,
    /// Total stored bytes.
    pub bytes: usize,
}

impl StorageStats {
    /// Average bytes per archive (the paper's "14.3 Kbytes/URL").
    pub fn bytes_per_archive(&self) -> f64 {
        if self.archives == 0 {
            0.0
        } else {
            self.bytes as f64 / self.archives as f64
        }
    }
}

/// A keyed store of [`Archive`]s.
pub trait Repository {
    /// Loads the archive for `key`, if present.
    fn load(&self, key: &str) -> Result<Option<Archive>, RepoError>;

    /// Stores (creates or replaces) the archive for `key`.
    fn store(&mut self, key: &str, archive: &Archive) -> Result<(), RepoError>;

    /// Removes the archive for `key`; returns whether one existed.
    fn remove(&mut self, key: &str) -> Result<bool, RepoError>;

    /// All keys, sorted.
    fn keys(&self) -> Result<Vec<String>, RepoError>;

    /// Storage accounting.
    fn stats(&self) -> Result<StorageStats, RepoError>;

    /// Per-key stored size in bytes, sorted descending — §7 singles out
    /// the three largest files ("Three files account for 2.7 Mbytes").
    fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError>;
}

/// An in-memory repository.
#[derive(Debug, Default, Clone)]
pub struct MemRepository {
    archives: BTreeMap<String, Archive>,
}

impl MemRepository {
    /// Creates an empty repository.
    pub fn new() -> MemRepository {
        MemRepository::default()
    }
}

impl Repository for MemRepository {
    fn load(&self, key: &str) -> Result<Option<Archive>, RepoError> {
        Ok(self.archives.get(key).cloned())
    }

    fn store(&mut self, key: &str, archive: &Archive) -> Result<(), RepoError> {
        self.archives.insert(key.to_string(), archive.clone());
        Ok(())
    }

    fn remove(&mut self, key: &str) -> Result<bool, RepoError> {
        Ok(self.archives.remove(key).is_some())
    }

    fn keys(&self) -> Result<Vec<String>, RepoError> {
        Ok(self.archives.keys().cloned().collect())
    }

    fn stats(&self) -> Result<StorageStats, RepoError> {
        let mut s = StorageStats::default();
        for a in self.archives.values() {
            s.archives += 1;
            s.revisions += a.len();
            s.bytes += emit(a).len();
        }
        Ok(s)
    }

    fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError> {
        let mut v: Vec<(String, usize)> = self
            .archives
            .iter()
            .map(|(k, a)| (k.clone(), emit(a).len()))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(v)
    }
}

/// A repository persisting each archive as `<escaped-key>,v` in a
/// directory.
#[derive(Debug)]
pub struct DiskRepository {
    dir: PathBuf,
}

impl DiskRepository {
    /// Opens (creating if needed) a repository rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<DiskRepository, RepoError> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(DiskRepository {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The directory backing this repository.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{},v", escape_key(key)))
    }
}

/// Escapes a key (URL) into a safe flat filename, reversibly.
///
/// Alphanumerics, `-`, `.` and `_` pass through; everything else becomes
/// `%XX`.
pub fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'.' | b'_' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Reverses [`escape_key`]. Returns `None` on malformed escapes.
pub fn unescape_key(escaped: &str) -> Option<String> {
    let bytes = escaped.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = escaped.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl Repository for DiskRepository {
    fn load(&self, key: &str) -> Result<Option<Archive>, RepoError> {
        let path = self.path_for(key);
        match std::fs::read_to_string(&path) {
            Ok(text) => Ok(Some(parse(&text)?)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn store(&mut self, key: &str, archive: &Archive) -> Result<(), RepoError> {
        // Write-then-rename so a crash never leaves a torn archive.
        let path = self.path_for(key);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, emit(archive))?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn remove(&mut self, key: &str) -> Result<bool, RepoError> {
        match std::fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn keys(&self) -> Result<Vec<String>, RepoError> {
        let mut keys = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(",v") {
                if let Some(key) = unescape_key(stem) {
                    keys.push(key);
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn stats(&self) -> Result<StorageStats, RepoError> {
        let mut s = StorageStats::default();
        for key in self.keys()? {
            if let Some(a) = self.load(&key)? {
                s.archives += 1;
                s.revisions += a.len();
                s.bytes += std::fs::metadata(self.path_for(&key))?.len() as usize;
            }
        }
        Ok(s)
    }

    fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError> {
        let mut v = Vec::new();
        for key in self.keys()? {
            let len = std::fs::metadata(self.path_for(&key))?.len() as usize;
            v.push((key, len));
        }
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::Timestamp;

    fn archive(text: &str) -> Archive {
        Archive::create("desc", text, "me", "init", Timestamp(100))
    }

    #[test]
    fn mem_store_load_remove() {
        let mut r = MemRepository::new();
        assert!(r.load("http://x/").unwrap().is_none());
        r.store("http://x/", &archive("body\n")).unwrap();
        assert_eq!(r.load("http://x/").unwrap().unwrap().head_text(), "body\n");
        assert!(r.remove("http://x/").unwrap());
        assert!(!r.remove("http://x/").unwrap());
    }

    #[test]
    fn mem_keys_sorted() {
        let mut r = MemRepository::new();
        r.store("b", &archive("1\n")).unwrap();
        r.store("a", &archive("2\n")).unwrap();
        assert_eq!(r.keys().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn mem_stats_and_sizes() {
        let mut r = MemRepository::new();
        r.store("small", &archive("x\n")).unwrap();
        r.store("large", &archive(&"line of page text\n".repeat(200))).unwrap();
        let s = r.stats().unwrap();
        assert_eq!(s.archives, 2);
        assert_eq!(s.revisions, 2);
        assert!(s.bytes > 3000);
        let sizes = r.sizes().unwrap();
        assert_eq!(sizes[0].0, "large");
        assert!(sizes[0].1 > sizes[1].1);
    }

    #[test]
    fn escape_roundtrip() {
        for key in [
            "http://www.yahoo.com/",
            "http://host:600/a b/c?d=e&f=g",
            "file:/home/user/x.html",
            "weird%percent",
            "",
        ] {
            assert_eq!(unescape_key(&escape_key(key)).as_deref(), Some(key));
        }
    }

    #[test]
    fn escape_produces_safe_names() {
        let e = escape_key("http://a/b?c=d");
        assert!(!e.contains('/'));
        assert!(!e.contains('?'));
        assert!(!e.contains(':'));
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert_eq!(unescape_key("%"), None);
        assert_eq!(unescape_key("%Z9"), None);
        assert_eq!(unescape_key("%2"), None);
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("aide-rcs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = DiskRepository::open(&dir).unwrap();
        let mut a = archive("v1\n");
        a.checkin("v2\n", "me", "second", Timestamp(200)).unwrap();
        r.store("http://host/page.html", &a).unwrap();

        let r2 = DiskRepository::open(&dir).unwrap();
        let loaded = r2.load("http://host/page.html").unwrap().unwrap();
        assert_eq!(loaded, a);
        assert_eq!(r2.keys().unwrap(), vec!["http://host/page.html"]);
        let stats = r2.stats().unwrap();
        assert_eq!(stats.archives, 1);
        assert_eq!(stats.revisions, 2);

        let mut r3 = DiskRepository::open(&dir).unwrap();
        assert!(r3.remove("http://host/page.html").unwrap());
        assert!(r3.load("http://host/page.html").unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
