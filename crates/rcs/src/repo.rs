//! Keyed repositories of archives.
//!
//! The snapshot service stores one archive per URL (§2.2: histories are
//! "addressed by their URLs"). A [`Repository`] maps string keys to
//! [`Archive`]s; [`MemRepository`] backs tests and simulations,
//! [`DiskRepository`] persists each archive as a `,v` file the way the
//! real service kept RCS files in its CGI area. Both report the storage
//! totals §7 measures ("the archive uses under 8 Mbytes of disk storage
//! (an average of 14.3 Kbytes/URL)").
//!
//! # Concurrency
//!
//! Repositories are shared across the snapshot service's worker threads,
//! so every operation takes `&self` and implementations must be
//! [`Send`] + [`Sync`]. Archives come back as [`Arc<Archive>`] handles:
//! readers (diff, history, view) share the stored revision data without
//! copying it, and a check-in builds a new `Arc` that replaces the old
//! one atomically — per-URL readers never observe a half-updated
//! archive.
//!
//! [`MemRepository`] keeps its map in fixed shards, each behind its own
//! `RwLock`, so operations on different URLs almost never touch the same
//! lock. *Exclusion* between two writers of the same URL is not the
//! repository's job: callers that read-modify-write an archive (the
//! snapshot service's Remember path) serialize per URL with their own
//! named locks, in shard-index order when they must span shards (see
//! `aide-snapshot`'s `locks` module for the full ordering invariant).

use crate::archive::Archive;
use crate::format::{emit, parse, FormatError};
use aide_util::checksum::fnv1a64;
use aide_util::sync::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Error from repository operations.
#[derive(Debug)]
pub enum RepoError {
    /// Underlying I/O failure (disk repositories only).
    Io(io::Error),
    /// A stored archive failed to parse.
    Format(FormatError),
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "repository I/O error: {e}"),
            RepoError::Format(e) => write!(f, "repository format error: {e}"),
        }
    }
}

impl std::error::Error for RepoError {}

impl From<io::Error> for RepoError {
    fn from(e: io::Error) -> Self {
        RepoError::Io(e)
    }
}

impl From<FormatError> for RepoError {
    fn from(e: FormatError) -> Self {
        RepoError::Format(e)
    }
}

/// Storage accounting for a repository — the numbers §7 reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageStats {
    /// Number of archives (URLs).
    pub archives: usize,
    /// Total revisions across all archives.
    pub revisions: usize,
    /// Total stored bytes.
    pub bytes: usize,
}

impl StorageStats {
    /// Average bytes per archive (the paper's "14.3 Kbytes/URL").
    pub fn bytes_per_archive(&self) -> f64 {
        if self.archives == 0 {
            0.0
        } else {
            self.bytes as f64 / self.archives as f64
        }
    }
}

/// A keyed, concurrently shareable store of [`Archive`]s.
pub trait Repository: Send + Sync {
    /// Loads a shared handle to the archive for `key`, if present.
    fn load(&self, key: &str) -> Result<Option<Arc<Archive>>, RepoError>;

    /// Stores (creates or replaces) the archive for `key`. Callers that
    /// load-modify-store must provide their own per-key exclusion.
    fn store(&self, key: &str, archive: &Archive) -> Result<(), RepoError>;

    /// Removes the archive for `key`; returns whether one existed.
    fn remove(&self, key: &str) -> Result<bool, RepoError>;

    /// All keys, sorted.
    fn keys(&self) -> Result<Vec<String>, RepoError>;

    /// Storage accounting.
    fn stats(&self) -> Result<StorageStats, RepoError>;

    /// Per-key stored size in bytes, sorted descending — §7 singles out
    /// the three largest files ("Three files account for 2.7 Mbytes").
    fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError>;
}

/// Number of independent buckets in [`MemRepository`]. Power of two,
/// comfortably above typical core counts, so URL-distinct operations
/// rarely share a lock.
const MEM_SHARDS: usize = 64;

/// An in-memory repository, sharded for concurrent access.
pub struct MemRepository {
    shards: Vec<RwLock<BTreeMap<String, Arc<Archive>>>>,
}

impl Default for MemRepository {
    fn default() -> Self {
        MemRepository::new()
    }
}

impl MemRepository {
    /// Creates an empty repository.
    pub fn new() -> MemRepository {
        MemRepository {
            shards: (0..MEM_SHARDS)
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<BTreeMap<String, Arc<Archive>>> {
        &self.shards[fnv1a64(key.as_bytes()) as usize % MEM_SHARDS]
    }

    /// A point-in-time snapshot of every (key, archive) pair, visiting
    /// shards in index order and never holding more than one shard guard.
    fn snapshot(&self) -> Vec<(String, Arc<Archive>)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let guard = shard.read();
            all.extend(guard.iter().map(|(k, a)| (k.clone(), a.clone())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

impl Clone for MemRepository {
    fn clone(&self) -> Self {
        let copy = MemRepository::new();
        for (k, a) in self.snapshot() {
            copy.shard(&k).write().insert(k, a);
        }
        copy
    }
}

impl fmt::Debug for MemRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let keys = self.keys().map_err(|_| fmt::Error)?;
        f.debug_struct("MemRepository")
            .field("keys", &keys)
            .finish()
    }
}

impl Repository for MemRepository {
    fn load(&self, key: &str) -> Result<Option<Arc<Archive>>, RepoError> {
        Ok(self.shard(key).read().get(key).cloned())
    }

    fn store(&self, key: &str, archive: &Archive) -> Result<(), RepoError> {
        let handle = Arc::new(archive.clone());
        self.shard(key).write().insert(key.to_string(), handle);
        Ok(())
    }

    fn remove(&self, key: &str) -> Result<bool, RepoError> {
        Ok(self.shard(key).write().remove(key).is_some())
    }

    fn keys(&self) -> Result<Vec<String>, RepoError> {
        Ok(self.snapshot().into_iter().map(|(k, _)| k).collect())
    }

    fn stats(&self) -> Result<StorageStats, RepoError> {
        let mut s = StorageStats::default();
        // Sizes are computed outside the shard guards: emit() can be
        // expensive and must not block writers (ordering invariant:
        // bucket guards are never held across serialization).
        for (_, a) in self.snapshot() {
            s.archives += 1;
            s.revisions += a.len();
            s.bytes += emit(&a).len();
        }
        Ok(s)
    }

    fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError> {
        let mut v: Vec<(String, usize)> = self
            .snapshot()
            .into_iter()
            .map(|(k, a)| (k, emit(&a).len()))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(v)
    }
}

/// A repository persisting each archive as `<escaped-key>,v` in a
/// directory.
///
/// Distinct keys map to distinct files, so concurrent operations on
/// different URLs are naturally independent; same-key writers rely on
/// the caller's per-URL exclusion, like [`MemRepository`].
#[derive(Debug)]
pub struct DiskRepository {
    dir: PathBuf,
}

impl DiskRepository {
    /// Opens (creating if needed) a repository rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<DiskRepository, RepoError> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(DiskRepository {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The directory backing this repository.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{},v", escape_key(key)))
    }
}

/// Escapes a key (URL) into a safe flat filename, reversibly.
///
/// Alphanumerics, `-`, `.` and `_` pass through; everything else becomes
/// `%XX`.
pub fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'.' | b'_' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Reverses [`escape_key`]. Returns `None` on malformed escapes.
pub fn unescape_key(escaped: &str) -> Option<String> {
    let bytes = escaped.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = escaped.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl Repository for DiskRepository {
    fn load(&self, key: &str) -> Result<Option<Arc<Archive>>, RepoError> {
        let path = self.path_for(key);
        match std::fs::read_to_string(&path) {
            Ok(text) => Ok(Some(Arc::new(parse(&text)?))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn store(&self, key: &str, archive: &Archive) -> Result<(), RepoError> {
        // Write-then-rename so a crash never leaves a torn archive.
        let path = self.path_for(key);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, emit(archive))?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn remove(&self, key: &str) -> Result<bool, RepoError> {
        match std::fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn keys(&self) -> Result<Vec<String>, RepoError> {
        let mut keys = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(",v") {
                if let Some(key) = unescape_key(stem) {
                    keys.push(key);
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn stats(&self) -> Result<StorageStats, RepoError> {
        let mut s = StorageStats::default();
        for key in self.keys()? {
            if let Some(a) = self.load(&key)? {
                s.archives += 1;
                s.revisions += a.len();
                s.bytes += std::fs::metadata(self.path_for(&key))?.len() as usize;
            }
        }
        Ok(s)
    }

    fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError> {
        let mut v = Vec::new();
        for key in self.keys()? {
            let len = std::fs::metadata(self.path_for(&key))?.len() as usize;
            v.push((key, len));
        }
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::Timestamp;

    fn archive(text: &str) -> Archive {
        Archive::create("desc", text, "me", "init", Timestamp(100))
    }

    #[test]
    fn mem_store_load_remove() {
        let r = MemRepository::new();
        assert!(r.load("http://x/").unwrap().is_none());
        r.store("http://x/", &archive("body\n")).unwrap();
        assert_eq!(r.load("http://x/").unwrap().unwrap().head_text(), "body\n");
        assert!(r.remove("http://x/").unwrap());
        assert!(!r.remove("http://x/").unwrap());
    }

    #[test]
    fn mem_keys_sorted() {
        let r = MemRepository::new();
        r.store("b", &archive("1\n")).unwrap();
        r.store("a", &archive("2\n")).unwrap();
        assert_eq!(r.keys().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn mem_stats_and_sizes() {
        let r = MemRepository::new();
        r.store("small", &archive("x\n")).unwrap();
        r.store("large", &archive(&"line of page text\n".repeat(200)))
            .unwrap();
        let s = r.stats().unwrap();
        assert_eq!(s.archives, 2);
        assert_eq!(s.revisions, 2);
        assert!(s.bytes > 3000);
        let sizes = r.sizes().unwrap();
        assert_eq!(sizes[0].0, "large");
        assert!(sizes[0].1 > sizes[1].1);
    }

    #[test]
    fn mem_clone_is_deep_snapshot() {
        let r = MemRepository::new();
        r.store("a", &archive("one\n")).unwrap();
        let snap = r.clone();
        r.store("b", &archive("two\n")).unwrap();
        assert_eq!(
            snap.keys().unwrap(),
            vec!["a"],
            "clone unaffected by later stores"
        );
        assert_eq!(r.keys().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn mem_concurrent_distinct_keys() {
        let r = std::sync::Arc::new(MemRepository::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..20 {
                    let key = format!("http://h{t}/p{k}");
                    r.store(&key, &archive(&format!("body {t} {k}\n"))).unwrap();
                    assert!(r.load(&key).unwrap().is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.stats().unwrap().archives, 160);
    }

    #[test]
    fn escape_roundtrip() {
        for key in [
            "http://www.yahoo.com/",
            "http://host:600/a b/c?d=e&f=g",
            "file:/home/user/x.html",
            "weird%percent",
            "",
        ] {
            assert_eq!(unescape_key(&escape_key(key)).as_deref(), Some(key));
        }
    }

    #[test]
    fn escape_produces_safe_names() {
        let e = escape_key("http://a/b?c=d");
        assert!(!e.contains('/'));
        assert!(!e.contains('?'));
        assert!(!e.contains(':'));
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert_eq!(unescape_key("%"), None);
        assert_eq!(unescape_key("%Z9"), None);
        assert_eq!(unescape_key("%2"), None);
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("aide-rcs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = DiskRepository::open(&dir).unwrap();
        let mut a = archive("v1\n");
        a.checkin("v2\n", "me", "second", Timestamp(200)).unwrap();
        r.store("http://host/page.html", &a).unwrap();

        let r2 = DiskRepository::open(&dir).unwrap();
        let loaded = r2.load("http://host/page.html").unwrap().unwrap();
        assert_eq!(*loaded, a);
        assert_eq!(r2.keys().unwrap(), vec!["http://host/page.html"]);
        let stats = r2.stats().unwrap();
        assert_eq!(stats.archives, 1);
        assert_eq!(stats.revisions, 2);

        let r3 = DiskRepository::open(&dir).unwrap();
        assert!(r3.remove("http://host/page.html").unwrap());
        assert!(r3.load("http://host/page.html").unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
