//! The RCS `,v` file format.
//!
//! Emits and parses the classic `rcsfile(5)` layout: an admin header
//! (`head`, `access`, `symbols`, `locks`, `comment`), a delta table (per
//! revision: `date`/`author`/`state`, `branches`, `next`), a `desc`
//! string, and per-revision `log`/`text` blocks where the head's text is
//! stored in full and every other revision's text is a `diff -n` script
//! recovering it from its successor. `@` is the string quote; literal `@`
//! doubles.
//!
//! Only the trunk subset AIDE uses is implemented (no branches, no locks,
//! no symbols) — the same subset the paper's perl scripts drive via `ci`,
//! `co` and `rlog`.

use crate::archive::{Archive, RevId, RevisionMeta};
use crate::delta::Delta;
use aide_util::time::Timestamp;
use std::fmt;

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// What went wrong.
    pub message: String,
}

impl FormatError {
    fn new(m: impl Into<String>) -> FormatError {
        FormatError { message: m.into() }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RCS format error: {}", self.message)
    }
}

impl std::error::Error for FormatError {}

/// Quotes a string in RCS `@` syntax.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('@');
    for c in s.chars() {
        if c == '@' {
            out.push('@');
        }
        out.push(c);
    }
    out.push('@');
    out
}

/// Serializes an archive in `,v` syntax.
///
/// # Examples
///
/// ```
/// use aide_rcs::archive::Archive;
/// use aide_rcs::format::{emit, parse};
/// use aide_util::time::Timestamp;
///
/// let a = Archive::create("http://x/", "hello\n", "alice", "init", Timestamp(1000));
/// let text = emit(&a);
/// assert!(text.starts_with("head\t1.1;"));
/// assert_eq!(parse(&text).unwrap(), a);
/// ```
pub fn emit(archive: &Archive) -> String {
    let mut out = String::new();
    out.push_str(&format!("head\t{};\n", archive.head()));
    out.push_str("access;\n");
    out.push_str("symbols;\n");
    out.push_str("locks; strict;\n");
    out.push_str("comment\t@# @;\n\n");

    // Delta table, newest first; `next` points at the previous trunk rev.
    for meta in archive.metas().iter().rev() {
        let next = if meta.id.0 > 1 {
            format!("1.{}", meta.id.0 - 1)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{}\ndate\t{};\tauthor {};\tstate Exp;\nbranches;\nnext\t{};\n\n",
            meta.id,
            meta.date.to_rcs_date(),
            quote(&meta.author),
            next
        ));
    }

    out.push_str("\ndesc\n");
    out.push_str(&quote(&archive.description));
    out.push_str("\n\n");

    // Text blocks, newest first: head in full, others as reverse deltas.
    for (idx, meta) in archive.metas().iter().enumerate().rev() {
        out.push_str(&format!("\n{}\nlog\n{}\ntext\n", meta.id, quote(&meta.log)));
        if meta.id == archive.head() {
            out.push_str(&quote(archive.head_text()));
        } else {
            out.push_str(&quote(&archive.reverse_deltas[idx].to_text()));
        }
        out.push_str("\n\n");
    }
    out
}

/// A cursor over the `,v` byte stream.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Reads the next whitespace/semicolon-delimited word.
    fn word(&mut self) -> Result<&'a str, FormatError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let b = self.src.as_bytes()[self.pos];
            if b.is_ascii_whitespace() || b == b';' || b == b'@' {
                break;
            }
            self.pos += 1;
        }
        if start == self.pos {
            return Err(FormatError::new(format!(
                "expected word at byte {}",
                self.pos
            )));
        }
        Ok(&self.src[start..self.pos])
    }

    /// Peeks whether the next non-whitespace char is `c`.
    fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.src[self.pos..].starts_with(c)
    }

    fn expect(&mut self, c: char) -> Result<(), FormatError> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(FormatError::new(format!(
                "expected {c:?} at byte {} (found {:?})",
                self.pos,
                &self.src[self.pos..self.src.len().min(self.pos + 10)]
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), FormatError> {
        let w = self.word()?;
        if w == kw {
            Ok(())
        } else {
            Err(FormatError::new(format!("expected {kw:?}, found {w:?}")))
        }
    }

    /// Reads an `@`-quoted string, un-doubling `@@`.
    fn at_string(&mut self) -> Result<String, FormatError> {
        self.expect('@')?;
        let mut out = String::new();
        let bytes = self.src.as_bytes();
        loop {
            if self.pos >= bytes.len() {
                return Err(FormatError::new("unterminated @ string"));
            }
            if bytes[self.pos] == b'@' {
                if bytes.get(self.pos + 1) == Some(&b'@') {
                    out.push('@');
                    self.pos += 2;
                } else {
                    self.pos += 1;
                    return Ok(out);
                }
            } else {
                // Copy one UTF-8 character.
                let ch_len = match bytes[self.pos] {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                out.push_str(&self.src[self.pos..self.pos + ch_len]);
                self.pos += ch_len;
            }
        }
    }

    /// Skips an optional value up to the next `;`, then the `;` itself.
    fn skip_phrase(&mut self) -> Result<(), FormatError> {
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Err(FormatError::new("unterminated phrase"));
            }
            if self.src.as_bytes()[self.pos] == b';' {
                self.pos += 1;
                return Ok(());
            }
            if self.src.as_bytes()[self.pos] == b'@' {
                self.at_string()?;
            } else {
                self.pos += 1;
            }
        }
    }
}

/// Parses a `,v` file emitted by [`emit`] (or real RCS, for the trunk
/// subset).
pub fn parse(text: &str) -> Result<Archive, FormatError> {
    let mut c = Cursor { src: text, pos: 0 };

    c.expect_keyword("head")?;
    let head = RevId::parse(c.word()?).ok_or_else(|| FormatError::new("bad head revision"))?;
    c.expect(';')?;

    // Optional admin phrases until the first revision number.
    for kw in ["access", "symbols", "locks", "strict", "comment", "expand"] {
        let Some(first) = kw.chars().next() else {
            continue;
        };
        if c.peek_is(first) {
            let save = c.pos;
            match c.word() {
                Ok(w) if w == kw => {
                    if kw == "strict" {
                        c.expect(';')?;
                    } else {
                        c.skip_phrase()?;
                    }
                }
                _ => {
                    c.pos = save;
                    break;
                }
            }
        }
    }

    // Delta table: "<rev> date ...; author ...; state ...; branches; next ...;"
    let mut metas_desc: Vec<(RevId, Timestamp, String)> = Vec::new();
    loop {
        let save = c.pos;
        c.skip_ws();
        if c.src[c.pos..].starts_with("desc") {
            c.pos = save;
            break;
        }
        let rev = RevId::parse(c.word()?)
            .ok_or_else(|| FormatError::new("bad revision in delta table"))?;
        c.expect_keyword("date")?;
        let date =
            Timestamp::parse_rcs_date(c.word()?).ok_or_else(|| FormatError::new("bad date"))?;
        c.expect(';')?;
        c.expect_keyword("author")?;
        c.skip_ws();
        let author = if c.peek_is('@') {
            c.at_string()?
        } else {
            c.word()?.to_string()
        };
        c.expect(';')?;
        c.expect_keyword("state")?;
        c.skip_phrase()?;
        c.expect_keyword("branches")?;
        c.skip_phrase()?;
        c.expect_keyword("next")?;
        c.skip_phrase()?;
        metas_desc.push((rev, date, author));
    }

    c.expect_keyword("desc")?;
    let description = c.at_string()?;

    // Text blocks: "<rev> log <@str@> text <@str@>".
    let mut blocks: Vec<(RevId, String, String)> = Vec::new();
    loop {
        c.skip_ws();
        if c.pos >= c.src.len() {
            break;
        }
        let rev = RevId::parse(c.word()?)
            .ok_or_else(|| FormatError::new("bad revision in text section"))?;
        c.expect_keyword("log")?;
        let log = c.at_string()?;
        c.expect_keyword("text")?;
        let body = c.at_string()?;
        blocks.push((rev, log, body));
    }

    // Assemble: metas oldest-first; deltas for non-head revisions.
    metas_desc.sort_by_key(|(rev, _, _)| *rev);
    blocks.sort_by_key(|(rev, _, _)| *rev);
    if metas_desc.len() != blocks.len() {
        return Err(FormatError::new("delta table and text blocks disagree"));
    }
    let (Some(newest_meta), Some(newest_block)) = (metas_desc.last(), blocks.last()) else {
        return Err(FormatError::new("delta table and text blocks disagree"));
    };
    if newest_meta.0 != head {
        return Err(FormatError::new("head does not match newest revision"));
    }
    let head_text = newest_block.2.clone();
    let mut reverse_deltas = Vec::new();
    for (rev, _, body) in blocks.iter().take(blocks.len() - 1) {
        let delta =
            Delta::parse(body).map_err(|e| FormatError::new(format!("delta for {rev}: {e}")))?;
        reverse_deltas.push(delta);
    }

    // Recover per-revision text lengths by walking the chain backwards.
    let mut lens = vec![0usize; metas_desc.len()];
    let mut cur = head_text.clone();
    lens[metas_desc.len() - 1] = cur.len();
    for k in (0..reverse_deltas.len()).rev() {
        cur = reverse_deltas[k]
            .apply(&cur)
            .map_err(|e| FormatError::new(format!("applying delta {k}: {e}")))?;
        lens[k] = cur.len();
    }

    let metas: Vec<RevisionMeta> = metas_desc
        .into_iter()
        .zip(blocks.iter())
        .zip(lens)
        .map(
            |(((id, date, author), (_, log, _)), text_len)| RevisionMeta {
                id,
                date,
                author,
                log: log.clone(),
                text_len,
            },
        )
        .collect();

    Ok(Archive {
        description,
        metas,
        head_text,
        reverse_deltas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::Duration;

    fn t(day: u64) -> Timestamp {
        Timestamp::from_ymd_hms(1995, 10, 1, 8, 30, 0) + Duration::days(day)
    }

    fn sample() -> Archive {
        let mut a = Archive::create(
            "http://www.usenix.org/",
            "<HTML>\n<TITLE>USENIX</TITLE>\nv1 body\n</HTML>\n",
            "douglis@research.att.com",
            "initial snapshot",
            t(0),
        );
        a.checkin(
            "<HTML>\n<TITLE>USENIX</TITLE>\nv2 body with more\n</HTML>\n",
            "ball@research.att.com",
            "second snapshot",
            t(3),
        )
        .unwrap();
        a.checkin(
            "<HTML>\n<TITLE>USENIX Association</TITLE>\nv2 body with more\nplus a line\n</HTML>\n",
            "douglis@research.att.com",
            "third",
            t(9),
        )
        .unwrap();
        a
    }

    #[test]
    fn emit_parse_roundtrip() {
        let a = sample();
        let text = emit(&a);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn roundtrip_preserves_checkouts() {
        let a = sample();
        let parsed = parse(&emit(&a)).unwrap();
        for meta in a.metas() {
            assert_eq!(
                parsed.checkout(meta.id).unwrap(),
                a.checkout(meta.id).unwrap(),
                "checkout {} differs",
                meta.id
            );
        }
    }

    #[test]
    fn at_signs_in_content_escape() {
        let mut a = Archive::create(
            "mailto:douglis@research.att.com",
            "email me @ douglis@research.att.com\n",
            "douglis@research.att.com",
            "log with @ sign",
            t(0),
        );
        a.checkin("now with @@ doubled already\n", "x@y", "l@g", t(1))
            .unwrap();
        let parsed = parse(&emit(&a)).unwrap();
        assert_eq!(parsed, a);
        assert_eq!(
            parsed.checkout(RevId(1)).unwrap(),
            "email me @ douglis@research.att.com\n"
        );
    }

    #[test]
    fn single_revision_archive() {
        let a = Archive::create("d", "only\n", "me", "init", t(0));
        assert_eq!(parse(&emit(&a)).unwrap(), a);
    }

    #[test]
    fn text_without_trailing_newline_roundtrips() {
        let mut a = Archive::create("d", "no newline at end", "me", "init", t(0));
        a.checkin("still no newline at end, but changed", "me", "l", t(1))
            .unwrap();
        a.checkin("now with newline\n", "me", "l", t(2)).unwrap();
        let parsed = parse(&emit(&a)).unwrap();
        assert_eq!(parsed.checkout(RevId(1)).unwrap(), "no newline at end");
        assert_eq!(
            parsed.checkout(RevId(2)).unwrap(),
            "still no newline at end, but changed"
        );
    }

    #[test]
    fn empty_revision_text() {
        let mut a = Archive::create("d", "", "me", "init", t(0));
        a.checkin("content appears\n", "me", "l", t(1)).unwrap();
        let parsed = parse(&emit(&a)).unwrap();
        assert_eq!(parsed.checkout(RevId(1)).unwrap(), "");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("not an rcs file").is_err());
        assert!(parse("head 1.1;").is_err());
    }

    #[test]
    fn parse_rejects_mismatched_head() {
        let a = sample();
        let text = emit(&a).replace("head\t1.3;", "head\t1.9;");
        assert!(parse(&text).is_err());
    }

    #[test]
    fn header_shape() {
        let text = emit(&sample());
        assert!(text.starts_with("head\t1.3;\naccess;\nsymbols;\nlocks; strict;\n"));
        assert!(text.contains("desc\n@http://www.usenix.org/@"));
        assert!(text.contains("date\t1995.10.01.08.30.00;"));
    }

    #[test]
    fn many_revisions_roundtrip() {
        let mut a = Archive::create("d", "r1\n", "u", "init", t(0));
        for i in 2..=40u64 {
            a.checkin(
                &format!("r{i}\nshared tail\n"),
                "u",
                &format!("rev {i}"),
                t(i),
            )
            .unwrap();
        }
        let parsed = parse(&emit(&a)).unwrap();
        assert_eq!(parsed.len(), 40);
        assert_eq!(parsed.checkout(RevId(1)).unwrap(), "r1\n");
        assert_eq!(parsed.checkout(RevId(25)).unwrap(), "r25\nshared tail\n");
    }
}
