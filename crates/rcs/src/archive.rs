//! A single document's revision history.
//!
//! Like an RCS `,v` file: the newest revision ("head") is stored in full;
//! every older revision is a reverse delta off its successor, so frequent
//! small edits cost little ("except for pages that change in many respects
//! at once, the storage overhead is minimal", §4.1). Revisions are
//! numbered `1.1`, `1.2`, … on a single trunk, carry an author, a
//! datestamp and a log message, and can be fetched by number or by date —
//! the "time travel" §2.2 compares to 3DFS.

use crate::delta::{Delta, DeltaError};
use aide_util::time::Timestamp;
use std::fmt;

/// A trunk revision number, rendered `1.<n>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RevId(pub u32);

impl RevId {
    /// The first revision, `1.1`.
    pub const FIRST: RevId = RevId(1);

    /// The next revision number.
    pub fn next(self) -> RevId {
        RevId(self.0 + 1)
    }

    /// Parses `1.<n>`.
    pub fn parse(s: &str) -> Option<RevId> {
        let rest = s.trim().strip_prefix("1.")?;
        rest.parse::<u32>().ok().filter(|&n| n > 0).map(RevId)
    }
}

impl fmt::Display for RevId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "1.{}", self.0)
    }
}

/// Metadata of one revision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevisionMeta {
    /// The revision number.
    pub id: RevId,
    /// Check-in time.
    pub date: Timestamp,
    /// Who checked it in (an email-style identifier in AIDE).
    pub author: String,
    /// Log message.
    pub log: String,
    /// Byte length of the revision's full text (computed at check-in; RCS
    /// itself does not store this, but the storage experiments want it).
    pub text_len: usize,
}

/// Result of a check-in attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckinOutcome {
    /// A new revision was created.
    NewRevision(RevId),
    /// The text was identical to the head; nothing was stored ("the RCS
    /// ci command ensures that it is not saved if it is unchanged", §6).
    Unchanged(RevId),
}

impl CheckinOutcome {
    /// The revision the text now corresponds to, either way.
    pub fn rev(&self) -> RevId {
        match self {
            CheckinOutcome::NewRevision(r) | CheckinOutcome::Unchanged(r) => *r,
        }
    }

    /// True if a new revision was created.
    pub fn is_new(&self) -> bool {
        matches!(self, CheckinOutcome::NewRevision(_))
    }
}

/// Errors from archive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// The requested revision does not exist.
    NoSuchRevision(RevId),
    /// No revision existed at the requested date.
    NothingAtDate(Timestamp),
    /// A stored delta failed to apply — archive corruption.
    Corrupt(String),
    /// Check-in dates must be non-decreasing along the trunk.
    DateRegression {
        /// Date of the current head.
        head: Timestamp,
        /// The offending earlier date.
        attempted: Timestamp,
    },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::NoSuchRevision(r) => write!(f, "no such revision {r}"),
            ArchiveError::NothingAtDate(t) => {
                write!(f, "no revision existed at {}", t.to_rcs_date())
            }
            ArchiveError::Corrupt(m) => write!(f, "corrupt archive: {m}"),
            ArchiveError::DateRegression { head, attempted } => write!(
                f,
                "check-in date {} precedes head date {}",
                attempted.to_rcs_date(),
                head.to_rcs_date()
            ),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<DeltaError> for ArchiveError {
    fn from(e: DeltaError) -> Self {
        ArchiveError::Corrupt(e.to_string())
    }
}

/// One document's complete history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Archive {
    /// Free-form description (AIDE stores the source URL here).
    pub description: String,
    /// Metadata for every revision, oldest first. Non-empty.
    pub(crate) metas: Vec<RevisionMeta>,
    /// Full text of the newest revision.
    pub(crate) head_text: String,
    /// `reverse_deltas[k]` transforms revision `k+2`'s text into revision
    /// `k+1`'s text (0-based: delta k recovers `metas[k]` from
    /// `metas[k+1]`). Length is `metas.len() - 1`.
    pub(crate) reverse_deltas: Vec<Delta>,
}

impl Archive {
    /// Creates an archive with an initial revision (`ci` of a new file).
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_rcs::archive::{Archive, RevId};
    /// use aide_util::time::Timestamp;
    ///
    /// let a = Archive::create(
    ///     "http://www.usenix.org/",
    ///     "<HTML>v1</HTML>\n",
    ///     "douglis@research.att.com",
    ///     "initial snapshot",
    ///     Timestamp::from_ymd_hms(1995, 9, 29, 12, 0, 0),
    /// );
    /// assert_eq!(a.head(), RevId(1));
    /// ```
    pub fn create(
        description: &str,
        text: &str,
        author: &str,
        log: &str,
        date: Timestamp,
    ) -> Archive {
        Archive {
            description: description.to_string(),
            metas: vec![RevisionMeta {
                id: RevId::FIRST,
                date,
                author: author.to_string(),
                log: log.to_string(),
                text_len: text.len(),
            }],
            head_text: text.to_string(),
            reverse_deltas: Vec::new(),
        }
    }

    /// The newest revision number.
    pub fn head(&self) -> RevId {
        // aide-lint: allow(no-panic, panic-reach): archives hold at
        // least one revision by construction (see `is_empty`)
        self.metas.last().expect("archive never empty").id
    }

    /// Number of revisions stored.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Archives always hold at least one revision.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The full text of the newest revision (free: stored directly).
    pub fn head_text(&self) -> &str {
        &self.head_text
    }

    /// Revision metadata, oldest first (`rlog` order is newest first; see
    /// [`Archive::log`]).
    pub fn metas(&self) -> &[RevisionMeta] {
        &self.metas
    }

    /// Metadata for one revision.
    pub fn meta(&self, rev: RevId) -> Result<&RevisionMeta, ArchiveError> {
        self.metas
            .iter()
            .find(|m| m.id == rev)
            .ok_or(ArchiveError::NoSuchRevision(rev))
    }

    /// `rlog`: revision metadata, newest first.
    pub fn log(&self) -> Vec<&RevisionMeta> {
        self.metas.iter().rev().collect()
    }

    /// Checks in `text` as a new head revision (`ci`).
    ///
    /// If `text` equals the current head, nothing is stored and
    /// [`CheckinOutcome::Unchanged`] reports the existing head revision.
    /// Dates must be non-decreasing; the paper notes the next version of
    /// snapshot dropped pure date addressing precisely because
    /// "timestamps provided for a page do not increase monotonically" —
    /// the archive enforces monotonicity at the check-in level instead.
    pub fn checkin(
        &mut self,
        text: &str,
        author: &str,
        log: &str,
        date: Timestamp,
    ) -> Result<CheckinOutcome, ArchiveError> {
        if text == self.head_text {
            return Ok(CheckinOutcome::Unchanged(self.head()));
        }
        // aide-lint: allow(no-panic, panic-reach): archives hold at
        // least one revision by construction (see `is_empty`)
        let head_meta = self.metas.last().expect("archive never empty");
        if date < head_meta.date {
            return Err(ArchiveError::DateRegression {
                head: head_meta.date,
                attempted: date,
            });
        }
        // Reverse delta: from the new text back to the current head.
        let reverse = Delta::compute(text, &self.head_text);
        self.reverse_deltas.push(reverse);
        let id = self.head().next();
        self.metas.push(RevisionMeta {
            id,
            date,
            author: author.to_string(),
            log: log.to_string(),
            text_len: text.len(),
        });
        self.head_text = text.to_string();
        Ok(CheckinOutcome::NewRevision(id))
    }

    /// Checks out the full text of `rev` (`co -r`).
    ///
    /// Cost is proportional to the number of deltas between `rev` and the
    /// head — the RCS reverse-delta trade-off: new revisions are cheap,
    /// ancient ones cost a delta chain.
    pub fn checkout(&self, rev: RevId) -> Result<String, ArchiveError> {
        let pos = self
            .metas
            .iter()
            .position(|m| m.id == rev)
            .ok_or(ArchiveError::NoSuchRevision(rev))?;
        // Deltas applied, i.e. the checkout's distance from the head.
        aide_obs::observe(
            "rcs.checkout.chain",
            (self.reverse_deltas.len() - pos) as u64,
        );
        let mut text = self.head_text.clone();
        // Walk backwards from the head applying reverse deltas.
        for k in (pos..self.reverse_deltas.len()).rev() {
            text = self.reverse_deltas[k].apply(&text)?;
        }
        Ok(text)
    }

    /// Checks out the revision in force at `date` (`co -d`): the newest
    /// revision whose check-in date is `<= date`.
    pub fn checkout_at(&self, date: Timestamp) -> Result<(RevId, String), ArchiveError> {
        let rev = self
            .metas
            .iter()
            .rev()
            .find(|m| m.date <= date)
            .map(|m| m.id)
            .ok_or(ArchiveError::NothingAtDate(date))?;
        Ok((rev, self.checkout(rev)?))
    }

    /// The revision *closest* to `date`, Memento TimeGate style
    /// (RFC 7089 §4.5.3): dates before the first revision clamp to the
    /// first, dates after the last clamp to the last, anything between
    /// picks whichever neighbour is nearer in time — the earlier one on
    /// an exact tie. Unlike [`Archive::checkout_at`] this never fails:
    /// archives hold at least one revision by construction.
    pub fn closest_to(&self, date: Timestamp) -> (RevId, Timestamp) {
        let mut best = &self.metas[0];
        for m in &self.metas {
            let d_best = best.date.0.abs_diff(date.0);
            let d_m = m.date.0.abs_diff(date.0);
            if d_m < d_best {
                best = m;
            }
        }
        (best.id, best.date)
    }

    /// `rcsdiff`: the delta transforming `from`'s text into `to`'s.
    pub fn diff(&self, from: RevId, to: RevId) -> Result<Delta, ArchiveError> {
        let a = self.checkout(from)?;
        let b = self.checkout(to)?;
        Ok(Delta::compute(&a, &b))
    }

    /// Approximate storage footprint in bytes: head text plus all stored
    /// deltas plus metadata — what the §7 disk-usage experiment measures.
    pub fn byte_size(&self) -> usize {
        let meta: usize = self
            .metas
            .iter()
            .map(|m| m.author.len() + m.log.len() + 64)
            .sum();
        self.head_text.len()
            + self
                .reverse_deltas
                .iter()
                .map(Delta::byte_size)
                .sum::<usize>()
            + meta
            + self.description.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: u64) -> Timestamp {
        Timestamp::from_ymd_hms(1995, 9, 1, 0, 0, 0) + aide_util::time::Duration::days(day)
    }

    fn sample() -> Archive {
        let mut a = Archive::create("http://x/", "v1 line\ncommon\n", "alice", "first", t(0));
        a.checkin("v2 line\ncommon\n", "bob", "second", t(1))
            .unwrap();
        a.checkin("v3 line\ncommon\nextra\n", "alice", "third", t(2))
            .unwrap();
        a
    }

    #[test]
    fn create_and_head() {
        let a = Archive::create("d", "text\n", "me", "log", t(0));
        assert_eq!(a.head(), RevId(1));
        assert_eq!(a.len(), 1);
        assert_eq!(a.head_text(), "text\n");
    }

    #[test]
    fn checkin_advances_head() {
        let a = sample();
        assert_eq!(a.head(), RevId(3));
        assert_eq!(a.len(), 3);
        assert_eq!(a.head_text(), "v3 line\ncommon\nextra\n");
    }

    #[test]
    fn unchanged_checkin_stores_nothing() {
        let mut a = sample();
        let before = a.len();
        let out = a
            .checkin("v3 line\ncommon\nextra\n", "carol", "noop", t(3))
            .unwrap();
        assert_eq!(out, CheckinOutcome::Unchanged(RevId(3)));
        assert_eq!(a.len(), before);
    }

    #[test]
    fn checkout_every_revision() {
        let a = sample();
        assert_eq!(a.checkout(RevId(1)).unwrap(), "v1 line\ncommon\n");
        assert_eq!(a.checkout(RevId(2)).unwrap(), "v2 line\ncommon\n");
        assert_eq!(a.checkout(RevId(3)).unwrap(), "v3 line\ncommon\nextra\n");
        assert!(matches!(
            a.checkout(RevId(9)),
            Err(ArchiveError::NoSuchRevision(_))
        ));
    }

    #[test]
    fn checkout_by_date() {
        let a = sample();
        assert_eq!(a.checkout_at(t(0)).unwrap().0, RevId(1));
        // Between rev 2 and rev 3.
        assert_eq!(
            a.checkout_at(t(1) + aide_util::time::Duration::hours(5))
                .unwrap()
                .0,
            RevId(2)
        );
        assert_eq!(a.checkout_at(t(10)).unwrap().0, RevId(3));
        assert!(matches!(
            a.checkout_at(Timestamp::EPOCH),
            Err(ArchiveError::NothingAtDate(_))
        ));
    }

    #[test]
    fn closest_to_clamps_and_picks_nearest() {
        let a = sample(); // revisions at t(0), t(1), t(2)
                          // Before the first revision: clamp to the first (RFC 7089).
        assert_eq!(a.closest_to(Timestamp::EPOCH), (RevId(1), t(0)));
        // After the last: clamp to the last.
        assert_eq!(a.closest_to(t(30)), (RevId(3), t(2)));
        // Exact match wins outright.
        assert_eq!(a.closest_to(t(1)), (RevId(2), t(1)));
        // Between revisions: the nearer neighbour...
        assert_eq!(
            a.closest_to(t(1) + aide_util::time::Duration::hours(2)),
            (RevId(2), t(1))
        );
        assert_eq!(
            a.closest_to(t(2) - aide_util::time::Duration::hours(2)),
            (RevId(3), t(2))
        );
        // ...and the earlier one on a dead-centre tie.
        assert_eq!(
            a.closest_to(t(1) + aide_util::time::Duration::hours(12)),
            (RevId(2), t(1))
        );
    }

    #[test]
    fn date_regression_rejected() {
        let mut a = sample();
        let err = a.checkin("newer\n", "x", "l", t(0)).unwrap_err();
        assert!(matches!(err, ArchiveError::DateRegression { .. }));
    }

    #[test]
    fn equal_date_checkin_allowed() {
        let mut a = sample();
        assert!(a
            .checkin("same day edit\n", "x", "l", t(2))
            .unwrap()
            .is_new());
    }

    #[test]
    fn log_is_newest_first() {
        let a = sample();
        let ids: Vec<RevId> = a.log().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![RevId(3), RevId(2), RevId(1)]);
    }

    #[test]
    fn diff_between_revisions() {
        let a = sample();
        let d = a.diff(RevId(1), RevId(3)).unwrap();
        assert_eq!(
            d.apply("v1 line\ncommon\n").unwrap(),
            "v3 line\ncommon\nextra\n"
        );
        let d_self = a.diff(RevId(2), RevId(2)).unwrap();
        assert!(d_self.is_empty());
    }

    #[test]
    fn storage_grows_sublinearly_for_small_edits() {
        // 50 revisions of a 100-line page, one line changed per revision:
        // reverse-delta storage must be far below 50 full copies.
        let base: Vec<String> = (0..100)
            .map(|i| format!("line {i} stable content here\n"))
            .collect();
        let mut a = Archive::create("u", &base.concat(), "w", "init", t(0));
        for rev in 1..50u64 {
            let mut lines = base.clone();
            lines[(rev as usize * 7) % 100] = format!("edited at revision {rev}\n");
            a.checkin(&lines.concat(), "w", "edit", t(rev)).unwrap();
        }
        let full_copies = 50 * base.concat().len();
        assert!(
            a.byte_size() < full_copies / 5,
            "archive {} bytes vs {} for full copies",
            a.byte_size(),
            full_copies
        );
    }

    #[test]
    fn rev_id_parse_and_display() {
        assert_eq!(RevId::parse("1.7"), Some(RevId(7)));
        assert_eq!(RevId::parse(" 1.1 "), Some(RevId(1)));
        assert_eq!(RevId::parse("2.1"), None);
        assert_eq!(RevId::parse("1.0"), None);
        assert_eq!(RevId::parse("1."), None);
        assert_eq!(RevId(12).to_string(), "1.12");
    }

    #[test]
    fn meta_lookup() {
        let a = sample();
        assert_eq!(a.meta(RevId(2)).unwrap().author, "bob");
        assert!(a.meta(RevId(99)).is_err());
    }

    #[test]
    fn text_len_recorded() {
        let a = sample();
        assert_eq!(
            a.meta(RevId(1)).unwrap().text_len,
            "v1 line\ncommon\n".len()
        );
        assert_eq!(a.meta(RevId(3)).unwrap().text_len, a.head_text().len());
    }
}
