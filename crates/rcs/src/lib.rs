//! An RCS-style reverse-delta revision control substrate.
//!
//! The paper's snapshot service "uses the Revision Control System (RCS)
//! to compactly maintain a history of documents, addressed by their URLs"
//! (§2.2): check-in "saves only the differences between the page and its
//! previously checked-in version" (§4.1), and a page can be requested "as
//! it existed at a particular time" via RCS datestamps. §8.1 additionally
//! exposes `rlog`, `co` and `rcsdiff` through CGI scripts.
//!
//! This crate reimplements the pieces of RCS those features rely on:
//!
//! - [`delta`]: the `diff -n` edit commands (`a`/`d`) RCS stores, with
//!   computation (via [`aide_diffcore`]) and application.
//! - [`archive`]: a single file's history — full head text plus reverse
//!   deltas — with `ci` / `co` / `rlog` / `rcsdiff` equivalents, retrieval
//!   by revision or by date, and idempotent check-in of unchanged text.
//! - [`format`](mod@crate::format): the RCS `,v` file format (emit and parse), so archives
//!   survive round trips through storage.
//! - [`repo`]: the keyed [`Repository`] abstraction over archives, its
//!   in-memory reference implementation, and the storage accounting the
//!   paper's §7 reports on (the crash-safe on-disk engine lives in
//!   `aide-store`).
//! - [`keyword`]: `$Id$` / `$Revision$` / `$Date$` keyword expansion.

pub mod archive;
pub mod delta;
pub mod format;
pub mod keyword;
pub mod repo;

pub use archive::{Archive, CheckinOutcome, RevId, RevisionMeta};
pub use delta::Delta;
pub use repo::{MemRepository, Repository};
