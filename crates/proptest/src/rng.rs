//! The deterministic RNG behind every generated value.

/// splitmix64: tiny, fast, and statistically fine for test-input
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible
        // for test generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`; empty ranges yield `lo`.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.below(hi - lo)
        }
    }

    /// A coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// FNV-1a over a test name, for per-test seeds.
pub fn hash_seed(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
