//! The `Strategy` trait and its combinators.

use crate::regex::RegexGen;
use crate::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A strategy generating exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// One type-erased variant of a [`Union`].
pub type UnionVariant<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// The result of [`prop_oneof!`](crate::prop_oneof): a uniform choice
/// among type-erased strategies.
pub struct Union<T> {
    variants: Vec<UnionVariant<T>>,
}

impl<T> Union<T> {
    /// A union over `variants` (must be nonempty).
    pub fn new(variants: Vec<UnionVariant<T>>) -> Union<T> {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        (self.variants[i])(rng)
    }
}

/// `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                if self.is_empty() {
                    return self.start;
                }
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                ((self.start as i128) + off as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String literals are regex strategies: `"[a-z]{1,8}" ` generates
/// matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        RegexGen::compile(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        RegexGen::compile(self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
