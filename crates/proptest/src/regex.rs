//! A generator for the regex subset the workspace's string strategies
//! use: literals, `\`-escapes, `.`, character classes with ranges,
//! non-capturing use of `(...)` groups, and the `{m,n}` / `{n}` / `?` /
//! `*` / `+` quantifiers. Alternation (`|`) and anchors are not
//! supported — no strategy in the tree uses them.

use crate::TestRng;

const PRINTABLE: (char, char) = (' ', '~');
/// Open repetition operators (`*`, `+`) are capped here.
const UNBOUNDED_MAX: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// Expanded character alternatives.
    Class(Vec<char>),
    Group(Vec<Quantified>),
}

#[derive(Debug, Clone)]
struct Quantified {
    node: Node,
    min: u32,
    max: u32,
}

/// A compiled generator for one pattern.
#[derive(Debug, Clone)]
pub struct RegexGen {
    seq: Vec<Quantified>,
}

impl RegexGen {
    /// Compiles `pattern`; panics on syntax outside the supported subset
    /// (a test-authoring error, not a runtime condition).
    pub fn compile(pattern: &str) -> RegexGen {
        let mut chars: Vec<char> = pattern.chars().collect();
        chars.reverse(); // pop() from the front
        let seq = parse_seq(&mut chars, pattern);
        assert!(
            chars.is_empty(),
            "unbalanced ')' in regex strategy {pattern:?}"
        );
        RegexGen { seq }
    }

    /// Generates one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit_seq(&self.seq, rng, &mut out);
        out
    }
}

fn emit_seq(seq: &[Quantified], rng: &mut TestRng, out: &mut String) {
    for q in seq {
        let n = rng.in_range(q.min as u64, q.max as u64 + 1) as u32;
        for _ in 0..n {
            match &q.node {
                Node::Lit(c) => out.push(*c),
                Node::Class(alts) => {
                    let i = rng.below(alts.len() as u64) as usize;
                    out.push(alts[i]);
                }
                Node::Group(inner) => emit_seq(inner, rng, out),
            }
        }
    }
}

/// Parses until end of input or a closing `)` (which is consumed by the
/// `(`-handling caller's recursion exit).
fn parse_seq(chars: &mut Vec<char>, pattern: &str) -> Vec<Quantified> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.last() {
        if c == ')' {
            break;
        }
        chars.pop();
        let node = match c {
            '[' => Node::Class(parse_class(chars, pattern)),
            '(' => {
                let inner = parse_seq(chars, pattern);
                assert_eq!(
                    chars.pop(),
                    Some(')'),
                    "unclosed '(' in regex strategy {pattern:?}"
                );
                Node::Group(inner)
            }
            '\\' => {
                Node::Lit(unescape(chars.pop().unwrap_or_else(|| {
                    panic!("dangling '\\' in regex strategy {pattern:?}")
                })))
            }
            '.' => {
                let (lo, hi) = PRINTABLE;
                Node::Class((lo..=hi).collect())
            }
            '|' => panic!("alternation is not supported in regex strategy {pattern:?}"),
            other => Node::Lit(other),
        };
        let (min, max) = parse_quantifier(chars, pattern);
        seq.push(Quantified { node, min, max });
    }
    seq
}

fn parse_class(chars: &mut Vec<char>, pattern: &str) -> Vec<char> {
    let mut alts = Vec::new();
    loop {
        let c = chars
            .pop()
            .unwrap_or_else(|| panic!("unclosed '[' in regex strategy {pattern:?}"));
        match c {
            ']' => break,
            '\\' => alts.push(unescape(chars.pop().unwrap_or_else(|| {
                panic!("dangling '\\' in class in regex strategy {pattern:?}")
            }))),
            lo => {
                // Range `lo-hi` when a '-' follows with a bound after it;
                // otherwise a literal (covers trailing '-' and "[a-z .]").
                if chars.last() == Some(&'-') && chars.len() >= 2 && chars[chars.len() - 2] != ']' {
                    chars.pop();
                    let hi = chars.pop().expect("checked above");
                    assert!(lo <= hi, "inverted range in regex strategy {pattern:?}");
                    alts.extend(lo..=hi);
                } else {
                    alts.push(lo);
                }
            }
        }
    }
    assert!(
        !alts.is_empty(),
        "empty class in regex strategy {pattern:?}"
    );
    alts
}

fn parse_quantifier(chars: &mut Vec<char>, pattern: &str) -> (u32, u32) {
    match chars.last() {
        Some('?') => {
            chars.pop();
            (0, 1)
        }
        Some('*') => {
            chars.pop();
            (0, UNBOUNDED_MAX)
        }
        Some('+') => {
            chars.pop();
            (1, UNBOUNDED_MAX)
        }
        Some('{') => {
            chars.pop();
            let mut body = String::new();
            loop {
                match chars.pop() {
                    Some('}') => break,
                    Some(c) => body.push(c),
                    None => panic!("unclosed '{{' in regex strategy {pattern:?}"),
                }
            }
            let parse = |s: &str| -> u32 {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad bound {s:?} in regex strategy {pattern:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(&body);
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        RegexGen::compile(pattern).generate(&mut TestRng::new(seed))
    }

    #[test]
    fn classes_and_counts() {
        for seed in 0..50 {
            let s = gen("[a-z]{1,8}", seed);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_range_class() {
        for seed in 0..50 {
            let s = gen("[ -~]{0,40}", seed);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn class_with_literals_and_dot() {
        for seed in 0..50 {
            let s = gen("[a-z0-9./]{0,20}", seed);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '/'));
        }
    }

    #[test]
    fn optional_group_with_escape() {
        let mut saw_domain = false;
        let mut saw_bare = false;
        for seed in 0..80 {
            let s = gen("[a-z]{1,8}(\\.[a-z]{2,3})?", seed);
            if let Some((host, tld)) = s.split_once('.') {
                assert!((1..=8).contains(&host.len()));
                assert!((2..=3).contains(&tld.len()));
                saw_domain = true;
            } else {
                saw_bare = true;
            }
        }
        assert!(saw_domain && saw_bare, "both arms of '?' exercised");
    }

    #[test]
    fn repeated_group() {
        for seed in 0..50 {
            let s = gen("(/[a-z0-9]{1,6}){0,4}", seed);
            if !s.is_empty() {
                assert!(s.starts_with('/'));
                assert!(s.split('/').skip(1).all(|seg| (1..=6).contains(&seg.len())));
                assert!(s.split('/').skip(1).count() <= 4);
            }
        }
    }

    #[test]
    fn exact_count_and_literals() {
        let s = gen("ab[01]{3}z", 7);
        assert_eq!(s.len(), 6);
        assert!(s.starts_with("ab") && s.ends_with('z'));
    }
}
