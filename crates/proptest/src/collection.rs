//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors of `element` values with lengths in `size`
/// (half-open, like proptest's `SizeRange` from a `Range`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.in_range(self.size.start as u64, self.size.end as u64) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
