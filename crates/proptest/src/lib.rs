//! An offline, in-tree subset of the [proptest](https://crates.io/crates/proptest)
//! API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the slice of proptest its property tests
//! actually use: the [`proptest!`] macro, `prop_assert*` / `prop_assume`,
//! [`strategy::Strategy`] with `prop_map`, [`prop_oneof!`], `Just`,
//! integer-range and regex-string strategies, `collection::vec`,
//! `option::of` and `any::<T>()`.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case index and seed;
//!   cases are deterministic per (test name, case index), so failures
//!   reproduce exactly under `cargo test`.
//! - **Regex strategies** support the subset the tests use: literals,
//!   escapes, `.`, character classes with ranges, groups, and the
//!   `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers. No alternation.
//! - `ProptestConfig` carries only `cases`.

pub mod collection;
pub mod option;
pub mod regex;
pub mod rng;
pub mod strategy;

pub use rng::TestRng;

/// Runner configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried with new
    /// inputs and does not count against the case budget.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    name: &'static str,
    cases: u32,
    passed: u32,
    attempts: u32,
    current_seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
        TestRunner {
            name,
            cases: config.cases,
            passed: 0,
            attempts: 0,
            current_seed: 0,
        }
    }

    /// The RNG for the next case, or `None` when the budget is met.
    pub fn next_case(&mut self) -> Option<TestRng> {
        if self.passed >= self.cases {
            return None;
        }
        if self.attempts >= self.cases.saturating_mul(20).max(100) {
            panic!(
                "{}: too many prop_assume! rejections ({} attempts for {} cases)",
                self.name, self.attempts, self.cases
            );
        }
        // Deterministic per (test name, attempt): failures reproduce.
        let seed =
            rng::hash_seed(self.name) ^ (self.attempts as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.attempts += 1;
        self.current_seed = seed;
        Some(TestRng::new(seed))
    }

    /// Records the outcome of the case issued by the last `next_case`.
    pub fn finish_case(&mut self, result: Result<(), TestCaseError>) {
        match result {
            Ok(()) => self.passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "{}: property failed at case {} (seed {:#x}): {}",
                self.name, self.attempts, self.current_seed, msg
            ),
        }
    }
}

/// The strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: strategy::Strategy<Value = Self>;
    /// That strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = ::std::ops::Range<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..<$t>::MAX
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig, TestCaseError, TestRunner,
    };
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
                while let Some(mut rng) = runner.next_case() {
                    $(let $arg = ($strat).generate(&mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    runner.finish_case(outcome);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property test; failures report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Rejects the current case's inputs; the runner retries with new ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks one of several strategies (uniformly) per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $({
                let s = $s;
                ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    }};
}
