//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::TestRng;

/// A strategy for `Option<T>`.
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `Some(value)` three times out of four, `None` otherwise
/// (mirroring proptest's some-biased default).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) < 3 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
