//! Deterministic observability contract for the diff fallback metrics.
//!
//! One test function on purpose: `aide_obs::install` is process-global,
//! and a second concurrently running test would record into the same
//! registry. Everything this file asserts lives in a single scenario.

use aide_htmldiff::{html_diff, CompareOptions, Options};
use aide_obs::MetricsRegistry;
use std::sync::Arc;

const OLD: &str = "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>\
    <H1>Heading</H1>\
    <P>first paragraph with several words of prose to diff.\
    <P>second paragraph that stays exactly the same throughout.\
    <P>third paragraph, also stable, full of filler sentences.\
    </BODY></HTML>";
const NEW: &str = "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>\
    <H1>Heading</H1>\
    <P>first paragraph with a few changed words of prose to diff.\
    <P>second paragraph that stays exactly the same throughout.\
    <P>third paragraph, also stable, full of filler sentences.\
    </BODY></HTML>";

/// Runs the scenario into a fresh registry and returns its JSON export.
fn run_once() -> String {
    let reg = Arc::new(MetricsRegistry::new());
    let prev = aide_obs::install(reg.clone());
    // Fast path, then the forced-naive oracle on the same pair.
    html_diff(OLD, NEW, &Options::default());
    let naive = Options {
        compare: CompareOptions {
            force_naive: true,
            ..CompareOptions::default()
        },
        ..Options::default()
    };
    html_diff(OLD, NEW, &naive);
    let json = reg.render_json();
    aide_obs::uninstall();
    if let Some(prev) = prev {
        aide_obs::install(prev);
    }
    json
}

#[test]
fn fallback_counters_and_scratch_gauge_export_deterministically() {
    let reg = Arc::new(MetricsRegistry::new());
    let prev = aide_obs::install(reg.clone());
    html_diff(OLD, NEW, &Options::default());
    let naive = Options {
        compare: CompareOptions {
            force_naive: true,
            ..CompareOptions::default()
        },
        ..Options::default()
    };
    html_diff(OLD, NEW, &naive);
    let snap = reg.snapshot();
    aide_obs::uninstall();
    if let Some(prev) = prev {
        aide_obs::install(prev);
    }

    // The fallback trio exists on every compare — counters are created
    // at zero even when a path never ran — and partitions gap work.
    // The naive run classifies its one rectangle as dense, so dense is
    // nonzero here; this small pair never needs the banded or
    // linear-space paths.
    let c = |name: &str| {
        *snap
            .counters
            .get(name)
            .unwrap_or_else(|| panic!("missing counter {name}; have {:?}", snap.counters.keys()))
    };
    assert!(c("diff.fallback.dense") >= 1, "dense gaps counted");
    assert_eq!(c("diff.fallback.banded"), 0);
    assert_eq!(c("diff.fallback.hirschberg"), 0);
    assert_eq!(c("htmldiff.compare"), 2);

    // The scratch gauge reports pooled capacity retained on this thread
    // after the diff: the arena reuse the fast path depends on.
    let scratch = *snap
        .gauges
        .get("diff.scratch.bytes")
        .expect("diff.scratch.bytes gauge");
    assert!(scratch > 0, "scratch pool retains buffers, got {scratch}");

    // Probe-statistics histograms from both runs.
    assert_eq!(snap.histograms["htmldiff.compare.inner_lcs_evals"].count, 2);
    assert_eq!(snap.histograms["htmldiff.anchor.anchors"].count, 1);

    // Determinism: the whole JSON export — counters, gauges, histograms
    // — is byte-identical across replays (modulo the scratch gauge,
    // which reflects what this thread's pool had retained before the
    // run; two fresh runs on this thread see identical pools since the
    // first test run above warmed them).
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "metrics export must be byte-identical on replay");
}
