//! Property-based tests for HtmlDiff.
//!
//! Invariants:
//! - a document diffed against itself is identical, site-free, and emits
//!   no strike-out or emphasis markers;
//! - whitespace reflow never produces differences;
//! - every word of the new document survives into the merged page, and
//!   no old-only markup (HREF/SRC values) leaks into it;
//! - stats are internally consistent with the alignment;
//! - the merged page's own lexing never reveals unbalanced STRIKE tags;
//! - on edit-structured revisions the anchored fast path renders the
//!   byte-identical merged page (and identical stats) as the naive full
//!   DP, for any gap-worker count.

use aide_htmldiff::{html_diff, tokenize, CompareOptions, Options};
use proptest::prelude::*;

/// Generates small synthetic HTML documents from a fixed vocabulary.
fn html_strategy() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        Just("<P>".to_string()),
        Just("<HR>".to_string()),
        Just("<LI>".to_string()),
        Just("<H2>".to_string()),
        Just("<B>".to_string()),
        Just("</B>".to_string()),
        Just("alpha ".to_string()),
        Just("beta ".to_string()),
        Just("gamma. ".to_string()),
        Just("delta! ".to_string()),
        Just("epsilon ".to_string()),
        Just(r#"<A HREF="x.html">link</A> "#.to_string()),
        Just(r#"<IMG SRC="pic.gif"> "#.to_string()),
    ];
    proptest::collection::vec(piece, 0..25).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn self_diff_is_identical(doc in html_strategy()) {
        let r = html_diff(&doc, &doc, &Options::default());
        prop_assert!(r.stats.is_identical(), "{:?}", r.stats);
        prop_assert_eq!(r.stats.difference_sites, 0);
        prop_assert!(!r.html.contains("<STRIKE>"));
        prop_assert!(!r.html.contains("<STRONG><I>"));
    }

    #[test]
    fn whitespace_reflow_is_invisible(doc in html_strategy()) {
        let reflowed = doc.replace(' ', "\n  ");
        let r = html_diff(&doc, &reflowed, &Options::default());
        prop_assert!(r.stats.is_identical(), "{:?}", r.stats);
    }

    #[test]
    fn stats_consistent_with_token_counts(a in html_strategy(), b in html_strategy()) {
        let r = html_diff(&a, &b, &Options::default());
        let s = &r.stats;
        prop_assert_eq!(
            s.old_tokens,
            s.common_tokens + s.old_only_sentences + s.old_only_breaks
        );
        prop_assert_eq!(
            s.new_tokens,
            s.common_tokens + s.new_only_sentences + s.new_only_breaks
        );
        prop_assert!(s.changed_pairs <= s.common_tokens);
        prop_assert!((0.0..=1.0).contains(&s.changed_fraction));
        prop_assert!((0.0..=1.0).contains(&s.muddle));
    }

    #[test]
    fn new_words_survive_into_merged_page(a in html_strategy(), b in html_strategy()) {
        let r = html_diff(&a, &b, &Options::default());
        // Every word of the new document must appear in the merged page.
        for token in tokenize(&b) {
            if let Some(s) = token.as_sentence() {
                for item in &s.items {
                    if let aide_htmldiff::Inline::Word(w) = item {
                        prop_assert!(
                            r.html.contains(w.as_str()),
                            "word {w:?} missing from merged page"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn strike_tags_balanced(a in html_strategy(), b in html_strategy()) {
        let r = html_diff(&a, &b, &Options::default());
        prop_assert_eq!(
            r.html.matches("<STRIKE>").count(),
            r.html.matches("</STRIKE>").count()
        );
        prop_assert_eq!(
            r.html.matches("<STRONG><I>").count(),
            r.html.matches("</I></STRONG>").count()
        );
    }

    #[test]
    fn arrow_sites_match_stats(a in html_strategy(), b in html_strategy()) {
        let r = html_diff(&a, &b, &Options::default());
        let named = (0..).take_while(|i| r.html.contains(&format!("NAME=\"diff{i}\""))).count();
        prop_assert_eq!(named, r.stats.difference_sites);
    }

    #[test]
    fn tokenize_is_deterministic(doc in html_strategy()) {
        prop_assert_eq!(tokenize(&doc), tokenize(&doc));
    }

    #[test]
    fn inline_word_diff_never_panics(a in html_strategy(), b in html_strategy()) {
        let opts = Options { inline_word_diff: true, ..Options::default() };
        let _ = html_diff(&a, &b, &opts);
    }
}

/// One building block of an edit-structured document; the index keeps
/// word content high-entropy (real sentences rarely repeat verbatim).
fn piece(i: usize, sel: u8) -> String {
    match sel {
        0 => "<P>".to_string(),
        1 => "<HR>".to_string(),
        2 => "<LI>".to_string(),
        3 => format!("word{i} common tail. "),
        4 => format!("item{i} stays mostly put! "),
        5 => format!(r#"<A HREF="x{i}.html">link{i}</A> "#),
        _ => format!("sentence{i} with a few more words here. "),
    }
}

/// An old/new HTML pair where the new page is the old one plus 1–3
/// spliced block edits — the revision structure the anchored fast path
/// promises to render byte-identically to the naive DP. (Two
/// *independent* random documents would be a full-replacement workload,
/// which the dedicated crossing-anchor fallback tests already cover.)
fn edit_structured_html_pair() -> impl Strategy<Value = (String, String)> {
    let base = proptest::collection::vec(0u8..7, 5..40);
    let edits = proptest::collection::vec((0usize..3, 0usize..1000, 1usize..6, 0u8..7), 1..4);
    (base, edits).prop_map(|(sels, edits)| {
        let old: Vec<String> = sels.iter().enumerate().map(|(i, &s)| piece(i, s)).collect();
        let mut new = old.clone();
        let mut fresh = 10_000usize;
        for (kind, pos, len, sel) in edits {
            let at = if new.is_empty() { 0 } else { pos % new.len() };
            let end = (at + len).min(new.len());
            let mut block = |n: usize| -> Vec<String> {
                (0..n)
                    .map(|_| {
                        fresh += 1;
                        piece(fresh, sel)
                    })
                    .collect()
            };
            match kind {
                0 => {
                    new.drain(at..end);
                }
                1 => {
                    let b = block(len);
                    new.splice(at..at, b);
                }
                _ => {
                    let b = block(end - at);
                    new.splice(at..end, b);
                }
            }
        }
        (old.concat(), new.concat())
    })
}

/// Renders `a` vs `b` through the default fast path and the forced
/// naive full DP and asserts byte-identical pages and stats.
fn assert_fast_equals_naive(a: &str, b: &str) -> Result<(), TestCaseError> {
    let fast = html_diff(a, b, &Options::default());
    let naive_opts = Options {
        compare: CompareOptions {
            force_naive: true,
            ..CompareOptions::default()
        },
        ..Options::default()
    };
    let naive = html_diff(a, b, &naive_opts);
    prop_assert_eq!(&fast.html, &naive.html);
    prop_assert_eq!(format!("{:?}", fast.stats), format!("{:?}", naive.stats));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_path_renders_byte_identical_to_naive(ab in edit_structured_html_pair()) {
        let (a, b) = ab;
        let fast = html_diff(&a, &b, &Options::default());
        let naive_opts = Options {
            compare: CompareOptions { force_naive: true, ..CompareOptions::default() },
            ..Options::default()
        };
        let naive = html_diff(&a, &b, &naive_opts);
        prop_assert_eq!(&fast.html, &naive.html);
        prop_assert_eq!(format!("{:?}", fast.stats), format!("{:?}", naive.stats));
    }

    #[test]
    fn gap_workers_render_byte_identical(ab in edit_structured_html_pair()) {
        let (a, b) = ab;
        let par = Options {
            compare: CompareOptions { gap_workers: 4, ..CompareOptions::default() },
            ..Options::default()
        };
        prop_assert_eq!(
            html_diff(&a, &b, &Options::default()).html,
            html_diff(&a, &b, &par).html
        );
    }

    // Degenerate shapes where anchoring finds nothing to hold on to (or
    // everything): the fast path must still reproduce the naive DP.

    #[test]
    fn degenerate_empty_document_matches_naive(doc in html_strategy()) {
        assert_fast_equals_naive("", &doc)?;
        assert_fast_equals_naive(&doc, "")?;
        assert_fast_equals_naive("", "")?;
    }

    #[test]
    fn degenerate_single_token_matches_naive(doc in html_strategy(), sel in 0u8..7) {
        let single = piece(3, sel);
        assert_fast_equals_naive(&single, &doc)?;
        assert_fast_equals_naive(&doc, &single)?;
        assert_fast_equals_naive(&single, &single)?;
    }

    #[test]
    fn degenerate_all_identical_tokens_match_naive(n in 0usize..30, m in 0usize..30) {
        // Every token hashes alike: zero unique anchors, zero rescue
        // candidates (frequency far above the cap) — pure DP fallback.
        let a = "same words every time. ".repeat(n);
        let b = "same words every time. ".repeat(m);
        assert_fast_equals_naive(&a, &b)?;
    }

    #[test]
    fn degenerate_all_unique_tokens_match_naive(n in 0usize..30, m in 0usize..30) {
        // No token appears on both sides: the alignment is one giant
        // replacement and every anchor candidate dies at verification.
        let a: String = (0..n).map(|i| format!("only old {i} here. ")).collect();
        let b: String = (0..m).map(|i| format!("just new {i} there. ")).collect();
        assert_fast_equals_naive(&a, &b)?;
    }
}
