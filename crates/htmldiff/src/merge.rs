//! Merged-page construction (§5.2).
//!
//! "Our preference is to present the differences in the merged-page
//! format to provide context and use internal hypertext references to
//! link the differences together in a chain so the user can quickly jump
//! from difference to difference." Old material appears struck out
//! (`<STRIKE>`, "rarely used in HTML found on the W3"); new material in
//! `<STRONG><I>` (there being "no ideal font for showing new text"); a
//! red arrow points to old content and a green arrow to new content; and
//! the syntactic problem of merging is handled "by eliminating all old
//! markups from the merged page", so deleted images and anchors do not
//! appear.

use crate::compare::TokenAlignment;
use crate::token::{DiffToken, Sentence};
use aide_diffcore::script::EditOp;

/// Statistics of one comparison, for reports and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiffStats {
    /// Tokens in the old document.
    pub old_tokens: usize,
    /// Tokens in the new document.
    pub new_tokens: usize,
    /// Matched token pairs.
    pub common_tokens: usize,
    /// Matched pairs that are not byte-identical (edited in place).
    pub changed_pairs: usize,
    /// Sentences present only in the old document.
    pub old_only_sentences: usize,
    /// Sentences present only in the new document.
    pub new_only_sentences: usize,
    /// Sentence-breaking markups present only in the old document
    /// (format-only deletions).
    pub old_only_breaks: usize,
    /// Sentence-breaking markups present only in the new document
    /// (format-only additions).
    pub new_only_breaks: usize,
    /// Arrow sites emitted in the merged page.
    pub difference_sites: usize,
    /// Fraction of all tokens that changed (see [`crate::muddle`]).
    pub changed_fraction: f64,
    /// Interspersion score (see [`crate::muddle`]).
    pub muddle: f64,
}

impl DiffStats {
    /// True if the two documents compared identical.
    pub fn is_identical(&self) -> bool {
        self.changed_pairs == 0
            && self.old_only_sentences == 0
            && self.new_only_sentences == 0
            && self.old_only_breaks == 0
            && self.new_only_breaks == 0
    }

    /// True if any *content* (as opposed to formatting) changed — the
    /// paragraph-to-list example shows "no change to content, but a
    /// change to the formatting".
    pub fn content_changed(&self) -> bool {
        self.changed_pairs > 0 || self.old_only_sentences > 0 || self.new_only_sentences > 0
    }
}

/// A maximal run of the alignment, the unit presentation works in.
#[derive(Debug, Clone)]
pub enum Segment {
    /// Matched pairs `(old_idx, new_idx, identical)`.
    Common(Vec<(usize, usize, bool)>),
    /// Old-only token indices.
    Old(Vec<usize>),
    /// New-only token indices.
    New(Vec<usize>),
}

/// Splits an alignment into maximal segments in merged-document order
/// (old-only material precedes new-only material at the same position,
/// matching how a change reads: strike-out first, replacement after).
pub fn segments(alignment: &TokenAlignment) -> Vec<Segment> {
    let mut out = Vec::new();
    let script = alignment.alignment.script();
    let mut pair_idx = 0usize;
    for op in script.ops {
        match op {
            EditOp::Equal {
                a_start,
                b_start,
                len,
            } => {
                let mut pairs = Vec::with_capacity(len);
                for k in 0..len {
                    let identical = alignment
                        .identical
                        .get(pair_idx + k)
                        .copied()
                        .unwrap_or(false);
                    pairs.push((a_start + k, b_start + k, identical));
                }
                pair_idx += len;
                out.push(Segment::Common(pairs));
            }
            EditOp::Delete { a_start, len, .. } => {
                out.push(Segment::Old((a_start..a_start + len).collect()));
            }
            EditOp::Insert { b_start, len, .. } => {
                out.push(Segment::New((b_start..b_start + len).collect()));
            }
        }
    }
    out
}

/// Whether an old-only run contains visible content (worth an arrow and a
/// strike-out). Pure-markup deletions are format changes and are elided
/// silently.
pub fn old_run_has_content(old: &[DiffToken], idxs: &[usize]) -> bool {
    idxs.iter().any(|&i| match &old[i] {
        DiffToken::Sentence(s) => s.word_count() > 0,
        DiffToken::Break(_) => false,
    })
}

/// Whether a new-only run contains content (sentences with any items).
pub fn new_run_has_content(new: &[DiffToken], idxs: &[usize]) -> bool {
    idxs.iter()
        .any(|&i| matches!(&new[i], DiffToken::Sentence(s) if !s.is_empty()))
}

/// Renders markup for an arrow site: a named anchor chained to the next
/// difference, wrapping an arrow image.
pub fn arrow(site: usize, total: usize, img: &str, alt: &str) -> String {
    let next = if site + 1 < total {
        format!("#diff{}", site + 1)
    } else {
        "#difftop".to_string()
    };
    format!(
        "<A NAME=\"diff{site}\" HREF=\"{next}\"><IMG SRC=\"{img}\" ALT=\"[{alt}]\" BORDER=0></A>"
    )
}

/// Renders an old (deleted) sentence: struck-out words, markups elided.
pub fn render_old_sentence(s: &Sentence) -> String {
    let words = s.render_words_only();
    if words.is_empty() {
        String::new()
    } else {
        format!("<STRIKE>{words}</STRIKE>")
    }
}

/// Renders a new (inserted) sentence: emphasized, markups intact.
pub fn render_new_sentence(s: &Sentence) -> String {
    format!("<STRONG><I>{}</I></STRONG>", s.render())
}

/// Renders the banner inserted at the front of the merged page (visible
/// in Figure 2 of the paper), linking to the first difference.
pub fn banner(sites: usize, old_label: &str, new_label: &str) -> String {
    let jump = if sites > 0 {
        " <A HREF=\"#diff0\">[go to first change]</A>".to_string()
    } else {
        " No differences were found.".to_string()
    };
    format!(
        "<A NAME=\"difftop\"></A><H4>AIDE HtmlDiff: {old_label} vs. {new_label} \
         &#183; {sites} change{}{jump}</H4>\n<HR>\n",
        if sites == 1 { "" } else { "s" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare_tokens, CompareOptions};
    use crate::tokenize::tokenize;

    fn seg(old_html: &str, new_html: &str) -> (Vec<DiffToken>, Vec<DiffToken>, Vec<Segment>) {
        let old = tokenize(old_html);
        let new = tokenize(new_html);
        let al = compare_tokens(&old, &new, &CompareOptions::default());
        let s = segments(&al);
        (old, new, s)
    }

    #[test]
    fn identical_is_one_common_segment() {
        let (_, _, s) = seg("<P>same text here.", "<P>same text here.");
        assert_eq!(s.len(), 1);
        assert!(matches!(&s[0], Segment::Common(p) if p.len() == 2));
    }

    #[test]
    fn pure_insert_order() {
        let (_, _, s) = seg("<P>alpha.", "<P>alpha. beta!");
        assert_eq!(s.len(), 2);
        assert!(matches!(&s[0], Segment::Common(_)));
        assert!(matches!(&s[1], Segment::New(v) if v.len() == 1));
    }

    #[test]
    fn replace_puts_old_before_new() {
        let (_, _, s) = seg("<P>alpha beta gamma.", "<P>completely different words!");
        // Common(<P>), Old(sentence), New(sentence).
        assert_eq!(s.len(), 3);
        assert!(matches!(&s[1], Segment::Old(_)));
        assert!(matches!(&s[2], Segment::New(_)));
    }

    #[test]
    fn old_run_content_detection() {
        let old = tokenize("<P><HR>");
        assert!(!old_run_has_content(&old, &[0, 1]), "breaks only");
        let old = tokenize("<P>words here");
        assert!(old_run_has_content(&old, &[0, 1]));
    }

    #[test]
    fn new_run_content_detection() {
        let new = tokenize("<UL><LI>");
        assert!(!new_run_has_content(&new, &[0, 1]));
        let new = tokenize("<LI>item text");
        assert!(new_run_has_content(&new, &[0, 1]));
    }

    #[test]
    fn arrow_chain_links() {
        let a0 = arrow(0, 3, "green.gif", "new");
        assert!(a0.contains("NAME=\"diff0\""));
        assert!(a0.contains("HREF=\"#diff1\""));
        let last = arrow(2, 3, "red.gif", "old");
        assert!(
            last.contains("HREF=\"#difftop\""),
            "last arrow wraps to banner: {last}"
        );
    }

    #[test]
    fn old_sentence_rendering_elides_markups() {
        let tokens = tokenize(r#"gone <A HREF="dead.html">link</A> text"#);
        let s = tokens[0].as_sentence().unwrap();
        let r = render_old_sentence(s);
        assert_eq!(r, "<STRIKE>gone link text</STRIKE>");
        assert!(!r.contains("HREF"), "old markups must not appear");
    }

    #[test]
    fn new_sentence_rendering_keeps_markups() {
        let tokens = tokenize(r#"fresh <A HREF="new.html">link</A>"#);
        let s = tokens[0].as_sentence().unwrap();
        let r = render_new_sentence(s);
        assert!(r.starts_with("<STRONG><I>"));
        assert!(r.contains("HREF=\"new.html\""));
    }

    #[test]
    fn banner_forms() {
        let b = banner(3, "1.1", "1.2");
        assert!(b.contains("difftop"));
        assert!(b.contains("#diff0"));
        assert!(b.contains("3 changes"));
        let none = banner(0, "a", "b");
        assert!(none.contains("No differences"));
        let one = banner(1, "a", "b");
        assert!(one.contains("1 change"));
        assert!(!one.contains("1 changes"));
    }

    #[test]
    fn stats_identity_flags() {
        let mut s = DiffStats::default();
        assert!(s.is_identical());
        assert!(!s.content_changed());
        s.new_only_breaks = 1;
        assert!(!s.is_identical());
        assert!(!s.content_changed(), "break-only changes are format-only");
        s.new_only_sentences = 1;
        assert!(s.content_changed());
    }
}
