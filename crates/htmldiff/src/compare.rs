//! The HtmlDiff comparison algorithm (§5.1).
//!
//! A weighted LCS over the token streams, where:
//!
//! - sentence-breaking markups match only each other, and only when
//!   "identical (modulo whitespace, case, and reordering of
//!   (variable,value) pairs)", with weight 1;
//! - sentences match only sentences, in two steps: a **length screen**
//!   ("if the lengths of two sentences are not 'sufficiently close', then
//!   they do not match") followed by an **inner LCS**: with `W` the
//!   number of words and content-defining markups in the LCS of the two
//!   sentences and `L` the sum of their lengths, the pair matches with
//!   weight `W` iff `2W / L` is sufficiently large.
//!
//! Both thresholds are tunable in [`CompareOptions`]; the defaults
//! reproduce the paper's qualitative behaviour and the ablation
//! experiment sweeps them.

use crate::token::{DiffToken, Sentence};
use aide_diffcore::lcs::weighted_lcs;
use aide_diffcore::metrics::lcs_ratio;
use aide_diffcore::script::Alignment;
use std::cell::RefCell;
use std::collections::HashMap;

/// Tunables for the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareOptions {
    /// Minimum `2W / L` ratio for two sentences to match (the paper's
    /// "sufficiently large" percentage).
    pub match_threshold: f64,
    /// Length screen: the shorter sentence must be at least this fraction
    /// of the longer one ("sufficiently close" lengths). `None` disables
    /// the screen (the ablation case).
    pub length_screen: Option<f64>,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            match_threshold: 0.5,
            length_screen: Some(0.4),
        }
    }
}

/// The result of comparing two token streams.
#[derive(Debug, Clone)]
pub struct TokenAlignment {
    /// Matched token index pairs (old, new), with the standard
    /// [`Alignment`] invariants.
    pub alignment: Alignment,
    /// For each matched pair, whether the two tokens are *identical*
    /// (as opposed to approximately matched sentences).
    pub identical: Vec<bool>,
    /// Number of sentence-pair score evaluations that reached the inner
    /// LCS (the quantity the length screen exists to reduce).
    pub inner_lcs_evals: usize,
    /// Number of pairs rejected by the length screen alone.
    pub screened_out: usize,
}

/// Computes the weight with which two sentences match; `0` = no match.
///
/// # Examples
///
/// ```
/// use aide_htmldiff::compare::{sentence_match_weight, CompareOptions};
/// use aide_htmldiff::tokenize::tokenize;
///
/// let a = tokenize("the quick brown fox jumps");
/// let b = tokenize("the quick red fox jumps");
/// let (sa, sb) = (a[0].as_sentence().unwrap(), b[0].as_sentence().unwrap());
/// let w = sentence_match_weight(sa, sb, &CompareOptions::default());
/// assert_eq!(w, 4); // the, quick, fox, jumps
/// ```
pub fn sentence_match_weight(a: &Sentence, b: &Sentence, opts: &CompareOptions) -> u64 {
    let la = a.content_len();
    let lb = b.content_len();
    if la == 0 && lb == 0 {
        // Pure-formatting sentences (e.g. a lone <FONT> run): match only
        // if identical.
        return u64::from(a == b);
    }
    if a == b {
        return la.max(1) as u64;
    }
    if let Some(screen) = opts.length_screen {
        let (short, long) = if la < lb { (la, lb) } else { (lb, la) };
        if long > 0 && (short as f64) < screen * long as f64 {
            return 0;
        }
    }
    // Inner LCS over sentence items: exact matches only, weight 1 each.
    let pairs = weighted_lcs(a.items.len(), b.items.len(), &|i, j| {
        u64::from(a.items[i].matches(&b.items[j]))
    });
    // W counts only content items among the matches.
    let w = pairs
        .iter()
        .filter(|&&(i, _)| a.items[i].is_content())
        .count() as u64;
    if w == 0 {
        return 0;
    }
    if lcs_ratio(w, la, lb) >= opts.match_threshold {
        w
    } else {
        0
    }
}

/// Scores an arbitrary token pair.
fn token_score(a: &DiffToken, b: &DiffToken, opts: &CompareOptions, evals: &ScoreCounters) -> u64 {
    match (a, b) {
        (DiffToken::Break(ta), DiffToken::Break(tb)) => u64::from(ta.matches_modulo_order(tb)),
        (DiffToken::Sentence(sa), DiffToken::Sentence(sb)) => {
            // Track screen/inner-LCS traffic for the ablation experiment.
            let la = sa.content_len();
            let lb = sb.content_len();
            if let Some(screen) = opts.length_screen {
                let (short, long) = if la < lb { (la, lb) } else { (lb, la) };
                if long > 0 && (short as f64) < screen * long as f64 {
                    evals.screened.set(evals.screened.get() + 1);
                    return 0;
                }
            }
            if sa != sb {
                evals.inner.set(evals.inner.get() + 1);
            }
            sentence_match_weight(sa, sb, opts)
        }
        _ => 0,
    }
}

struct ScoreCounters {
    inner: std::cell::Cell<usize>,
    screened: std::cell::Cell<usize>,
}

/// Aligns two token streams with the weighted LCS.
///
/// Scores are memoized per `(i, j)` pair, one of the "several speed
/// optimizations" §5.1 alludes to: Hirschberg's recursion revisits pairs,
/// and sentence scoring is the expensive inner loop.
pub fn compare_tokens(
    old: &[DiffToken],
    new: &[DiffToken],
    opts: &CompareOptions,
) -> TokenAlignment {
    let counters = ScoreCounters {
        inner: std::cell::Cell::new(0),
        screened: std::cell::Cell::new(0),
    };
    let memo: RefCell<HashMap<(usize, usize), u64>> = RefCell::new(HashMap::new());
    let score = |i: usize, j: usize| -> u64 {
        if let Some(&w) = memo.borrow().get(&(i, j)) {
            return w;
        }
        let w = token_score(&old[i], &new[j], opts, &counters);
        memo.borrow_mut().insert((i, j), w);
        w
    };
    let pairs = weighted_lcs(old.len(), new.len(), &score);
    // Matched breaks are identical by construction (the match predicate
    // is modulo-order equality); only sentences can match approximately.
    let identical = pairs
        .iter()
        .map(|&(i, j)| match (&old[i], &new[j]) {
            (DiffToken::Break(_), DiffToken::Break(_)) => true,
            _ => old[i] == new[j],
        })
        .collect();
    TokenAlignment {
        alignment: Alignment::new(pairs, old.len(), new.len()),
        identical,
        inner_lcs_evals: counters.inner.get(),
        screened_out: counters.screened.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn first_sentence(html: &str) -> Sentence {
        tokenize(html)
            .into_iter()
            .find_map(|t| match t {
                DiffToken::Sentence(s) => Some(s),
                _ => None,
            })
            .expect("a sentence")
    }

    #[test]
    fn identical_sentences_match_with_full_weight() {
        let s = first_sentence("five words are in here");
        assert_eq!(sentence_match_weight(&s, &s, &CompareOptions::default()), 5);
    }

    #[test]
    fn one_word_change_still_matches() {
        let a = first_sentence("the conference starts on Monday");
        let b = first_sentence("the conference starts on Tuesday");
        let w = sentence_match_weight(&a, &b, &CompareOptions::default());
        assert_eq!(w, 4);
    }

    #[test]
    fn unrelated_sentences_do_not_match() {
        let a = first_sentence("alpha beta gamma delta");
        let b = first_sentence("one two three four");
        assert_eq!(sentence_match_weight(&a, &b, &CompareOptions::default()), 0);
    }

    #[test]
    fn length_screen_rejects_disparate_lengths() {
        let a = first_sentence("word");
        let b = first_sentence("word plus nine more words to stretch the length out");
        let screened = CompareOptions::default();
        assert_eq!(sentence_match_weight(&a, &b, &screened), 0);
        let unscreened = CompareOptions {
            length_screen: None,
            ..screened
        };
        // Without the screen the inner LCS runs; ratio 2*1/11 fails anyway.
        assert_eq!(sentence_match_weight(&a, &b, &unscreened), 0);
    }

    #[test]
    fn threshold_sweep_changes_verdict() {
        let a = first_sentence("one two three four five six");
        let b = first_sentence("one two NEW four NEW NEW");
        // LCS = one,two,four → W=3, L=12, ratio 0.5.
        let strict = CompareOptions {
            match_threshold: 0.6,
            length_screen: None,
        };
        let lax = CompareOptions {
            match_threshold: 0.5,
            length_screen: None,
        };
        assert_eq!(sentence_match_weight(&a, &b, &strict), 0);
        assert_eq!(sentence_match_weight(&a, &b, &lax), 3);
    }

    #[test]
    fn changed_anchor_url_still_matches_sentence() {
        // §5.2's example: same text, different HREF.
        let a = first_sentence(r#"read the <A HREF="old.html">report</A> today"#);
        let b = first_sentence(r#"read the <A HREF="new.html">report</A> today"#);
        let w = sentence_match_weight(&a, &b, &CompareOptions::default());
        // Words all match (4); the <A> markups do not; </A> does.
        assert!(w >= 4, "weight {w}");
    }

    #[test]
    fn markup_only_sentences() {
        let a = first_sentence("<FONT SIZE=3>x</FONT>");
        let mut only_markup = a.clone();
        only_markup.items.retain(|i| !i.is_word());
        assert_eq!(only_markup.content_len(), 0);
        assert_eq!(
            sentence_match_weight(&only_markup, &only_markup, &CompareOptions::default()),
            1
        );
    }

    #[test]
    fn break_tokens_match_exactly_only() {
        let old = tokenize("<P>x");
        let new_same = tokenize("<P>x");
        let new_diff = tokenize("<UL>x");
        let al = compare_tokens(&old, &new_same, &CompareOptions::default());
        assert_eq!(al.alignment.pairs.len(), 2);
        let al = compare_tokens(&old, &new_diff, &CompareOptions::default());
        // Only the sentence matches; <P> vs <UL> do not.
        assert_eq!(al.alignment.pairs.len(), 1);
    }

    #[test]
    fn break_attrs_modulo_order() {
        let old = tokenize(r#"<TABLE BORDER=1 WIDTH="90%">x"#);
        let new = tokenize(r#"<table width="90%" border=1>x"#);
        let al = compare_tokens(&old, &new, &CompareOptions::default());
        assert_eq!(al.alignment.pairs.len(), 2);
        assert!(al.identical.iter().all(|&b| b));
    }

    #[test]
    fn identical_flags_distinguish_approximate_matches() {
        let old = tokenize("<P>stable sentence here. changed a little bit now");
        let new = tokenize("<P>stable sentence here. changed a little bit later");
        let al = compare_tokens(&old, &new, &CompareOptions::default());
        assert_eq!(al.alignment.pairs.len(), 3); // <P>, sentence, sentence
        assert_eq!(al.identical, vec![true, true, false]);
    }

    #[test]
    fn paragraph_to_list_content_fully_matched() {
        let old = tokenize("<P>One fish. Two fish. Red fish.");
        let new = tokenize("<UL><LI>One fish.<LI>Two fish.<LI>Red fish.</UL>");
        let al = compare_tokens(&old, &new, &CompareOptions::default());
        let matched_sentences = al
            .alignment
            .pairs
            .iter()
            .filter(|&&(i, _)| !old[i].is_break())
            .count();
        assert_eq!(matched_sentences, 3, "all content matches");
    }

    #[test]
    fn screen_counter_reports_savings() {
        let old = tokenize("tiny. a much longer sentence with many many words inside it.");
        let new = tokenize("tiny. another much longer sentence with many different words within.");
        let with = compare_tokens(&old, &new, &CompareOptions::default());
        let without = compare_tokens(
            &old,
            &new,
            &CompareOptions {
                length_screen: None,
                ..CompareOptions::default()
            },
        );
        assert!(with.screened_out > 0);
        assert!(without.screened_out == 0);
        assert!(without.inner_lcs_evals >= with.inner_lcs_evals);
    }

    #[test]
    fn empty_streams() {
        let al = compare_tokens(&[], &[], &CompareOptions::default());
        assert!(al.alignment.pairs.is_empty());
        let old = tokenize("<P>content here");
        let al = compare_tokens(&old, &[], &CompareOptions::default());
        assert!(al.alignment.pairs.is_empty());
    }
}
