//! The HtmlDiff comparison algorithm (§5.1).
//!
//! A weighted LCS over the token streams, where:
//!
//! - sentence-breaking markups match only each other, and only when
//!   "identical (modulo whitespace, case, and reordering of
//!   (variable,value) pairs)", with weight 1;
//! - sentences match only sentences, in two steps: a **length screen**
//!   ("if the lengths of two sentences are not 'sufficiently close', then
//!   they do not match") followed by an **inner LCS**: with `W` the
//!   number of words and content-defining markups in the LCS of the two
//!   sentences and `L` the sum of their lengths, the pair matches with
//!   weight `W` iff `2W / L` is sufficiently large.
//!
//! Both thresholds are tunable in [`CompareOptions`]; the defaults
//! reproduce the paper's qualitative behaviour and the ablation
//! experiment sweeps them.
//!
//! # The fast path
//!
//! By default the outer alignment runs through the anchored
//! decomposition of [`aide_diffcore::anchor`] over per-token metadata
//! precomputed once per stream: a match-class hash, the cached content
//! length, and interned `u32` ids for every sentence item, stored in a
//! per-diff arena drawn from the [`aide_diffcore::scratch`] pools so
//! back-to-back diffs reuse their allocations. Score probes are then
//! O(1) screens plus an integer-compare inner LCS instead of deep
//! re-walks of the item lists — and before any inner LCS runs, a
//! multiset-intersection bound over each sentence's *sorted* content ids
//! proves most non-matching pairs apart in a single merge walk (the
//! intersection size is an upper bound on the achievable `W`, so a pair
//! whose bound already fails the `2W/L` threshold is rejected without
//! the DP; pairs that could match still run the exact inner LCS). The
//! output is byte-identical to the
//! naive full DP on edit-structured inputs (the property suite asserts
//! it across the workload edit models); every hash equality that feeds
//! an alignment decision is confirmed with a deep comparison first, so
//! hash collisions cannot corrupt the result. Ablation experiments that
//! must measure the paper's algorithm (probe counts, screen traffic) set
//! [`CompareOptions::force_naive`], which runs the full DP with
//! unchanged counter semantics (the screen/inner-LCS counters increment
//! at the same probe points on every path, prune or no prune).

use crate::token::{token_class_hash, DiffToken, Inline, Sentence};
use aide_diffcore::anchor::{anchored_weighted_lcs, AnchorConfig};
use aide_diffcore::lcs::weighted_lcs;
use aide_diffcore::metrics::lcs_ratio;
use aide_diffcore::scratch;
use aide_diffcore::script::Alignment;
use aide_diffcore::Interner;
use aide_htmlkit::lexer::TagKind;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tunables for the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareOptions {
    /// Minimum `2W / L` ratio for two sentences to match (the paper's
    /// "sufficiently large" percentage).
    pub match_threshold: f64,
    /// Length screen: the shorter sentence must be at least this fraction
    /// of the longer one ("sufficiently close" lengths). `None` disables
    /// the screen (the ablation case).
    pub length_screen: Option<f64>,
    /// Bypass the anchored fast path and run the naive full DP.
    ///
    /// The fast path produces byte-identical output on real revision
    /// histories, but only the naive DP probes every token pair — so
    /// ablations that report probe counters (`inner_lcs_evals`,
    /// `screened_out`) must set this to measure what the paper measured.
    pub force_naive: bool,
    /// Worker threads for scoring independent anchor gaps (1 = serial).
    /// Has no effect with `force_naive`.
    pub gap_workers: usize,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            match_threshold: 0.5,
            length_screen: Some(0.4),
            force_naive: false,
            gap_workers: 1,
        }
    }
}

/// The result of comparing two token streams.
#[derive(Debug, Clone)]
pub struct TokenAlignment {
    /// Matched token index pairs (old, new), with the standard
    /// [`Alignment`] invariants.
    pub alignment: Alignment,
    /// For each matched pair, whether the two tokens are *identical*
    /// (as opposed to approximately matched sentences).
    pub identical: Vec<bool>,
    /// Number of sentence-pair score evaluations that reached the inner
    /// LCS (the quantity the length screen exists to reduce).
    pub inner_lcs_evals: usize,
    /// Number of pairs rejected by the length screen alone.
    pub screened_out: usize,
}

/// The single home of the paper's "sufficiently close" length test —
/// evaluated exactly once per score probe.
fn length_screened(la: usize, lb: usize, opts: &CompareOptions) -> bool {
    match opts.length_screen {
        Some(screen) => {
            let (short, long) = if la < lb { (la, lb) } else { (lb, la) };
            long > 0 && (short as f64) < screen * long as f64
        }
        None => false,
    }
}

/// Computes the weight with which two sentences match; `0` = no match.
///
/// # Examples
///
/// ```
/// use aide_htmldiff::compare::{sentence_match_weight, CompareOptions};
/// use aide_htmldiff::tokenize::tokenize;
///
/// let a = tokenize("the quick brown fox jumps");
/// let b = tokenize("the quick red fox jumps");
/// let (sa, sb) = (a[0].as_sentence().unwrap(), b[0].as_sentence().unwrap());
/// let w = sentence_match_weight(sa, sb, &CompareOptions::default());
/// assert_eq!(w, 4); // the, quick, fox, jumps
/// ```
pub fn sentence_match_weight(a: &Sentence, b: &Sentence, opts: &CompareOptions) -> u64 {
    let la = a.content_len();
    let lb = b.content_len();
    if la == 0 && lb == 0 {
        // Pure-formatting sentences (e.g. a lone <FONT> run): match only
        // if identical.
        return u64::from(a == b);
    }
    if a == b {
        return la.max(1) as u64;
    }
    if length_screened(la, lb, opts) {
        return 0;
    }
    // Inner LCS over sentence items: exact matches only, weight 1 each.
    let pairs = weighted_lcs(a.items.len(), b.items.len(), &|i, j| {
        u64::from(a.items[i].matches(&b.items[j]))
    });
    // W counts only content items among the matches.
    let w = pairs
        .iter()
        .filter(|&&(i, _)| a.items[i].is_content())
        .count() as u64;
    if w == 0 {
        return 0;
    }
    if lcs_ratio(w, la, lb) >= opts.match_threshold {
        w
    } else {
        0
    }
}

/// The equivalence class of one sentence item under [`Inline::matches`]:
/// words verbatim, markups modulo attribute order. Interning these gives
/// dense ids whose equality *is* `matches`, so the inner LCS compares
/// integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ItemKey {
    Word(String),
    Markup(String, TagKind, Vec<(String, Option<String>)>),
}

fn item_key(item: &Inline) -> ItemKey {
    match item {
        Inline::Word(w) => ItemKey::Word(w.clone()),
        Inline::Markup(tag) => {
            let mut attrs = tag.attrs.clone();
            attrs.sort();
            ItemKey::Markup(tag.name.clone(), tag.kind, attrs)
        }
    }
}

/// The per-diff metadata arena: every token's interned item ids live in
/// one contiguous buffer (tokens hold ranges into it), with a parallel
/// buffer of each sentence's content ids in *sorted* order for the
/// intersection screen. Buffers come from the [`scratch`] pools and are
/// returned when the diff completes, so consecutive diffs on a thread
/// reuse their allocations instead of re-churning hundreds of tiny
/// per-token `Vec`s.
struct MetaArena {
    /// Interned item ids, token-contiguous; shared across both streams
    /// (one interner), so `id == id` ⇔ `Inline::matches`.
    ids: Vec<u32>,
    /// Per-sentence content ids in ascending order.
    sorted_content: Vec<u32>,
    /// Indexed by interned id: is the item content-defining? Content-ness
    /// is a function of the item's match class ([`Inline::is_content`]
    /// depends only on the word / tag name that the [`ItemKey`] carries),
    /// so it is stored once per id, not once per occurrence.
    id_is_content: Vec<bool>,
}

impl MetaArena {
    fn take() -> Self {
        MetaArena {
            ids: scratch::take_u32_buf(),
            sorted_content: scratch::take_u32_buf(),
            id_is_content: Vec::new(),
        }
    }

    fn give(self) {
        scratch::give_u32_buf(self.ids);
        scratch::give_u32_buf(self.sorted_content);
    }
}

/// Per-token comparison metadata, precomputed once per stream so score
/// probes never re-walk item lists. Item data lives in the shared
/// [`MetaArena`]; tokens hold ranges.
struct TokenMeta {
    /// [`token_class_hash`]: equal is necessary for a maximal-weight
    /// identical match, unequal proves tokens differ.
    class_hash: u64,
    /// Cached [`Sentence::content_len`] (0 for breaks).
    content_len: usize,
    /// Range of this token's item ids in [`MetaArena::ids`].
    items_start: usize,
    items_end: usize,
    /// Range of this sentence's sorted content ids in
    /// [`MetaArena::sorted_content`].
    sorted_start: usize,
    sorted_end: usize,
    /// Largest multiplicity of any single content id in this sentence
    /// (`0` for breaks / contentless sentences) — the factor that turns
    /// a distinct-id intersection count into a multiset bound.
    max_mult: u64,
    /// True for break tokens (max match weight 1).
    is_break: bool,
}

fn build_meta(
    tokens: &[DiffToken],
    interner: &mut Interner<ItemKey>,
    arena: &mut MetaArena,
) -> Vec<TokenMeta> {
    tokens
        .iter()
        .map(|t| match t {
            DiffToken::Break(_) => TokenMeta {
                class_hash: token_class_hash(t),
                content_len: 0,
                items_start: arena.ids.len(),
                items_end: arena.ids.len(),
                sorted_start: arena.sorted_content.len(),
                sorted_end: arena.sorted_content.len(),
                max_mult: 0,
                is_break: true,
            },
            DiffToken::Sentence(s) => {
                let items_start = arena.ids.len();
                for it in &s.items {
                    let id = interner.intern(item_key(it));
                    let slot = id as usize;
                    if slot >= arena.id_is_content.len() {
                        arena.id_is_content.resize(slot + 1, false);
                        arena.id_is_content[slot] = it.is_content();
                    }
                    arena.ids.push(id);
                }
                let items_end = arena.ids.len();
                let sorted_start = arena.sorted_content.len();
                for k in items_start..items_end {
                    let id = arena.ids[k];
                    if arena.id_is_content[id as usize] {
                        arena.sorted_content.push(id);
                    }
                }
                arena.sorted_content[sorted_start..].sort_unstable();
                let mut max_mult = 0u64;
                let mut run = 0u64;
                let mut prev = None;
                for &id in &arena.sorted_content[sorted_start..] {
                    run = if Some(id) == prev { run + 1 } else { 1 };
                    prev = Some(id);
                    max_mult = max_mult.max(run);
                }
                TokenMeta {
                    class_hash: token_class_hash(t),
                    content_len: s.content_len(),
                    items_start,
                    items_end,
                    sorted_start,
                    sorted_end: arena.sorted_content.len(),
                    max_mult,
                    is_break: false,
                }
            }
        })
        .collect()
}

/// Whether the multiset intersection of two ascending id slices — the
/// largest possible number of disjoint equal-id pairs between them —
/// reaches `needed`. Exits as soon as the answer is decided in either
/// direction: `needed` matches accumulated (true), or too few candidates
/// remain on the shorter side to ever get there (false), so mismatched
/// sentence pairs pay far less than a full merge walk.
fn intersection_reaches(a: &[u32], b: &[u32], needed: u64) -> bool {
    let (mut x, mut y, mut got) = (0usize, 0usize, 0u64);
    loop {
        if got >= needed {
            return true;
        }
        if got + ((a.len() - x).min(b.len() - y) as u64) < needed {
            return false;
        }
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                got += 1;
                x += 1;
                y += 1;
            }
        }
    }
}

/// Smallest weight `w` whose [`lcs_ratio`] against combined length `l`
/// clears `threshold` — computed with the exact same float comparison
/// the full scoring path uses ([`lcs_ratio`] depends only on `la + lb`),
/// so prune and full path agree verdict-for-verdict. Never below 1: a
/// zero-weight match is rejected unconditionally.
fn min_weight_to_pass(l: usize, threshold: f64) -> u64 {
    let mut w = ((threshold * l as f64) / 2.0).ceil() as u64;
    while w > 1 && lcs_ratio(w - 1, l, 0) >= threshold {
        w -= 1;
    }
    while lcs_ratio(w, l, 0) < threshold {
        w += 1;
    }
    w.max(1)
}

/// Per-compare prune table: `needed[l]` is [`min_weight_to_pass`] for
/// combined content length `l`, precomputed once so the hot probe path
/// replaces float math with an indexed load.
fn build_needed_table(mo: &[TokenMeta], mn: &[TokenMeta], threshold: f64) -> Vec<u64> {
    let max_a = mo.iter().map(|m| m.content_len).max().unwrap_or(0);
    let max_b = mn.iter().map(|m| m.content_len).max().unwrap_or(0);
    (0..=max_a + max_b)
        .map(|l| min_weight_to_pass(l, threshold))
        .collect()
}

/// Per-compare probe acceleration tables: the prune-threshold lookup
/// plus a per-token content-id bitmap matrix (one row per token, old
/// stream first) over the shared interner's id space. The bitmaps are
/// *exact*, not hashed — bit `id` is set iff the sentence contains
/// content id `id` — so `popcount(row_a & row_b)` is exactly the number
/// of distinct shared content ids, and `distinct · min(max_mult)` is a
/// sound upper bound on the multiset intersection the merge walk would
/// compute. Most mismatched sentence pairs are rejected by a few
/// word-sized ANDs without ever entering the walk.
struct ProbeTables {
    needed: Vec<u64>,
    sig: Vec<u64>,
    sig_words: usize,
    new_row_base: usize,
}

fn build_probe_tables(
    mo: &[TokenMeta],
    mn: &[TokenMeta],
    arena: &MetaArena,
    vocab: usize,
    threshold: f64,
) -> ProbeTables {
    let sig_words = vocab.div_ceil(64);
    let mut sig = scratch::take_u64_buf();
    sig.clear();
    sig.resize((mo.len() + mn.len()) * sig_words, 0);
    for (row, m) in mo.iter().chain(mn.iter()).enumerate() {
        let base = row * sig_words;
        for &id in &arena.sorted_content[m.sorted_start..m.sorted_end] {
            sig[base + (id as usize >> 6)] |= 1u64 << (id & 63);
        }
    }
    ProbeTables {
        needed: build_needed_table(mo, mn, threshold),
        sig,
        sig_words,
        new_row_base: mo.len(),
    }
}

/// Probe counters; atomic so the parallel gap scorers can share them.
/// Values are deterministic for a given probe set regardless of worker
/// count (gap rectangles are disjoint and each gap memoizes).
#[derive(Default)]
struct ScoreCounters {
    inner: AtomicUsize,
    screened: AtomicUsize,
}

/// Scores token pair `(i, j)` through the precomputed metadata. Pure
/// (same inputs → same output) and thread-safe; exact-match decisions
/// gate on hashes but confirm with deep comparison, so the score
/// function — and therefore the alignment — is collision-proof.
#[allow(clippy::too_many_arguments)]
fn score_with_meta(
    old: &[DiffToken],
    new: &[DiffToken],
    mo: &[TokenMeta],
    mn: &[TokenMeta],
    arena: &MetaArena,
    i: usize,
    j: usize,
    opts: &CompareOptions,
    tables: &ProbeTables,
    counters: &ScoreCounters,
) -> u64 {
    // Dispatch on the compact metadata, not the token enums: break
    // probes decide on two meta loads and only a hash-equal break pair
    // (a plausible match) pays for touching the tokens themselves.
    if mo[i].is_break || mn[j].is_break {
        if mo[i].is_break && mn[j].is_break && mo[i].class_hash == mn[j].class_hash {
            if let (DiffToken::Break(ta), DiffToken::Break(tb)) = (&old[i], &new[j]) {
                return u64::from(ta.matches_modulo_order(tb));
            }
        }
        return 0;
    }
    // Track screen/inner-LCS traffic for the ablation experiment.
    let la = mo[i].content_len;
    let lb = mn[j].content_len;
    if length_screened(la, lb, opts) {
        counters.screened.fetch_add(1, Ordering::Relaxed);
        return 0;
    }
    let eq = mo[i].class_hash == mn[j].class_hash && old[i] == new[j];
    if !eq {
        counters.inner.fetch_add(1, Ordering::Relaxed);
    }
    if la == 0 && lb == 0 {
        return u64::from(eq);
    }
    if eq {
        return la.max(1) as u64;
    }
    // Intersection prune: the inner LCS's W counts content items
    // matched by equal ids, and matched pairs are disjoint, so W
    // can never exceed the multiset intersection of the two
    // sentences' content-id multisets. A merge walk over the
    // presorted ids decides whether that bound can reach the
    // smallest weight the `2W/L` threshold accepts — bailing the
    // moment the answer is known either way — and when it cannot,
    // the exact DP is skipped with an identical verdict. This
    // runs *after* the counter increments so probe statistics
    // are unchanged.
    let needed = tables.needed[la + lb];
    if (la.min(lb) as u64) < needed {
        return 0;
    }
    // Bitmap prefilter: count distinct shared content ids with word-wide
    // ANDs; if even `distinct · min(max_mult)` cannot reach `needed`,
    // neither can the multiset intersection, so the walk is skipped with
    // an identical verdict.
    let w = tables.sig_words;
    let rowa = &tables.sig[i * w..(i + 1) * w];
    let rowb = &tables.sig[(tables.new_row_base + j) * w..(tables.new_row_base + j + 1) * w];
    let distinct: u32 = rowa
        .iter()
        .zip(rowb)
        .map(|(x, y)| (x & y).count_ones())
        .sum();
    if u64::from(distinct) * mo[i].max_mult.min(mn[j].max_mult) < needed {
        return 0;
    }
    let sca = &arena.sorted_content[mo[i].sorted_start..mo[i].sorted_end];
    let scb = &arena.sorted_content[mn[j].sorted_start..mn[j].sorted_end];
    if !intersection_reaches(sca, scb, needed) {
        return 0;
    }
    let aid = &arena.ids[mo[i].items_start..mo[i].items_end];
    let bid = &arena.ids[mn[j].items_start..mn[j].items_end];
    let pairs = weighted_lcs(aid.len(), bid.len(), &|x, y| u64::from(aid[x] == bid[y]));
    let w = pairs
        .iter()
        .filter(|&&(x, _)| arena.id_is_content[aid[x] as usize])
        .count() as u64;
    if w == 0 {
        return 0;
    }
    if lcs_ratio(w, la, lb) >= opts.match_threshold {
        w
    } else {
        0
    }
}

/// Deep equality for alignment decisions: breaks modulo attribute order
/// (their match predicate), sentences exactly.
fn tokens_identical(a: &DiffToken, b: &DiffToken) -> bool {
    match (a, b) {
        (DiffToken::Break(ta), DiffToken::Break(tb)) => ta.matches_modulo_order(tb),
        (DiffToken::Sentence(_), DiffToken::Sentence(_)) => a == b,
        _ => false,
    }
}

/// The naive full DP with a flat memo (the pre-fast-path algorithm,
/// preserved exactly for the ablation experiments): every probe the
/// dispatcher makes is recorded once per distinct pair.
fn naive_pairs(n: usize, m: usize, score: &impl Fn(usize, usize) -> u64) -> Vec<(usize, usize)> {
    let cells = n.saturating_mul(m);
    if cells == 0 {
        return Vec::new();
    }
    // Dense memo when it fits; the sparse fallback keeps memory bounded
    // for pathological inputs under Hirschberg.
    const DENSE_MEMO_CELL_LIMIT: usize = 1 << 24;
    if cells <= DENSE_MEMO_CELL_LIMIT {
        let memo: Vec<Cell<u64>> = vec![Cell::new(u64::MAX); cells];
        let memoized = |i: usize, j: usize| {
            let c = &memo[i * m + j];
            if c.get() == u64::MAX {
                c.set(score(i, j));
            }
            c.get()
        };
        weighted_lcs(n, m, &memoized)
    } else {
        let memo: RefCell<HashMap<(usize, usize), u64>> = RefCell::new(HashMap::new());
        let memoized = |i: usize, j: usize| {
            if let Some(&w) = memo.borrow().get(&(i, j)) {
                return w;
            }
            let w = score(i, j);
            memo.borrow_mut().insert((i, j), w);
            w
        };
        weighted_lcs(n, m, &memoized)
    }
}

/// Aligns two token streams with the weighted LCS.
///
/// Runs the anchored fast path by default and the naive full DP under
/// [`CompareOptions::force_naive`]; both produce the same output on real
/// inputs (see the module docs for the exact guarantee).
pub fn compare_tokens(
    old: &[DiffToken],
    new: &[DiffToken],
    opts: &CompareOptions,
) -> TokenAlignment {
    let mut interner = Interner::new();
    let mut arena = MetaArena::take();
    let mo = build_meta(old, &mut interner, &mut arena);
    let mn = build_meta(new, &mut interner, &mut arena);
    let counters = ScoreCounters::default();
    let tables = build_probe_tables(&mo, &mn, &arena, interner.len(), opts.match_threshold);
    let arena_ref = &arena;
    let score = |i: usize, j: usize| {
        score_with_meta(
            old, new, &mo, &mn, arena_ref, i, j, opts, &tables, &counters,
        )
    };

    aide_obs::counter("htmldiff.compare", 1);
    let pairs = if opts.force_naive {
        aide_obs::observe("htmldiff.naive.cells", (old.len() * new.len()) as u64);
        // The naive path's one rectangle is its own "gap": classify it
        // the way the anchored path classifies gaps so diff.fallback.*
        // counters cover both paths.
        const DENSE_MEMO_CELL_LIMIT: usize = 1 << 24;
        if old.len().saturating_mul(new.len()) <= DENSE_MEMO_CELL_LIMIT {
            aide_obs::counter("diff.fallback.dense", 1);
        } else {
            aide_obs::counter("diff.fallback.hirschberg", 1);
        }
        naive_pairs(old.len(), new.len(), &score)
    } else {
        let mut a_ids = scratch::take_u64_buf();
        a_ids.extend(mo.iter().map(|m| m.class_hash));
        let mut b_ids = scratch::take_u64_buf();
        b_ids.extend(mn.iter().map(|m| m.class_hash));
        let a_unit: Vec<bool> = mo.iter().map(|m| m.is_break).collect();
        let b_unit: Vec<bool> = mn.iter().map(|m| m.is_break).collect();
        let verify = |i: usize, j: usize| tokens_identical(&old[i], &new[j]);
        let cfg = AnchorConfig {
            workers: opts.gap_workers.max(1),
            ..AnchorConfig::default()
        };
        let (pairs, astats) =
            anchored_weighted_lcs(&a_ids, &b_ids, &a_unit, &b_unit, &cfg, &score, &verify);
        scratch::give_u64_buf(a_ids);
        scratch::give_u64_buf(b_ids);
        aide_obs::counter("diff.fallback.dense", astats.dense_gaps as u64);
        aide_obs::counter("diff.fallback.banded", astats.banded_gaps as u64);
        aide_obs::counter("diff.fallback.hirschberg", astats.hirschberg_gaps as u64);
        if aide_obs::enabled() {
            // Per-diff alignment work, in deterministic units: the
            // virtual clock never advances during CPU work, so cell and
            // anchor counts stand in for stage timings.
            aide_obs::observe("htmldiff.anchor.anchors", astats.anchors as u64);
            aide_obs::observe(
                "htmldiff.anchor.rescue_anchors",
                astats.rescue_anchors as u64,
            );
            aide_obs::observe("htmldiff.anchor.gaps", astats.gaps as u64);
            aide_obs::observe("htmldiff.anchor.gap_cells", astats.gap_cells as u64);
            aide_obs::observe("htmldiff.anchor.full_cells", astats.full_cells as u64);
            aide_obs::observe(
                "htmldiff.anchor.coverage_permille",
                astats.coverage_permille(),
            );
        }
        pairs
    };

    // Matched breaks are identical by construction (the match predicate
    // is modulo-order equality); sentence identity gates on the class
    // hash before paying for the deep comparison.
    let identical = pairs
        .iter()
        .map(|&(i, j)| match (&old[i], &new[j]) {
            (DiffToken::Break(_), DiffToken::Break(_)) => true,
            _ => mo[i].class_hash == mn[j].class_hash && old[i] == new[j],
        })
        .collect();
    arena.give();
    scratch::give_u64_buf(tables.sig);
    if aide_obs::enabled() {
        aide_obs::observe(
            "htmldiff.compare.inner_lcs_evals",
            counters.inner.load(Ordering::Relaxed) as u64,
        );
        aide_obs::observe(
            "htmldiff.compare.screened_out",
            counters.screened.load(Ordering::Relaxed) as u64,
        );
        // Pooled scratch capacity on this thread after the diff — the
        // arena-reuse health gauge.
        aide_obs::gauge("diff.scratch.bytes", scratch::retained_bytes() as u64);
    }
    TokenAlignment {
        alignment: Alignment::new(pairs, old.len(), new.len()),
        identical,
        inner_lcs_evals: counters.inner.load(Ordering::Relaxed),
        screened_out: counters.screened.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn first_sentence(html: &str) -> Sentence {
        tokenize(html)
            .into_iter()
            .find_map(|t| match t {
                DiffToken::Sentence(s) => Some(s),
                _ => None,
            })
            .expect("a sentence")
    }

    fn naive_opts() -> CompareOptions {
        CompareOptions {
            force_naive: true,
            ..CompareOptions::default()
        }
    }

    #[test]
    fn identical_sentences_match_with_full_weight() {
        let s = first_sentence("five words are in here");
        assert_eq!(sentence_match_weight(&s, &s, &CompareOptions::default()), 5);
    }

    #[test]
    fn one_word_change_still_matches() {
        let a = first_sentence("the conference starts on Monday");
        let b = first_sentence("the conference starts on Tuesday");
        let w = sentence_match_weight(&a, &b, &CompareOptions::default());
        assert_eq!(w, 4);
    }

    #[test]
    fn unrelated_sentences_do_not_match() {
        let a = first_sentence("alpha beta gamma delta");
        let b = first_sentence("one two three four");
        assert_eq!(sentence_match_weight(&a, &b, &CompareOptions::default()), 0);
    }

    #[test]
    fn length_screen_rejects_disparate_lengths() {
        let a = first_sentence("word");
        let b = first_sentence("word plus nine more words to stretch the length out");
        let screened = CompareOptions::default();
        assert_eq!(sentence_match_weight(&a, &b, &screened), 0);
        let unscreened = CompareOptions {
            length_screen: None,
            ..screened
        };
        // Without the screen the inner LCS runs; ratio 2*1/11 fails anyway.
        assert_eq!(sentence_match_weight(&a, &b, &unscreened), 0);
    }

    #[test]
    fn threshold_sweep_changes_verdict() {
        let a = first_sentence("one two three four five six");
        let b = first_sentence("one two NEW four NEW NEW");
        // LCS = one,two,four → W=3, L=12, ratio 0.5.
        let strict = CompareOptions {
            match_threshold: 0.6,
            length_screen: None,
            ..CompareOptions::default()
        };
        let lax = CompareOptions {
            match_threshold: 0.5,
            length_screen: None,
            ..CompareOptions::default()
        };
        assert_eq!(sentence_match_weight(&a, &b, &strict), 0);
        assert_eq!(sentence_match_weight(&a, &b, &lax), 3);
    }

    #[test]
    fn changed_anchor_url_still_matches_sentence() {
        // §5.2's example: same text, different HREF.
        let a = first_sentence(r#"read the <A HREF="old.html">report</A> today"#);
        let b = first_sentence(r#"read the <A HREF="new.html">report</A> today"#);
        let w = sentence_match_weight(&a, &b, &CompareOptions::default());
        // Words all match (4); the <A> markups do not; </A> does.
        assert!(w >= 4, "weight {w}");
    }

    #[test]
    fn markup_only_sentences() {
        let a = first_sentence("<FONT SIZE=3>x</FONT>");
        let mut only_markup = a.clone();
        only_markup.items.retain(|i| !i.is_word());
        assert_eq!(only_markup.content_len(), 0);
        assert_eq!(
            sentence_match_weight(&only_markup, &only_markup, &CompareOptions::default()),
            1
        );
    }

    #[test]
    fn break_tokens_match_exactly_only() {
        let old = tokenize("<P>x");
        let new_same = tokenize("<P>x");
        let new_diff = tokenize("<UL>x");
        let al = compare_tokens(&old, &new_same, &CompareOptions::default());
        assert_eq!(al.alignment.pairs.len(), 2);
        let al = compare_tokens(&old, &new_diff, &CompareOptions::default());
        // Only the sentence matches; <P> vs <UL> do not.
        assert_eq!(al.alignment.pairs.len(), 1);
    }

    #[test]
    fn break_attrs_modulo_order() {
        let old = tokenize(r#"<TABLE BORDER=1 WIDTH="90%">x"#);
        let new = tokenize(r#"<table width="90%" border=1>x"#);
        let al = compare_tokens(&old, &new, &CompareOptions::default());
        assert_eq!(al.alignment.pairs.len(), 2);
        assert!(al.identical.iter().all(|&b| b));
    }

    #[test]
    fn identical_flags_distinguish_approximate_matches() {
        let old = tokenize("<P>stable sentence here. changed a little bit now");
        let new = tokenize("<P>stable sentence here. changed a little bit later");
        let al = compare_tokens(&old, &new, &CompareOptions::default());
        assert_eq!(al.alignment.pairs.len(), 3); // <P>, sentence, sentence
        assert_eq!(al.identical, vec![true, true, false]);
    }

    #[test]
    fn paragraph_to_list_content_fully_matched() {
        let old = tokenize("<P>One fish. Two fish. Red fish.");
        let new = tokenize("<UL><LI>One fish.<LI>Two fish.<LI>Red fish.</UL>");
        let al = compare_tokens(&old, &new, &CompareOptions::default());
        let matched_sentences = al
            .alignment
            .pairs
            .iter()
            .filter(|&&(i, _)| !old[i].is_break())
            .count();
        assert_eq!(matched_sentences, 3, "all content matches");
    }

    #[test]
    fn screen_counter_reports_savings() {
        // Probe-count assertions describe the paper's algorithm, so both
        // arms run the naive DP: the fast path trims/anchors away most
        // probes, making its counters a property of the optimization
        // rather than of the screen.
        let old = tokenize("tiny. a much longer sentence with many many words inside it.");
        let new = tokenize("tiny. another much longer sentence with many different words within.");
        let with = compare_tokens(&old, &new, &naive_opts());
        let without = compare_tokens(
            &old,
            &new,
            &CompareOptions {
                length_screen: None,
                ..naive_opts()
            },
        );
        assert!(with.screened_out > 0);
        assert!(without.screened_out == 0);
        assert!(without.inner_lcs_evals >= with.inner_lcs_evals);
    }

    #[test]
    fn empty_streams() {
        let al = compare_tokens(&[], &[], &CompareOptions::default());
        assert!(al.alignment.pairs.is_empty());
        let old = tokenize("<P>content here");
        let al = compare_tokens(&old, &[], &CompareOptions::default());
        assert!(al.alignment.pairs.is_empty());
    }

    /// Edit-structured document pairs on which fast and naive paths must
    /// agree exactly.
    fn revision_pairs() -> Vec<(String, String)> {
        let base = "<H1>Weekly notes</H1>\
            <P>The quick brown fox jumps over the lazy dog near the river bank. \
            Monday brings a staff meeting at ten with coffee and agendas. \
            <P>Tuesday the build system gets upgraded to the new release. \
            Wednesday is reserved for design review of the cache layer. \
            <UL><LI>first item stays<LI>second item stays<LI>third item stays</UL>\
            <P>Thursday we measure throughput under the synthetic workload mix. \
            Friday wraps up with a retrospective and planning for next week.";
        vec![
            // In-place sentence edit.
            (
                base.to_string(),
                base.replace("staff meeting at ten", "staff meeting at noon"),
            ),
            // Deleted block.
            (base.to_string(), base.replace("<LI>second item stays", "")),
            // Inserted block.
            (
                base.to_string(),
                base.replace(
                    "<P>Thursday",
                    "<P>A new paragraph appears here with fresh words. <P>Thursday",
                ),
            ),
            // Attribute churn on a break plus a reword.
            (
                base.replace("<UL>", r#"<UL TYPE="disc" COMPACT>"#),
                base.replace("<UL>", r#"<UL COMPACT TYPE="disc">"#)
                    .replace("lazy dog", "sleepy dog"),
            ),
            // Full replace.
            (
                base.to_string(),
                "<P>Entirely different content with no overlap at all here.".to_string(),
            ),
            // Identical.
            (base.to_string(), base.to_string()),
        ]
    }

    #[test]
    fn fast_path_matches_naive_on_edit_structured_inputs() {
        for (old_html, new_html) in revision_pairs() {
            let old = tokenize(&old_html);
            let new = tokenize(&new_html);
            let fast = compare_tokens(&old, &new, &CompareOptions::default());
            let naive = compare_tokens(&old, &new, &naive_opts());
            assert_eq!(fast.alignment.pairs, naive.alignment.pairs);
            assert_eq!(fast.identical, naive.identical);
        }
    }

    #[test]
    fn gap_workers_do_not_change_output() {
        for (old_html, new_html) in revision_pairs() {
            let old = tokenize(&old_html);
            let new = tokenize(&new_html);
            let serial = compare_tokens(&old, &new, &CompareOptions::default());
            let parallel = compare_tokens(
                &old,
                &new,
                &CompareOptions {
                    gap_workers: 4,
                    ..CompareOptions::default()
                },
            );
            assert_eq!(serial.alignment.pairs, parallel.alignment.pairs);
            assert_eq!(serial.identical, parallel.identical);
        }
    }

    #[test]
    fn fast_path_probes_fewer_pairs() {
        // The point of the optimization: trims and anchors skip most
        // score probes on a mostly-unchanged document.
        let (old_html, new_html) = revision_pairs().remove(0);
        let old = tokenize(&old_html);
        let new = tokenize(&new_html);
        let fast = compare_tokens(&old, &new, &CompareOptions::default());
        let naive = compare_tokens(&old, &new, &naive_opts());
        assert!(
            fast.inner_lcs_evals + fast.screened_out < naive.inner_lcs_evals + naive.screened_out,
            "fast {}+{} vs naive {}+{}",
            fast.inner_lcs_evals,
            fast.screened_out,
            naive.inner_lcs_evals,
            naive.screened_out
        );
    }
}
