//! The interspersion ("muddle") metric of §5.3.
//!
//! "If every other line were changed, then the mixture of unrelated
//! struck-out and emphasized text would be muddled. We are experimenting
//! with methods for varying the degree to which old and new text can be
//! interspersed, as well as thresholds to specify when the changes are
//! too numerous to display meaningfully." This module quantifies both:
//!
//! - **changed fraction**: the share of tokens (old + new) that are not
//!   common;
//! - **muddle**: how finely changes interleave with common text —
//!   the number of common↔changed transitions normalized by its maximum.

use crate::merge::Segment;

/// Interspersion analysis of a segment sequence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MuddleReport {
    /// Share of all tokens that are old-only, new-only, or edited pairs.
    pub changed_fraction: f64,
    /// Transitions between common and changed segments, normalized to
    /// `[0, 1]` by the maximum possible for the number of segments.
    pub muddle: f64,
    /// Number of changed runs.
    pub changed_runs: usize,
}

/// Thresholds above which a merged page stops being useful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuddleThresholds {
    /// A page with more than this fraction changed reads better as a
    /// whole replacement (§8.2: "when the entire contents are replaced,
    /// there is no use for HtmlDiff").
    pub max_changed_fraction: f64,
    /// Beyond this interleaving, with a substantial changed fraction,
    /// the mixture is muddled.
    pub max_muddle: f64,
    /// Changed fraction above which the muddle test applies.
    pub muddle_applies_above: f64,
}

impl Default for MuddleThresholds {
    fn default() -> Self {
        MuddleThresholds {
            max_changed_fraction: 0.8,
            max_muddle: 0.6,
            muddle_applies_above: 0.4,
        }
    }
}

/// Analyzes interspersion over the segment sequence.
pub fn analyze(segments: &[Segment], changed_pairs: usize) -> MuddleReport {
    let mut changed_tokens = 2 * changed_pairs; // an edited pair counts on both sides
    let mut common_tokens = 0usize;
    let mut transitions = 0usize;
    let mut changed_runs = 0usize;
    let mut prev_changed: Option<bool> = None;
    for seg in segments {
        let (is_changed, tokens) = match seg {
            Segment::Common(pairs) => (false, pairs.len() * 2),
            Segment::Old(v) | Segment::New(v) => (true, v.len()),
        };
        match seg {
            Segment::Common(pairs) => common_tokens += pairs.len() * 2,
            _ => changed_tokens += tokens,
        }
        if let Some(p) = prev_changed {
            if p != is_changed {
                transitions += 1;
            }
        }
        if is_changed && prev_changed != Some(true) {
            changed_runs += 1;
        }
        prev_changed = Some(is_changed);
    }
    // Changed pairs live inside Common segments; do not double count the
    // common total.
    common_tokens = common_tokens.saturating_sub(2 * changed_pairs);
    let total = changed_tokens + common_tokens;
    let changed_fraction = if total == 0 {
        0.0
    } else {
        changed_tokens as f64 / total as f64
    };
    let max_transitions = segments.len().saturating_sub(1);
    let muddle = if max_transitions == 0 {
        0.0
    } else {
        transitions as f64 / max_transitions as f64
    };
    MuddleReport {
        changed_fraction,
        muddle,
        changed_runs,
    }
}

impl MuddleReport {
    /// Applies thresholds: is this comparison "too numerous to display
    /// meaningfully"?
    pub fn too_muddled(&self, t: &MuddleThresholds) -> bool {
        if self.changed_fraction > t.max_changed_fraction {
            return true;
        }
        self.changed_fraction > t.muddle_applies_above && self.muddle > t.max_muddle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{compare_tokens, CompareOptions};
    use crate::merge::segments;
    use crate::tokenize::tokenize;

    fn report(old_html: &str, new_html: &str) -> MuddleReport {
        let old = tokenize(old_html);
        let new = tokenize(new_html);
        let al = compare_tokens(&old, &new, &CompareOptions::default());
        let segs = segments(&al);
        let changed_pairs = al.identical.iter().filter(|&&b| !b).count();
        analyze(&segs, changed_pairs)
    }

    #[test]
    fn identical_documents_score_zero() {
        let r = report("<P>alpha. beta. gamma.", "<P>alpha. beta. gamma.");
        assert_eq!(r.changed_fraction, 0.0);
        assert_eq!(r.muddle, 0.0);
        assert_eq!(r.changed_runs, 0);
    }

    #[test]
    fn full_replacement_scores_high() {
        let r = report(
            "<P>alpha one. beta two. gamma three.",
            "<P>delta four! epsilon five! zeta six!",
        );
        assert!(r.changed_fraction > 0.7, "fraction {}", r.changed_fraction);
    }

    #[test]
    fn single_append_is_calm() {
        let r = report(
            "<P>one. two. three. four. five. six. seven. eight.",
            "<P>one. two. three. four. five. six. seven. eight. nine!",
        );
        let t = MuddleThresholds::default();
        assert!(!r.too_muddled(&t));
        assert_eq!(r.changed_runs, 1);
        assert!(r.changed_fraction < 0.2);
    }

    #[test]
    fn alternating_changes_are_muddled() {
        // Every other sentence replaced: high interleave.
        let old =
            "<P>k1 k1 k1. x1 x1 x1. k2 k2 k2. x2 x2 x2. k3 k3 k3. x3 x3 x3. k4 k4 k4. x4 x4 x4.";
        let new =
            "<P>k1 k1 k1. y1 y1 y1. k2 k2 k2. y2 y2 y2. k3 k3 k3. y3 y3 y3. k4 k4 k4. y4 y4 y4.";
        let r = report(old, new);
        assert!(r.changed_runs >= 4, "runs {}", r.changed_runs);
        assert!(r.muddle > 0.6, "muddle {}", r.muddle);
        assert!(r.too_muddled(&MuddleThresholds::default()), "{r:?}");
    }

    #[test]
    fn thresholds_gate_correctly() {
        let t = MuddleThresholds::default();
        let calm = MuddleReport {
            changed_fraction: 0.1,
            muddle: 0.9,
            changed_runs: 3,
        };
        assert!(
            !calm.too_muddled(&t),
            "small change, even scattered, is fine"
        );
        let replaced = MuddleReport {
            changed_fraction: 0.95,
            muddle: 0.1,
            changed_runs: 1,
        };
        assert!(replaced.too_muddled(&t));
        let woven = MuddleReport {
            changed_fraction: 0.5,
            muddle: 0.8,
            changed_runs: 9,
        };
        assert!(woven.too_muddled(&t));
    }

    #[test]
    fn empty_inputs() {
        let r = analyze(&[], 0);
        assert_eq!(r.changed_fraction, 0.0);
        assert_eq!(r.muddle, 0.0);
    }
}
