//! The HtmlDiff token model.
//!
//! §5.1: "In HtmlDiff, a token is either a sentence-breaking markup or a
//! sentence, which consists of a sequence of words and non-sentence-
//! breaking markups. Note that the definition of sentence is not
//! recursive; sentences cannot contain sentences." Sentence *length* is
//! "the number of words and 'content-defining' markups such as `<IMG>`
//! or `<A>` in a sentence. Markups such as `<B>` or `<I>` are not
//! counted."

use aide_htmlkit::classify::is_content_defining;
use aide_htmlkit::lexer::Tag;
use std::fmt;

/// An element of a sentence: a word or an inline (non-breaking) markup.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inline {
    /// A whitespace-delimited word, verbatim.
    Word(String),
    /// An inline markup such as `<B>`, `</B>`, `<A HREF=…>`, `<IMG …>`.
    Markup(Tag),
}

impl Inline {
    /// True if this item counts toward sentence length (a word or a
    /// content-defining markup).
    pub fn is_content(&self) -> bool {
        match self {
            Inline::Word(_) => true,
            Inline::Markup(tag) => is_content_defining(&tag.name),
        }
    }

    /// True for [`Inline::Word`].
    pub fn is_word(&self) -> bool {
        matches!(self, Inline::Word(_))
    }

    /// Exact-match comparison: words compare verbatim; markups compare
    /// modulo case, whitespace and attribute order.
    pub fn matches(&self, other: &Inline) -> bool {
        match (self, other) {
            (Inline::Word(a), Inline::Word(b)) => a == b,
            (Inline::Markup(a), Inline::Markup(b)) => a.matches_modulo_order(b),
            _ => false,
        }
    }
}

impl fmt::Display for Inline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inline::Word(w) => write!(f, "{w}"),
            Inline::Markup(t) => write!(f, "{t}"),
        }
    }
}

/// A sentence: at most one English sentence, possibly a fragment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Sentence {
    /// The words and inline markups, in order.
    pub items: Vec<Inline>,
}

impl Sentence {
    /// The paper's sentence length: words + content-defining markups.
    pub fn content_len(&self) -> usize {
        self.items.iter().filter(|i| i.is_content()).count()
    }

    /// Number of words only.
    pub fn word_count(&self) -> usize {
        self.items.iter().filter(|i| i.is_word()).count()
    }

    /// True if the sentence has no items at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders the sentence as HTML, words separated by single spaces.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, item) in self.items.iter().enumerate() {
            if k > 0 {
                // Whitespace was discarded at tokenization; a single space
                // between word items restores readability. No space is
                // inserted after an opening markup or before a closing one.
                let prev_is_open_markup = matches!(
                    &self.items[k - 1],
                    Inline::Markup(t) if t.kind != aide_htmlkit::lexer::TagKind::Close
                );
                let cur_is_close_markup = matches!(
                    item,
                    Inline::Markup(t) if t.kind == aide_htmlkit::lexer::TagKind::Close
                );
                if !prev_is_open_markup && !cur_is_close_markup {
                    out.push(' ');
                }
            }
            out.push_str(&item.to_string());
        }
        out
    }

    /// Renders only the words (markups elided) — how *old* sentences
    /// appear in the merged page, since "old hypertext references and
    /// images do not appear" (§5.2).
    pub fn render_words_only(&self) -> String {
        self.items
            .iter()
            .filter_map(|i| match i {
                Inline::Word(w) => Some(w.as_str()),
                Inline::Markup(_) => None,
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One token of the HtmlDiff comparison stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffToken {
    /// A sentence-breaking markup (`<P>`, `<HR>`, `<LI>`, `<H1>`, …).
    Break(Tag),
    /// A sentence.
    Sentence(Sentence),
}

impl DiffToken {
    /// True for [`DiffToken::Break`].
    pub fn is_break(&self) -> bool {
        matches!(self, DiffToken::Break(_))
    }

    /// The sentence, if this token is one.
    pub fn as_sentence(&self) -> Option<&Sentence> {
        match self {
            DiffToken::Sentence(s) => Some(s),
            _ => None,
        }
    }

    /// The breaking tag, if this token is one.
    pub fn as_break(&self) -> Option<&Tag> {
        match self {
            DiffToken::Break(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_htmlkit::lexer::Tag;

    fn word(w: &str) -> Inline {
        Inline::Word(w.to_string())
    }

    #[test]
    fn content_len_counts_words_and_content_markups() {
        let s = Sentence {
            items: vec![
                word("See"),
                Inline::Markup(Tag::open("B")),
                word("this"),
                Inline::Markup(Tag::close("B")),
                Inline::Markup(Tag::open("IMG").with_attr("SRC", "x.gif")),
                Inline::Markup(Tag::open("A").with_attr("HREF", "y.html")),
                word("link"),
                Inline::Markup(Tag::close("A")),
            ],
        };
        // Words: See, this, link (3). Content markups: IMG, <A>, </A>... the
        // closing </A> has the content-defining *name* A, so it counts too,
        // matching the paper's "all markups are represented and compared".
        assert_eq!(s.content_len(), 6);
        assert_eq!(s.word_count(), 3);
    }

    #[test]
    fn inline_matching() {
        assert!(word("x").matches(&word("x")));
        assert!(!word("x").matches(&word("X")), "words are case-sensitive");
        let a = Inline::Markup(Tag::open("A").with_attr("HREF", "u"));
        let b = Inline::Markup(Tag::open("A").with_attr("HREF", "u"));
        let c = Inline::Markup(Tag::open("A").with_attr("HREF", "v"));
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
        assert!(!a.matches(&word("A")));
    }

    #[test]
    fn render_spacing() {
        let s = Sentence {
            items: vec![
                word("plain"),
                Inline::Markup(Tag::open("B")),
                word("bold"),
                Inline::Markup(Tag::close("B")),
                word("after."),
            ],
        };
        assert_eq!(s.render(), "plain <B>bold</B> after.");
    }

    #[test]
    fn render_words_only_drops_markups() {
        let s = Sentence {
            items: vec![
                word("keep"),
                Inline::Markup(Tag::open("IMG").with_attr("SRC", "gone.gif")),
                word("these."),
            ],
        };
        assert_eq!(s.render_words_only(), "keep these.");
    }

    #[test]
    fn empty_sentence() {
        let s = Sentence::default();
        assert!(s.is_empty());
        assert_eq!(s.content_len(), 0);
        assert_eq!(s.render(), "");
    }

    #[test]
    fn token_accessors() {
        let b = DiffToken::Break(Tag::open("P"));
        assert!(b.is_break());
        assert!(b.as_break().is_some());
        assert!(b.as_sentence().is_none());
        let s = DiffToken::Sentence(Sentence {
            items: vec![word("x")],
        });
        assert!(!s.is_break());
        assert!(s.as_sentence().is_some());
    }
}
