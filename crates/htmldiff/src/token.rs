//! The HtmlDiff token model.
//!
//! §5.1: "In HtmlDiff, a token is either a sentence-breaking markup or a
//! sentence, which consists of a sequence of words and non-sentence-
//! breaking markups. Note that the definition of sentence is not
//! recursive; sentences cannot contain sentences." Sentence *length* is
//! "the number of words and 'content-defining' markups such as `<IMG>`
//! or `<A>` in a sentence. Markups such as `<B>` or `<I>` are not
//! counted."

use aide_htmlkit::classify::is_content_defining;
use aide_htmlkit::lexer::{Tag, TagKind};
use aide_util::checksum::Fnv1a;
use std::fmt;

/// An element of a sentence: a word or an inline (non-breaking) markup.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inline {
    /// A whitespace-delimited word, verbatim.
    Word(String),
    /// An inline markup such as `<B>`, `</B>`, `<A HREF=…>`, `<IMG …>`.
    Markup(Tag),
}

impl Inline {
    /// True if this item counts toward sentence length (a word or a
    /// content-defining markup).
    pub fn is_content(&self) -> bool {
        match self {
            Inline::Word(_) => true,
            Inline::Markup(tag) => is_content_defining(&tag.name),
        }
    }

    /// True for [`Inline::Word`].
    pub fn is_word(&self) -> bool {
        matches!(self, Inline::Word(_))
    }

    /// Exact-match comparison: words compare verbatim; markups compare
    /// modulo case, whitespace and attribute order.
    pub fn matches(&self, other: &Inline) -> bool {
        match (self, other) {
            (Inline::Word(a), Inline::Word(b)) => a == b,
            (Inline::Markup(a), Inline::Markup(b)) => a.matches_modulo_order(b),
            _ => false,
        }
    }
}

impl fmt::Display for Inline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inline::Word(w) => write!(f, "{w}"),
            Inline::Markup(t) => write!(f, "{t}"),
        }
    }
}

/// A sentence: at most one English sentence, possibly a fragment.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Sentence {
    /// The words and inline markups, in order.
    pub items: Vec<Inline>,
}

impl Sentence {
    /// The paper's sentence length: words + content-defining markups.
    pub fn content_len(&self) -> usize {
        self.items.iter().filter(|i| i.is_content()).count()
    }

    /// Number of words only.
    pub fn word_count(&self) -> usize {
        self.items.iter().filter(|i| i.is_word()).count()
    }

    /// True if the sentence has no items at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders the sentence as HTML, words separated by single spaces.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, item) in self.items.iter().enumerate() {
            if k > 0 {
                // Whitespace was discarded at tokenization; a single space
                // between word items restores readability. No space is
                // inserted after an opening markup or before a closing one.
                let prev_is_open_markup = matches!(
                    &self.items[k - 1],
                    Inline::Markup(t) if t.kind != aide_htmlkit::lexer::TagKind::Close
                );
                let cur_is_close_markup = matches!(
                    item,
                    Inline::Markup(t) if t.kind == aide_htmlkit::lexer::TagKind::Close
                );
                if !prev_is_open_markup && !cur_is_close_markup {
                    out.push(' ');
                }
            }
            out.push_str(&item.to_string());
        }
        out
    }

    /// Renders only the words (markups elided) — how *old* sentences
    /// appear in the merged page, since "old hypertext references and
    /// images do not appear" (§5.2).
    pub fn render_words_only(&self) -> String {
        self.items
            .iter()
            .filter_map(|i| match i {
                Inline::Word(w) => Some(w.as_str()),
                Inline::Markup(_) => None,
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// One token of the HtmlDiff comparison stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffToken {
    /// A sentence-breaking markup (`<P>`, `<HR>`, `<LI>`, `<H1>`, …).
    Break(Tag),
    /// A sentence.
    Sentence(Sentence),
}

impl DiffToken {
    /// True for [`DiffToken::Break`].
    pub fn is_break(&self) -> bool {
        matches!(self, DiffToken::Break(_))
    }

    /// The sentence, if this token is one.
    pub fn as_sentence(&self) -> Option<&Sentence> {
        match self {
            DiffToken::Sentence(s) => Some(s),
            _ => None,
        }
    }

    /// The breaking tag, if this token is one.
    pub fn as_break(&self) -> Option<&Tag> {
        match self {
            DiffToken::Break(t) => Some(t),
            _ => None,
        }
    }
}

fn kind_byte(kind: TagKind) -> u8 {
    match kind {
        TagKind::Open => 0,
        TagKind::Close => 1,
        TagKind::SelfClose => 2,
    }
}

/// Feeds a tag into `h`. With `modulo_order`, attributes are hashed in
/// sorted order, so two tags hash equally iff the inputs to
/// [`Tag::matches_modulo_order`] are equal; without it, attributes are
/// hashed in source order, matching derived `Tag` equality.
pub(crate) fn hash_tag_into(h: &mut Fnv1a, tag: &Tag, modulo_order: bool) {
    h.update(tag.name.as_bytes())
        .update(&[0xFE, kind_byte(tag.kind)]);
    let mut hash_attr = |name: &String, value: &Option<String>| {
        h.update(&[0xFD]).update(name.as_bytes());
        match value {
            Some(v) => h.update(&[1]).update(v.as_bytes()),
            None => h.update(&[0]),
        };
    };
    if modulo_order {
        let mut attrs: Vec<_> = tag.attrs.iter().collect();
        attrs.sort();
        for (name, value) in attrs {
            hash_attr(name, value);
        }
    } else {
        for (name, value) in &tag.attrs {
            hash_attr(name, value);
        }
    }
}

/// Feeds a sentence's items into `h`, deeply (word bytes verbatim,
/// markup attributes in source order), so two sentences hash equally iff
/// derived `Sentence` equality holds — hash inequality proves `a != b`.
pub(crate) fn hash_sentence_into(h: &mut Fnv1a, s: &Sentence) {
    for item in &s.items {
        match item {
            Inline::Word(w) => {
                h.update(&[0xF1]).update(w.as_bytes());
            }
            Inline::Markup(tag) => {
                h.update(&[0xF2]);
                hash_tag_into(h, tag, false);
            }
        }
        h.update(&[0xFF]);
    }
}

/// The match-equivalence class of a token, as a hash (PR 2 fast path).
///
/// Two tokens of equal class hash *may* be interchangeable for alignment
/// purposes — breaks that match modulo attribute order, sentences with
/// deeply equal content — and unequal hashes prove they are not. Break
/// and sentence classes never collide by construction.
pub fn token_class_hash(token: &DiffToken) -> u64 {
    let mut h = Fnv1a::new();
    match token {
        DiffToken::Break(tag) => {
            h.update(&[0xB0]);
            hash_tag_into(&mut h, tag, true);
        }
        DiffToken::Sentence(s) => {
            h.update(&[0x50]);
            hash_sentence_into(&mut h, s);
        }
    }
    h.finish()
}

/// A deep, order-sensitive hash of a whole token stream.
///
/// Unlike [`token_class_hash`], break attributes are hashed in source
/// order: rendered output prints tags verbatim, so streams that differ
/// only in attribute order must hash differently. Equal hashes identify
/// streams that render identically under the same options — the snapshot
/// service's content-addressed diff-cache key.
pub fn token_stream_hash(tokens: &[DiffToken]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&(tokens.len() as u64).to_le_bytes());
    for token in tokens {
        match token {
            DiffToken::Break(tag) => {
                h.update(&[0xB1]);
                hash_tag_into(&mut h, tag, false);
            }
            DiffToken::Sentence(s) => {
                h.update(&[0x51]);
                hash_sentence_into(&mut h, s);
            }
        }
        h.update(&[0xEE]);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_htmlkit::lexer::Tag;

    fn word(w: &str) -> Inline {
        Inline::Word(w.to_string())
    }

    #[test]
    fn content_len_counts_words_and_content_markups() {
        let s = Sentence {
            items: vec![
                word("See"),
                Inline::Markup(Tag::open("B")),
                word("this"),
                Inline::Markup(Tag::close("B")),
                Inline::Markup(Tag::open("IMG").with_attr("SRC", "x.gif")),
                Inline::Markup(Tag::open("A").with_attr("HREF", "y.html")),
                word("link"),
                Inline::Markup(Tag::close("A")),
            ],
        };
        // Words: See, this, link (3). Content markups: IMG, <A>, </A>... the
        // closing </A> has the content-defining *name* A, so it counts too,
        // matching the paper's "all markups are represented and compared".
        assert_eq!(s.content_len(), 6);
        assert_eq!(s.word_count(), 3);
    }

    #[test]
    fn inline_matching() {
        assert!(word("x").matches(&word("x")));
        assert!(!word("x").matches(&word("X")), "words are case-sensitive");
        let a = Inline::Markup(Tag::open("A").with_attr("HREF", "u"));
        let b = Inline::Markup(Tag::open("A").with_attr("HREF", "u"));
        let c = Inline::Markup(Tag::open("A").with_attr("HREF", "v"));
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
        assert!(!a.matches(&word("A")));
    }

    #[test]
    fn render_spacing() {
        let s = Sentence {
            items: vec![
                word("plain"),
                Inline::Markup(Tag::open("B")),
                word("bold"),
                Inline::Markup(Tag::close("B")),
                word("after."),
            ],
        };
        assert_eq!(s.render(), "plain <B>bold</B> after.");
    }

    #[test]
    fn render_words_only_drops_markups() {
        let s = Sentence {
            items: vec![
                word("keep"),
                Inline::Markup(Tag::open("IMG").with_attr("SRC", "gone.gif")),
                word("these."),
            ],
        };
        assert_eq!(s.render_words_only(), "keep these.");
    }

    #[test]
    fn empty_sentence() {
        let s = Sentence::default();
        assert!(s.is_empty());
        assert_eq!(s.content_len(), 0);
        assert_eq!(s.render(), "");
    }

    #[test]
    fn class_hash_respects_attr_order_rules() {
        let a = DiffToken::Break(
            Tag::open("TABLE")
                .with_attr("BORDER", "1")
                .with_attr("WIDTH", "90%"),
        );
        let b = DiffToken::Break(
            Tag::open("TABLE")
                .with_attr("WIDTH", "90%")
                .with_attr("BORDER", "1"),
        );
        let c = DiffToken::Break(
            Tag::open("TABLE")
                .with_attr("BORDER", "2")
                .with_attr("WIDTH", "90%"),
        );
        assert_eq!(token_class_hash(&a), token_class_hash(&b), "modulo order");
        assert_ne!(token_class_hash(&a), token_class_hash(&c));
        // The deep stream hash distinguishes attribute order (rendering
        // prints tags verbatim).
        assert_ne!(
            token_stream_hash(std::slice::from_ref(&a)),
            token_stream_hash(std::slice::from_ref(&b))
        );
        assert_eq!(
            token_stream_hash(std::slice::from_ref(&a)),
            token_stream_hash(std::slice::from_ref(&a))
        );
    }

    #[test]
    fn sentence_hashes_are_deep() {
        let s1 = DiffToken::Sentence(Sentence {
            items: vec![word("alpha"), word("beta")],
        });
        let s2 = DiffToken::Sentence(Sentence {
            items: vec![word("alpha"), word("gamma")],
        });
        let s3 = DiffToken::Sentence(Sentence {
            items: vec![word("alpha beta")], // concatenation must not collide
        });
        assert_ne!(token_class_hash(&s1), token_class_hash(&s2));
        assert_ne!(token_class_hash(&s1), token_class_hash(&s3));
        assert_eq!(token_class_hash(&s1), token_class_hash(&s1.clone()));
    }

    #[test]
    fn break_and_sentence_classes_never_collide() {
        let b = DiffToken::Break(Tag::open("P"));
        let s = DiffToken::Sentence(Sentence { items: vec![] });
        assert_ne!(token_class_hash(&b), token_class_hash(&s));
    }

    #[test]
    fn stream_hash_sensitive_to_order_and_length() {
        let t1 = DiffToken::Sentence(Sentence {
            items: vec![word("x")],
        });
        let t2 = DiffToken::Sentence(Sentence {
            items: vec![word("y")],
        });
        let ab = token_stream_hash(&[t1.clone(), t2.clone()]);
        let ba = token_stream_hash(&[t2.clone(), t1.clone()]);
        let a = token_stream_hash(std::slice::from_ref(&t1));
        assert_ne!(ab, ba);
        assert_ne!(ab, a);
        assert_ne!(a, token_stream_hash(&[]));
    }

    #[test]
    fn token_accessors() {
        let b = DiffToken::Break(Tag::open("P"));
        assert!(b.is_break());
        assert!(b.as_break().is_some());
        assert!(b.as_sentence().is_none());
        let s = DiffToken::Sentence(Sentence {
            items: vec![word("x")],
        });
        assert!(!s.is_break());
        assert!(s.as_sentence().is_some());
    }
}
