//! Lexical analysis of HTML into the HtmlDiff token stream.
//!
//! "A simple lexical analysis of an HTML document creates the token
//! sequence and converts the case of the markup name and associated
//! (variable,value) pairs to uppercase; parsing is not required" (§5.1).
//! Whitespace is discarded ("whitespace in a document does not provide
//! any content... and should not affect comparison") except inside
//! `<PRE>`, where each line becomes its own sentence so that layout
//! changes in preformatted text are visible.

use crate::token::{DiffToken, Inline, Sentence};
use aide_htmlkit::classify::{is_sentence_breaking, preserves_whitespace};
use aide_htmlkit::lexer::{lex, TagKind, Token};
use aide_htmlkit::text::split_words;

/// Tokenizes an HTML document for comparison.
///
/// # Examples
///
/// ```
/// use aide_htmldiff::tokenize::tokenize;
/// use aide_htmldiff::token::DiffToken;
///
/// let tokens = tokenize("<P>One sentence. Another one!<HR>");
/// // <P>, "One sentence.", "Another one!", <HR>
/// assert_eq!(tokens.len(), 4);
/// assert!(tokens[0].is_break());
/// assert_eq!(tokens[1].as_sentence().unwrap().word_count(), 2);
/// ```
pub fn tokenize(html: &str) -> Vec<DiffToken> {
    let mut out = Vec::new();
    let mut current = Sentence::default();
    let mut pre_depth = 0usize;

    let flush = |current: &mut Sentence, out: &mut Vec<DiffToken>| {
        if !current.is_empty() {
            out.push(DiffToken::Sentence(std::mem::take(current)));
        }
    };

    for token in lex(html) {
        match token {
            Token::Comment(_) | Token::Declaration(_) => {
                // Comments carry no content; the paper's comparison
                // ignores them.
            }
            Token::Tag(tag) => {
                if preserves_whitespace(&tag.name) {
                    if tag.kind == TagKind::Close {
                        pre_depth = pre_depth.saturating_sub(1);
                    } else {
                        pre_depth += 1;
                    }
                }
                if is_sentence_breaking(&tag.name) {
                    flush(&mut current, &mut out);
                    out.push(DiffToken::Break(tag));
                } else {
                    current.items.push(Inline::Markup(tag));
                }
            }
            Token::Text(text) => {
                if pre_depth > 0 {
                    // Inside <PRE>: whitespace is content; one sentence
                    // per line.
                    for (k, line) in text.split('\n').enumerate() {
                        if k > 0 {
                            flush(&mut current, &mut out);
                        }
                        if !line.is_empty() {
                            current.items.push(Inline::Word(line.to_string()));
                        }
                    }
                } else {
                    for word in split_words(&text) {
                        current.items.push(Inline::Word(word.text));
                        if word.ends_sentence {
                            flush(&mut current, &mut out);
                        }
                    }
                }
            }
        }
    }
    flush(&mut current, &mut out);
    if aide_obs::enabled() {
        aide_obs::counter("htmldiff.tokenize", 1);
        aide_obs::observe("htmldiff.tokenize.tokens", out.len() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sentences(tokens: &[DiffToken]) -> Vec<String> {
        tokens
            .iter()
            .filter_map(|t| t.as_sentence().map(|s| s.render()))
            .collect()
    }

    #[test]
    fn sentences_split_on_punctuation() {
        let tokens = tokenize("First one. Second one! Third?");
        assert_eq!(
            sentences(&tokens),
            vec!["First one.", "Second one!", "Third?"]
        );
    }

    #[test]
    fn breaking_markups_split_sentences() {
        let tokens = tokenize("before<P>after");
        assert_eq!(tokens.len(), 3);
        assert!(tokens[1].is_break());
        assert_eq!(sentences(&tokens), vec!["before", "after"]);
    }

    #[test]
    fn inline_markups_join_sentences() {
        let tokens = tokenize("a <B>bold</B> claim. next");
        assert_eq!(sentences(&tokens), vec!["a <B>bold</B> claim.", "next"]);
        assert_eq!(tokens.len(), 2);
    }

    #[test]
    fn anchor_stays_inside_sentence() {
        let tokens = tokenize(r#"See the <A HREF="x.html">proceedings</A> for details."#);
        assert_eq!(tokens.len(), 1);
        let s = tokens[0].as_sentence().unwrap();
        // Words: See, the, proceedings, for, details. + <A> + </A>.
        assert_eq!(s.word_count(), 5);
        assert_eq!(s.content_len(), 7);
    }

    #[test]
    fn paragraph_to_list_has_same_sentences() {
        // The §5.1 example: content identical, formatting changed.
        let para = tokenize("<P>One fish. Two fish. Red fish. Blue fish.</P>");
        let list = tokenize("<UL><LI>One fish.<LI>Two fish.<LI>Red fish.<LI>Blue fish.</UL>");
        assert_eq!(sentences(&para), sentences(&list));
        assert_ne!(para.len(), list.len(), "markup tokens differ");
    }

    #[test]
    fn whitespace_is_invisible() {
        let a = tokenize("<P>spaced   out\n\ntext here.");
        let b = tokenize("<P>spaced out text here.");
        assert_eq!(a, b);
    }

    #[test]
    fn comments_ignored() {
        let a = tokenize("x<!-- hidden note -->y");
        let b = tokenize("x y");
        assert_eq!(sentences(&a), sentences(&b));
    }

    #[test]
    fn pre_lines_are_sentences() {
        let tokens = tokenize("<PRE>col1   col2\nval1   val2</PRE>");
        let s = sentences(&tokens);
        assert_eq!(s, vec!["col1   col2", "val1   val2"]);
    }

    #[test]
    fn pre_preserves_internal_spacing() {
        let a = tokenize("<PRE>a   b</PRE>");
        let b = tokenize("<PRE>a b</PRE>");
        assert_ne!(a, b, "spacing inside PRE is content");
    }

    #[test]
    fn heading_tags_break() {
        let tokens = tokenize("<H1>Title</H1>Body text here.");
        assert!(tokens[0].is_break());
        assert_eq!(sentences(&tokens), vec!["Title", "Body text here."]);
    }

    #[test]
    fn empty_input_and_markup_only() {
        assert!(tokenize("").is_empty());
        let tokens = tokenize("<P><HR><P>");
        assert_eq!(tokens.len(), 3);
        assert!(tokens.iter().all(DiffToken::is_break));
    }

    #[test]
    fn trailing_fragment_flushed() {
        let tokens = tokenize("no terminal punctuation");
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].as_sentence().unwrap().word_count(), 3);
    }

    #[test]
    fn case_of_markup_normalized() {
        let a = tokenize("<p>x</p>");
        let b = tokenize("<P>x</P>");
        assert_eq!(a, b);
    }
}
