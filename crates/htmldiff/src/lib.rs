//! HtmlDiff: HTML-aware differencing with merged-page presentation.
//!
//! The primary contribution of the paper (§5): compare two HTML pages and
//! produce a *merged* page in which deleted material is struck out, added
//! material is emphasized, and small arrow images — chained together as
//! internal hypertext references — let the reader hop from change to
//! change. The comparison views a document as "a sequence of sentences
//! and 'sentence-breaking' markups", aligns the two token sequences with
//! a weighted LCS (Hirschberg's algorithm), and matches sentences
//! approximately: a length screen first, then an inner LCS whose `2W/L`
//! ratio must clear a threshold.
//!
//! Module map:
//!
//! - [`token`]: the [`DiffToken`] stream model — sentences (words +
//!   inline markups) and sentence-breaking markups.
//! - [`tokenize`](mod@crate::tokenize): lexical analysis of HTML into that stream.
//! - [`compare`]: the two-phase sentence matcher and the weighted LCS
//!   over tokens.
//! - [`merge`]: merged-page construction — banner, arrow chain,
//!   `<STRIKE>` for old, `<STRONG><I>` for new, old-markup elision.
//! - [`present`]: the presentation options of §5.2 (merged page, only
//!   differences, reversed, new-only).
//! - [`muddle`]: the interspersion ("too many changes to display
//!   meaningfully") metric of §5.3.
//!
//! # Examples
//!
//! ```
//! use aide_htmldiff::{html_diff, Options};
//!
//! let old = "<HTML><P>AIDE tracks pages. The old sentence.</HTML>";
//! let new = "<HTML><P>AIDE tracks pages. A brand new sentence!</HTML>";
//! let result = html_diff(old, new, &Options::default());
//! assert_eq!(result.stats.old_only_sentences, 1);
//! assert_eq!(result.stats.new_only_sentences, 1);
//! assert!(result.html.contains("<STRIKE>"));
//! assert!(result.html.contains("<STRONG><I>"));
//! ```

pub mod compare;
pub mod merge;
pub mod muddle;
pub mod present;
pub mod token;
pub mod tokenize;

pub use compare::{compare_tokens, CompareOptions, TokenAlignment};
pub use merge::DiffStats;
pub use present::{html_diff, DiffResult, Options, Presentation};
pub use token::{token_class_hash, token_stream_hash, DiffToken, Inline, Sentence};
pub use tokenize::tokenize;
