//! Presentation of the comparison (§5.2): the public `html_diff` entry
//! point and the presentation modes the paper weighs.
//!
//! - **Merged-page** (the paper's preference): one page summarizing
//!   common, old and new material, with a banner and an arrow chain.
//! - **Only differences**: "show only differences (old and new) and
//!   eliminate the common part (as done in UNIX diff)".
//! - **Reversed**: "by reversing the sense of 'old' and 'new' one can
//!   create a merged page with the old markups intact and the new
//!   deleted".
//! - **New-only**: "a more Draconian option would be to leave out all old
//!   material", which is always syntactically safe.
//!
//! Side-by-side was rejected in the paper: "there is no good mechanism
//! in place with current HTML and browser technology" for vertical
//! synchronization. Tables (new in Netscape 1.1) actually suffice, so
//! [`Presentation::SideBySide`] implements it here as an extension.

use crate::compare::{compare_tokens, CompareOptions, TokenAlignment};
use crate::merge::{
    arrow, banner, new_run_has_content, old_run_has_content, render_new_sentence,
    render_old_sentence, DiffStats, Segment,
};
use crate::muddle::{analyze, MuddleReport, MuddleThresholds};
use crate::token::{DiffToken, Inline, Sentence};
use crate::tokenize::tokenize;
use aide_diffcore::lcs::weighted_lcs;
use aide_diffcore::script::{Alignment, EditOp};

/// How to present the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Presentation {
    /// The merged page (default).
    #[default]
    Merged,
    /// Only the changed material, hunk by hunk.
    OnlyDifferences,
    /// Merged with old/new roles swapped (old markups intact).
    Reversed,
    /// Merged without any old material.
    NewOnly,
    /// Two synchronized columns in a `<TABLE>` (the presentation §5.2
    /// wished for but judged impossible with 1995 technology — tables,
    /// new in Netscape 1.1, make it expressible after all).
    SideBySide,
}

/// Options for [`html_diff`].
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Comparison tunables (thresholds, length screen).
    pub compare: CompareOptions,
    /// Presentation mode.
    pub presentation: Presentation,
    /// Emit the banner heading.
    pub banner: bool,
    /// Label for the old version in the banner (e.g. a revision or date).
    pub old_label: String,
    /// Label for the new version.
    pub new_label: String,
    /// Image URL for the "old content here" arrow (red in the paper).
    pub old_arrow_img: String,
    /// Image URL for the "new content here" arrow (green in the paper).
    pub new_arrow_img: String,
    /// Mark word-level changes inside approximately-matched sentences
    /// (an extension beyond the paper, off by default).
    pub inline_word_diff: bool,
    /// Thresholds for declaring the page too muddled.
    pub muddle: MuddleThresholds,
    /// When too muddled, fall back to a whole-replacement view instead of
    /// an interleaved merge.
    pub fallback_on_muddle: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            compare: CompareOptions::default(),
            presentation: Presentation::Merged,
            banner: true,
            old_label: "old".to_string(),
            new_label: "new".to_string(),
            old_arrow_img: "/icons/aide-red-arrow.gif".to_string(),
            new_arrow_img: "/icons/aide-green-arrow.gif".to_string(),
            inline_word_diff: false,
            muddle: MuddleThresholds::default(),
            fallback_on_muddle: false,
        }
    }
}

/// The output of [`html_diff`].
#[derive(Debug, Clone)]
pub struct DiffResult {
    /// The presentation HTML.
    pub html: String,
    /// Comparison statistics.
    pub stats: DiffStats,
    /// Interspersion analysis.
    pub muddle: MuddleReport,
    /// Whether the thresholds judged the page too muddled.
    pub too_muddled: bool,
}

/// Compares two HTML documents and renders the differences.
pub fn html_diff(old_html: &str, new_html: &str, opts: &Options) -> DiffResult {
    let old = tokenize(old_html);
    let new = tokenize(new_html);
    diff_tokens(&old, &new, opts)
}

/// Compares pre-tokenized documents (callers that cache token streams).
pub fn diff_tokens(old: &[DiffToken], new: &[DiffToken], opts: &Options) -> DiffResult {
    // Reversed presentation swaps the roles entirely and renders merged.
    if opts.presentation == Presentation::Reversed {
        let mut swapped = opts.clone();
        swapped.presentation = Presentation::Merged;
        std::mem::swap(&mut swapped.old_label, &mut swapped.new_label);
        return diff_tokens(new, old, &swapped);
    }

    let al = compare_tokens(old, new, &opts.compare);
    let segs = crate::merge::segments(&al);
    let changed_pairs = al.identical.iter().filter(|&&b| !b).count();
    let muddle = analyze(&segs, changed_pairs);
    let too_muddled = muddle.too_muddled(&opts.muddle);

    let stats = gather_stats(old, new, &al, &segs, &muddle);

    let html = if too_muddled && opts.fallback_on_muddle {
        render_replacement(old, new, &stats, opts)
    } else {
        match opts.presentation {
            Presentation::Merged | Presentation::Reversed => {
                render_merged(old, new, &segs, &stats, opts, false)
            }
            Presentation::NewOnly => render_merged(old, new, &segs, &stats, opts, true),
            Presentation::OnlyDifferences => render_only_differences(old, new, &segs, &stats, opts),
            Presentation::SideBySide => render_side_by_side(old, new, &segs, &stats, opts),
        }
    };

    DiffResult {
        html,
        stats,
        muddle,
        too_muddled,
    }
}

fn gather_stats(
    old: &[DiffToken],
    new: &[DiffToken],
    al: &TokenAlignment,
    segs: &[Segment],
    muddle: &MuddleReport,
) -> DiffStats {
    let mut stats = DiffStats {
        old_tokens: old.len(),
        new_tokens: new.len(),
        common_tokens: al.alignment.pairs.len(),
        changed_pairs: al.identical.iter().filter(|&&b| !b).count(),
        changed_fraction: muddle.changed_fraction,
        muddle: muddle.muddle,
        ..DiffStats::default()
    };
    for seg in segs {
        match seg {
            Segment::Old(idxs) => {
                for &i in idxs {
                    match &old[i] {
                        DiffToken::Sentence(_) => stats.old_only_sentences += 1,
                        DiffToken::Break(_) => stats.old_only_breaks += 1,
                    }
                }
            }
            Segment::New(idxs) => {
                for &i in idxs {
                    match &new[i] {
                        DiffToken::Sentence(_) => stats.new_only_sentences += 1,
                        DiffToken::Break(_) => stats.new_only_breaks += 1,
                    }
                }
            }
            Segment::Common(_) => {}
        }
    }
    stats.difference_sites = count_sites(old, new, segs);
    stats
}

/// A difference site earns an arrow: an edited common sentence, an
/// old-only run with visible content, or a new-only run with content.
/// Pure-markup (format-only) changes are "not highlighted" (§5.2).
fn count_sites(old: &[DiffToken], new: &[DiffToken], segs: &[Segment]) -> usize {
    let mut sites = 0;
    for seg in segs {
        match seg {
            Segment::Common(pairs) => {
                sites += pairs
                    .iter()
                    .filter(|&&(i, _, identical)| {
                        !identical && matches!(&old[i], DiffToken::Sentence(_))
                    })
                    .count();
            }
            Segment::Old(idxs) => {
                if old_run_has_content(old, idxs) {
                    sites += 1;
                }
            }
            Segment::New(idxs) => {
                if new_run_has_content(new, idxs) {
                    sites += 1;
                }
            }
        }
    }
    sites
}

fn render_merged(
    old: &[DiffToken],
    new: &[DiffToken],
    segs: &[Segment],
    stats: &DiffStats,
    opts: &Options,
    new_only: bool,
) -> String {
    let total_sites = stats.difference_sites;
    let mut out = String::new();
    if opts.banner {
        out.push_str(&banner(total_sites, &opts.old_label, &opts.new_label));
    }
    let mut site = 0usize;
    for seg in segs {
        match seg {
            Segment::Common(pairs) => {
                for &(i, j, identical) in pairs {
                    match &new[j] {
                        DiffToken::Break(tag) => {
                            out.push_str(&tag.to_string());
                            out.push('\n');
                        }
                        DiffToken::Sentence(s) => {
                            if !identical {
                                out.push_str(&arrow(
                                    site,
                                    total_sites,
                                    &opts.new_arrow_img,
                                    "changed",
                                ));
                                site += 1;
                                if opts.inline_word_diff {
                                    if let DiffToken::Sentence(old_s) = &old[i] {
                                        out.push_str(&render_inline_diff(old_s, s));
                                        out.push('\n');
                                        continue;
                                    }
                                }
                            }
                            out.push_str(&s.render());
                            out.push('\n');
                        }
                    }
                }
            }
            Segment::Old(idxs) => {
                if new_only {
                    continue;
                }
                if old_run_has_content(old, idxs) {
                    out.push_str(&arrow(site, total_sites, &opts.old_arrow_img, "deleted"));
                    site += 1;
                    let struck: Vec<String> = idxs
                        .iter()
                        .filter_map(|&i| old[i].as_sentence())
                        .map(render_old_sentence)
                        .filter(|s| !s.is_empty())
                        .collect();
                    out.push_str(&struck.join(" "));
                    out.push('\n');
                }
                // Old breaking markups are elided entirely.
            }
            Segment::New(idxs) => {
                let content = new_run_has_content(new, idxs);
                if content {
                    out.push_str(&arrow(site, total_sites, &opts.new_arrow_img, "new"));
                    site += 1;
                }
                for &j in idxs {
                    match &new[j] {
                        DiffToken::Break(tag) => {
                            out.push_str(&tag.to_string());
                            out.push('\n');
                        }
                        DiffToken::Sentence(s) => {
                            out.push_str(&render_new_sentence(s));
                            out.push('\n');
                        }
                    }
                }
            }
        }
    }
    debug_assert_eq!(site, if new_only { site } else { total_sites });
    out
}

fn render_only_differences(
    old: &[DiffToken],
    new: &[DiffToken],
    segs: &[Segment],
    stats: &DiffStats,
    opts: &Options,
) -> String {
    let mut out = String::new();
    if opts.banner {
        out.push_str(&banner(
            stats.difference_sites,
            &opts.old_label,
            &opts.new_label,
        ));
    }
    let mut in_change = false;
    for seg in segs {
        match seg {
            Segment::Common(pairs) => {
                for &(i, j, identical) in pairs {
                    if identical {
                        in_change = false;
                        continue;
                    }
                    if let (DiffToken::Sentence(old_s), DiffToken::Sentence(new_s)) =
                        (&old[i], &new[j])
                    {
                        if !in_change {
                            out.push_str("<HR>\n");
                            in_change = true;
                        }
                        out.push_str(&render_old_sentence(old_s));
                        out.push('\n');
                        out.push_str(&render_new_sentence(new_s));
                        out.push('\n');
                    }
                }
            }
            Segment::Old(idxs) => {
                if !old_run_has_content(old, idxs) {
                    continue;
                }
                if !in_change {
                    out.push_str("<HR>\n");
                    in_change = true;
                }
                for &i in idxs {
                    if let Some(s) = old[i].as_sentence() {
                        let r = render_old_sentence(s);
                        if !r.is_empty() {
                            out.push_str(&r);
                            out.push('\n');
                        }
                    }
                }
            }
            Segment::New(idxs) => {
                if !new_run_has_content(new, idxs) {
                    continue;
                }
                if !in_change {
                    out.push_str("<HR>\n");
                    in_change = true;
                }
                for &j in idxs {
                    if let Some(s) = new[j].as_sentence() {
                        out.push_str(&render_new_sentence(s));
                        out.push('\n');
                    }
                }
            }
        }
    }
    out
}

/// Two synchronized columns: common segments span both, old-only
/// material sits struck-out on the left against an empty right cell, and
/// new-only material sits emphasized on the right. Rows align because
/// they are table rows — the vertical synchronization §5.2 could not get
/// from 1995 HTML flows.
fn render_side_by_side(
    old: &[DiffToken],
    new: &[DiffToken],
    segs: &[Segment],
    stats: &DiffStats,
    opts: &Options,
) -> String {
    let mut out = String::new();
    if opts.banner {
        out.push_str(&banner(
            stats.difference_sites,
            &opts.old_label,
            &opts.new_label,
        ));
    }
    out.push_str("<TABLE BORDER=1 WIDTH=\"100%\">\n");
    out.push_str(&format!(
        "<TR><TH>{}</TH><TH>{}</TH></TR>\n",
        opts.old_label, opts.new_label
    ));
    let render_plain = |tokens: &[DiffToken], idxs: &[usize]| -> String {
        idxs.iter()
            .map(|&i| match &tokens[i] {
                DiffToken::Break(tag) => tag.to_string(),
                DiffToken::Sentence(s) => s.render(),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    for seg in segs {
        match seg {
            Segment::Common(pairs) => {
                let left: Vec<String> = pairs
                    .iter()
                    .map(|&(i, _, _)| match &old[i] {
                        DiffToken::Break(tag) => tag.to_string(),
                        DiffToken::Sentence(s) => s.render(),
                    })
                    .collect();
                let right: Vec<String> = pairs
                    .iter()
                    .map(|&(_, j, _)| match &new[j] {
                        DiffToken::Break(tag) => tag.to_string(),
                        DiffToken::Sentence(s) => s.render(),
                    })
                    .collect();
                out.push_str(&format!(
                    "<TR><TD>{}</TD><TD>{}</TD></TR>\n",
                    left.join("\n"),
                    right.join("\n")
                ));
            }
            Segment::Old(idxs) => {
                let content = if old_run_has_content(old, idxs) {
                    format!("<STRIKE>{}</STRIKE>", render_plain(old, idxs))
                } else {
                    render_plain(old, idxs)
                };
                out.push_str(&format!("<TR><TD>{content}</TD><TD></TD></TR>\n"));
            }
            Segment::New(idxs) => {
                let content = if new_run_has_content(new, idxs) {
                    format!("<STRONG><I>{}</I></STRONG>", render_plain(new, idxs))
                } else {
                    render_plain(new, idxs)
                };
                out.push_str(&format!("<TR><TD></TD><TD>{content}</TD></TR>\n"));
            }
        }
    }
    out.push_str("</TABLE>\n");
    out
}

/// Whole-replacement fallback for muddled comparisons: old words struck
/// in one block, the new document verbatim after.
fn render_replacement(
    old: &[DiffToken],
    new: &[DiffToken],
    _stats: &DiffStats,
    opts: &Options,
) -> String {
    let mut out = String::new();
    if opts.banner {
        out.push_str(&format!(
            "<A NAME=\"difftop\"></A><H4>AIDE HtmlDiff: {} vs. {} &#183; \
             too many changes to mark individually; showing full replacement</H4>\n<HR>\n",
            opts.old_label, opts.new_label
        ));
    }
    let old_words: Vec<String> = old
        .iter()
        .filter_map(|t| t.as_sentence())
        .map(Sentence::render_words_only)
        .filter(|s| !s.is_empty())
        .collect();
    if !old_words.is_empty() {
        out.push_str("<STRIKE>");
        out.push_str(&old_words.join(" "));
        out.push_str("</STRIKE>\n<HR>\n");
    }
    for t in new {
        match t {
            DiffToken::Break(tag) => {
                out.push_str(&tag.to_string());
                out.push('\n');
            }
            DiffToken::Sentence(s) => {
                out.push_str(&s.render());
                out.push('\n');
            }
        }
    }
    out
}

/// Word-level diff inside an approximately-matched sentence pair
/// (extension; `inline_word_diff`).
fn render_inline_diff(old_s: &Sentence, new_s: &Sentence) -> String {
    let pairs = weighted_lcs(old_s.items.len(), new_s.items.len(), &|i, j| {
        u64::from(old_s.items[i].matches(&new_s.items[j]))
    });
    let alignment = Alignment::new(pairs, old_s.items.len(), new_s.items.len());
    let mut out = String::new();
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(' ');
        }
        *first = false;
    };
    for op in alignment.script().ops {
        match op {
            EditOp::Equal { b_start, len, .. } => {
                for item in &new_s.items[b_start..b_start + len] {
                    push_sep(&mut out, &mut first);
                    out.push_str(&item.to_string());
                }
            }
            EditOp::Delete { a_start, len, .. } => {
                let words: Vec<&str> = old_s.items[a_start..a_start + len]
                    .iter()
                    .filter_map(|i| match i {
                        Inline::Word(w) => Some(w.as_str()),
                        Inline::Markup(_) => None,
                    })
                    .collect();
                if !words.is_empty() {
                    push_sep(&mut out, &mut first);
                    out.push_str(&format!("<STRIKE>{}</STRIKE>", words.join(" ")));
                }
            }
            EditOp::Insert { b_start, len, .. } => {
                for item in &new_s.items[b_start..b_start + len] {
                    push_sep(&mut out, &mut first);
                    match item {
                        Inline::Word(w) => out.push_str(&format!("<STRONG><I>{w}</I></STRONG>")),
                        Inline::Markup(t) => out.push_str(&t.to_string()),
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff(old: &str, new: &str) -> DiffResult {
        html_diff(old, new, &Options::default())
    }

    #[test]
    fn identical_documents() {
        let r = diff("<P>same here.", "<P>same here.");
        assert!(r.stats.is_identical());
        assert_eq!(r.stats.difference_sites, 0);
        assert!(r.html.contains("No differences"));
        assert!(!r.html.contains("<STRIKE>"));
    }

    #[test]
    fn addition_is_emphasized_with_green_arrow() {
        let r = diff("<P>old stays.", "<P>old stays. brand new sentence!");
        assert_eq!(r.stats.new_only_sentences, 1);
        assert_eq!(r.stats.difference_sites, 1);
        assert!(r
            .html
            .contains("<STRONG><I>brand new sentence!</I></STRONG>"));
        assert!(r.html.contains("aide-green-arrow"));
        assert!(!r.html.contains("aide-red-arrow"));
    }

    #[test]
    fn deletion_is_struck_with_red_arrow() {
        let r = diff("<P>old stays. doomed sentence here!", "<P>old stays.");
        assert_eq!(r.stats.old_only_sentences, 1);
        assert!(r.html.contains("<STRIKE>doomed sentence here!</STRIKE>"));
        assert!(r.html.contains("aide-red-arrow"));
    }

    #[test]
    fn deleted_markup_does_not_appear() {
        let r = diff(
            r#"<P>keep this. also <A HREF="dead.html">a doomed link</A> went away."#,
            "<P>keep this.",
        );
        assert!(
            !r.html.contains("dead.html"),
            "old hrefs must be elided: {}",
            r.html
        );
        assert!(r.html.contains("<STRIKE>"));
    }

    #[test]
    fn arrow_chain_is_linked() {
        let r = diff(
            "<P>one stays. two goes away now. three stays.",
            "<P>one stays. three stays. four arrives here!",
        );
        assert_eq!(r.stats.difference_sites, 2);
        assert!(r.html.contains("NAME=\"diff0\""));
        assert!(r.html.contains("HREF=\"#diff1\""));
        assert!(r.html.contains("NAME=\"diff1\""));
        assert!(r.html.contains("HREF=\"#difftop\""));
        assert!(r.html.contains("#diff0\">[go to first change]"));
    }

    #[test]
    fn edited_sentence_gets_arrow_but_keeps_font() {
        let r = diff(
            "<P>the meeting is on Monday at noon sharp.",
            "<P>the meeting is on Friday at noon sharp.",
        );
        assert_eq!(r.stats.changed_pairs, 1);
        assert_eq!(r.stats.difference_sites, 1);
        // Approximate matches render the new sentence unhighlighted.
        assert!(r.html.contains("the meeting is on Friday at noon sharp."));
        assert!(!r.html.contains("<STRIKE>"));
    }

    #[test]
    fn paragraph_to_list_is_format_only() {
        let r = diff(
            "<P>One fish. Two fish. Red fish.",
            "<UL><LI>One fish.<LI>Two fish.<LI>Red fish.</UL>",
        );
        assert!(!r.stats.content_changed(), "{:?}", r.stats);
        assert!(r.stats.new_only_breaks > 0);
        assert_eq!(r.stats.difference_sites, 0, "format changes get no arrows");
        // The list markup must appear (it is part of the new page).
        assert!(r.html.contains("<UL>"));
        assert!(r.html.contains("<LI>"));
    }

    #[test]
    fn inline_word_diff_marks_words() {
        let opts = Options {
            inline_word_diff: true,
            ..Options::default()
        };
        let r = html_diff(
            "<P>the meeting is on Monday at noon.",
            "<P>the meeting is on Friday at noon.",
            &opts,
        );
        assert!(r.html.contains("<STRIKE>Monday</STRIKE>"), "{}", r.html);
        assert!(r.html.contains("<STRONG><I>Friday</I></STRONG>"));
    }

    #[test]
    fn only_differences_drops_common() {
        let opts = Options {
            presentation: Presentation::OnlyDifferences,
            ..Options::default()
        };
        let r = html_diff(
            "<P>common context stays. doomed goes!",
            "<P>common context stays. fresh arrives!",
            &opts,
        );
        assert!(!r.html.contains("common context stays."));
        assert!(r.html.contains("<STRIKE>doomed goes!</STRIKE>"));
        assert!(r.html.contains("<STRONG><I>fresh arrives!</I></STRONG>"));
        assert!(r.html.contains("<HR>"));
    }

    #[test]
    fn new_only_omits_old_material() {
        let opts = Options {
            presentation: Presentation::NewOnly,
            ..Options::default()
        };
        let r = html_diff(
            "<P>stays. vanishes entirely!",
            "<P>stays. appears now!",
            &opts,
        );
        assert!(!r.html.contains("STRIKE"));
        assert!(!r.html.contains("vanishes"));
        assert!(r.html.contains("<STRONG><I>appears now!</I></STRONG>"));
    }

    #[test]
    fn reversed_swaps_roles() {
        let opts = Options {
            presentation: Presentation::Reversed,
            ..Options::default()
        };
        let r = html_diff(
            "<P>stays. completely doomed sentence!",
            "<P>stays. utterly fresh material arrives!",
            &opts,
        );
        // Reversed: the *new* text is struck out, the *old* emphasized.
        assert!(
            r.html
                .contains("<STRIKE>utterly fresh material arrives!</STRIKE>"),
            "{}",
            r.html
        );
        assert!(r
            .html
            .contains("<STRONG><I>completely doomed sentence!</I></STRONG>"));
    }

    #[test]
    fn side_by_side_synchronizes_columns() {
        let opts = Options {
            presentation: Presentation::SideBySide,
            ..Options::default()
        };
        let r = html_diff(
            "<P>shared context. utterly doomed material vanishes!",
            "<P>shared context. completely fresh words arrive today!",
            &opts,
        );
        assert!(r.html.contains("<TABLE"));
        assert!(r.html.contains("</TABLE>"));
        // The deleted material occupies a left cell with an empty right.
        assert!(
            r.html.contains(
                "<TR><TD><STRIKE>utterly doomed material vanishes!</STRIKE></TD><TD></TD></TR>"
            ),
            "{}",
            r.html
        );
        // The added material occupies a right cell with an empty left.
        assert!(
            r.html.contains(
                "<TR><TD></TD><TD><STRONG><I>completely fresh words arrive today!</I></STRONG></TD></TR>"
            ),
            "{}",
            r.html
        );
        // Common text appears in both columns of one row.
        assert_eq!(r.html.matches("shared context.").count(), 2, "{}", r.html);
        assert_eq!(
            r.html.matches("<TR>").count(),
            r.html.matches("</TR>").count()
        );
    }

    #[test]
    fn side_by_side_identical_is_all_common_rows() {
        let opts = Options {
            presentation: Presentation::SideBySide,
            banner: false,
            ..Options::default()
        };
        let r = html_diff("<P>alpha beta.", "<P>alpha beta.", &opts);
        assert!(!r.html.contains("<STRIKE>"));
        assert!(!r.html.contains("<STRONG>"));
        // Header row plus one common row.
        assert_eq!(r.html.matches("<TR>").count(), 2);
    }

    #[test]
    fn muddle_fallback_renders_replacement() {
        let opts = Options {
            fallback_on_muddle: true,
            ..Options::default()
        };
        let r = html_diff(
            "<P>alpha one two. beta three four. gamma five six.",
            "<UL>delta seven eight! epsilon nine ten! zeta eleven twelve!",
            &opts,
        );
        assert!(r.too_muddled, "{:?}", r.muddle);
        assert!(r.html.contains("too many changes"));
        assert!(r.html.contains("<STRIKE>alpha one two."));
        assert!(r.html.contains("zeta eleven twelve!"));
    }

    #[test]
    fn banner_can_be_disabled() {
        let opts = Options {
            banner: false,
            ..Options::default()
        };
        let r = html_diff("<P>a b c.", "<P>a b d.", &opts);
        assert!(!r.html.contains("AIDE HtmlDiff"));
    }

    #[test]
    fn empty_documents() {
        let r = diff("", "");
        assert!(r.stats.is_identical());
        let r = diff("", "<P>all new content!");
        assert_eq!(r.stats.new_only_sentences, 1);
        let r = diff("<P>all old content!", "");
        assert_eq!(r.stats.old_only_sentences, 1);
    }

    #[test]
    fn common_tokens_keep_new_markup_rendering() {
        let r = diff(
            r#"<P>click <A HREF="a.html">here</A> now."#,
            r#"<P>click <A HREF="b.html">here</A> now."#,
        );
        // Sentence matched approximately; new HREF appears, old does not.
        assert!(r.html.contains("b.html"));
        assert!(!r.html.contains("a.html"));
        assert_eq!(r.stats.changed_pairs, 1);
    }

    #[test]
    fn stats_fraction_bounds() {
        let r = diff("<P>a b c. d e f.", "<P>a b c. d e g.");
        assert!((0.0..=1.0).contains(&r.stats.changed_fraction));
        assert!((0.0..=1.0).contains(&r.stats.muddle));
    }
}
