#!/bin/sh
# Repository CI gate: formatting, lints, tests. Run from the repo root.
set -eu

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== aide-lint (deny-by-default; see LINTS.md)"
cargo run -q -p aide-analysis --bin aide-lint -- --root . --deny \
    --budget-ms "$(cat .aide-lint-budget-ms)"
cargo run -q -p aide-analysis --bin aide-lint -- --root . --waivers \
    --max-waivers "$(cat .aide-lint-waivers)"
cargo run -q -p aide-analysis --bin aide-lint -- --root . --emit json \
    > target/aide-lint.json
cargo run -q -p aide-analysis --bin aide-lint -- --root . --emit json \
    > target/aide-lint-rerun.json
cmp target/aide-lint.json target/aide-lint-rerun.json
cargo run -q -p aide-analysis --bin aide-lint -- --root . --emit sarif \
    > target/aide-lint.sarif

echo "== cargo test"
cargo test -q

echo "== fault-injection determinism (same seed => byte-identical reports)"
AIDE_FAULT_DUMP="$PWD/target/fault_report_a.html" \
    cargo test -q -p aide --test fault_tolerance >/dev/null
AIDE_FAULT_DUMP="$PWD/target/fault_report_b.html" \
    cargo test -q -p aide --test fault_tolerance >/dev/null
cmp target/fault_report_a.html target/fault_report_b.html

echo "== observability determinism (same seed => byte-identical metrics)"
AIDE_OBS_JSON="$PWD/target/obs_a.json" \
    cargo test -q -p aide --test observability >/dev/null
AIDE_OBS_JSON="$PWD/target/obs_b.json" \
    cargo test -q -p aide --test observability >/dev/null
cmp target/obs_a.json target/obs_b.json

echo "== crash-recovery determinism (every kill point, twice, byte-identical)"
AIDE_STORE_DUMP="$PWD/target/store_crash_a.txt" \
    cargo test -q -p aide-store --test crash >/dev/null
AIDE_STORE_DUMP="$PWD/target/store_crash_b.txt" \
    cargo test -q -p aide-store --test crash >/dev/null
cmp target/store_crash_a.txt target/store_crash_b.txt

echo "== bench smoke (single-iteration, compile-and-run check)"
AIDE_BENCH_SMOKE=1 cargo bench -q -p aide-bench --bench htmldiff_e2e >/dev/null
AIDE_BENCH_SMOKE=1 cargo bench -q -p aide-bench --bench snapshot_contention >/dev/null
AIDE_BENCH_SMOKE=1 cargo bench -q -p aide-bench --bench storage_engine >/dev/null

echo "== bench regression guard (committed BENCH_htmldiff.json vs budget)"
cargo run -q --release -p aide-bench --bin bench_guard -- \
    BENCH_htmldiff.json crates/bench/benches/htmldiff_budget.json

echo "== capacity curve determinism (same seed => byte-identical curves)"
cargo run -q --release -p aide-bench --bin exp_capacity -- \
    --out target/capacity_a.json
cargo run -q --release -p aide-bench --bin exp_capacity -- \
    --out target/capacity_b.json
cmp target/capacity_a.json target/capacity_b.json

echo "== scheduler experiment (adaptive must beat threshold; byte-identical)"
cargo run -q --release -p aide-bench --bin exp_scheduler -- \
    --out target/sched_a.json
cargo run -q --release -p aide-bench --bin exp_scheduler -- \
    --out target/sched_b.json
cmp target/sched_a.json target/sched_b.json
cmp target/sched_a.json BENCH_sched.json

echo "== serve transcript determinism (same fixture => byte-identical responses)"
AIDE_SERVE_DUMP="$PWD/target/serve_transcript_a.txt" \
    cargo test -q -p aide-serve --test memento >/dev/null
AIDE_SERVE_DUMP="$PWD/target/serve_transcript_b.txt" \
    cargo test -q -p aide-serve --test memento >/dev/null
cmp target/serve_transcript_a.txt target/serve_transcript_b.txt

echo "== serve capacity determinism (same seed => byte-identical curves)"
cargo run -q --release -p aide-bench --bin exp_capacity -- --serve \
    --out target/serve_a.json
cargo run -q --release -p aide-bench --bin exp_capacity -- --serve \
    --out target/serve_b.json
cmp target/serve_a.json target/serve_b.json

echo "CI green."
