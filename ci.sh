#!/bin/sh
# Repository CI gate: formatting, lints, tests. Run from the repo root.
set -eu

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test -q

echo "CI green."
