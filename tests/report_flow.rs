//! Report-flow integration: Figure 1 output driven through the CGI layer.
//!
//! A user's w3newer report carries Remember/Diff/History links (§6); this
//! test clicks them the way a 1995 browser would — by dispatching the
//! link URLs through the CGI layer — and checks each step's output.

use aide::cgi::{dispatch, parse_query};
use aide::engine::AideEngine;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::config::ThresholdConfig;

fn setup() -> AideEngine {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 15, 9, 0, 0));
    let web = Web::new(clock.clone());
    web.set_page(
        "http://www.usenix.org/index.html",
        aide_workloads::usenix::USENIX_1995_09_29,
        Timestamp::from_ymd_hms(1995, 9, 29, 12, 0, 0),
    )
    .unwrap();
    let e = AideEngine::new(web);
    let b = e.register_user("douglis@research.att.com", ThresholdConfig::table1());
    b.add_bookmark("USENIX Association", "http://www.usenix.org/index.html");
    e
}

/// Extracts the first CGI query string (`op=...`) for `op` from HTML.
fn find_query(html: &str, op: &str) -> String {
    let needle = format!("op={op}&");
    let start = html
        .find(&needle)
        .unwrap_or_else(|| panic!("no {op} link in: {html}"));
    let end = html[start..]
        .find('"')
        .map(|i| start + i)
        .unwrap_or(html.len());
    html[start..end].to_string()
}

#[test]
fn report_links_drive_the_full_cycle() {
    let e = setup();
    let user = "douglis@research.att.com";

    // 1. The tracker reports the page as changed (never seen).
    let report = e.tracker_report_html(user).unwrap();
    assert!(report.contains("Changed pages"));
    assert!(report.contains("USENIX Association"));

    // 2. Click Remember.
    let remember_q = find_query(&report, "remember");
    let resp = dispatch(&e, user, &remember_q);
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("revision 1.1"));

    // 3. The page changes (the 11/3 edition).
    e.clock().advance(Duration::days(35));
    e.web()
        .touch_page(
            "http://www.usenix.org/index.html",
            aide_workloads::usenix::USENIX_1995_11_03,
            e.clock().now(),
        )
        .unwrap();

    // 4. The next report flags it; click Diff.
    let report = e.tracker_report_html(user).unwrap();
    let diff_q = find_query(&report, "diff");
    let resp = dispatch(&e, user, &diff_q);
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("AIDE HtmlDiff"));
    assert!(
        resp.body.contains("<STRIKE>"),
        "Figure 2 strike-outs present"
    );
    assert!(resp.body.contains("COOTS"), "new conference appears");

    // 5. Click History; two revisions listed, with a diff-to-previous link.
    let history_q = find_query(&report, "history");
    let resp = dispatch(&e, user, &history_q);
    assert!(resp.body.contains("1.1"));
    assert!(resp.body.contains("1.2"));
    let pair_q = find_query(&resp.body, "rcsdiff");
    let resp = dispatch(&e, user, &pair_q);
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("AIDE HtmlDiff"));

    // 6. View the archived original via the co link.
    let history = dispatch(&e, user, &history_q);
    let co_q = find_query(&history.body, "co");
    let parsed = parse_query(&co_q);
    assert_eq!(parsed.op, "co");
    let resp = dispatch(&e, user, &co_q);
    assert!(resp.body.contains("USENIX"), "archived copy served");
    assert!(resp.body.contains("BASE HREF"), "relative links fixed up");
}

#[test]
fn figure1_report_structure() {
    let e = setup();
    let user = "douglis@research.att.com";
    let b = e.browser(user).unwrap();
    // Add more bookmarks in assorted states.
    e.web()
        .set_page(
            "http://seen/page.html",
            "<HTML>x</HTML>",
            Timestamp::from_ymd_hms(1995, 10, 1, 0, 0, 0),
        )
        .unwrap();
    b.add_bookmark("Already seen", "http://seen/page.html");
    b.visit("http://seen/page.html").unwrap();
    b.add_bookmark("Broken", "http://broken-host/x.html");
    b.add_bookmark("Dilbert", "http://www.unitedmedia.com/comics/dilbert/");

    let html = e.tracker_report_html(user).unwrap();
    // All four states visible, as in Figure 1.
    assert!(html.contains("<B>changed</B>"), "{html}");
    assert!(html.contains("seen"));
    assert!(html.contains("<B>error</B>"));
    assert!(html.contains("configured never"));
    // Three action links per entry.
    let entries = html.matches("op=remember").count();
    assert_eq!(entries, html.matches("op=diff").count());
    assert_eq!(entries, html.matches("op=history").count());
    assert_eq!(entries, 4);
}
