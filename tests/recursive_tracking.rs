//! Server-side and recursive tracking integration (§8.3).
//!
//! Economies of scale: N users interested in one URL cost one poll; a
//! Virtual-Library hub registers its linked pages automatically; and the
//! per-user "what's new" view stays personalized even though checking is
//! centralized.

use aide::tracking::ServerTracker;
use aide_rcs::repo::MemRepository;
use aide_simweb::net::Web;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};
use std::sync::Arc;

fn setup() -> (Web, ServerTracker) {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 11, 1, 0, 0, 0));
    let web = Web::new(clock.clone());
    let snapshot = Arc::new(SnapshotService::new(
        MemRepository::new(),
        clock,
        128,
        Duration::hours(8),
    ));
    (web.clone(), ServerTracker::new(web, snapshot))
}

#[test]
fn polls_scale_with_urls_not_users() {
    let (web, tracker) = setup();
    for i in 0..5 {
        web.set_page(
            &format!("http://pop/{i}.html"),
            "<HTML>v1</HTML>",
            Timestamp(100),
        )
        .unwrap();
    }
    // 40 users all interested in the same 5 URLs.
    for u in 0..40 {
        let user = UserId::new(&format!("user{u}@site"));
        for i in 0..5 {
            tracker.register(&user, &format!("http://pop/{i}.html"));
        }
    }
    web.reset_stats();
    let summary = tracker.poll_all();
    assert_eq!(summary.checked, 5);
    assert_eq!(web.stats().gets, 5, "one GET per URL, not per user");

    // Every user sees all five as new; after marking seen, none are.
    let u7 = UserId::new("user7@site");
    let fresh = tracker.whats_new(&u7).unwrap();
    assert_eq!(fresh.len(), 5);
    assert!(fresh.iter().all(|s| s.changed_for_user));
    for s in &fresh {
        tracker.mark_seen(&u7, &s.url).unwrap();
    }
    assert!(tracker
        .whats_new(&u7)
        .unwrap()
        .iter()
        .all(|s| !s.changed_for_user));
    // Another user's view is unaffected.
    let u8 = UserId::new("user8@site");
    assert!(tracker
        .whats_new(&u8)
        .unwrap()
        .iter()
        .all(|s| s.changed_for_user));
}

#[test]
fn virtual_library_hub_tracks_linked_pages() {
    let (web, tracker) = setup();
    // A hub linking to three subject pages on other hosts.
    web.set_page(
        "http://vlib/ComputerScience.html",
        r#"<HTML><H1>Virtual Library: CS</H1><UL>
           <LI><A HREF="http://site-a/systems.html">Systems</A>
           <LI><A HREF="http://site-b/languages.html">Languages</A>
           <LI><A HREF="http://site-c/theory.html">Theory</A>
           </UL></HTML>"#,
        Timestamp(100),
    )
    .unwrap();
    for host in ["site-a", "site-b", "site-c"] {
        let page = match host {
            "site-a" => "http://site-a/systems.html",
            "site-b" => "http://site-b/languages.html",
            _ => "http://site-c/theory.html",
        };
        web.set_page(page, "<HTML>subject page v1</HTML>", Timestamp(100))
            .unwrap();
    }
    let alice = UserId::new("alice@x");
    let regs = tracker
        .register_hub(&alice, "http://vlib/ComputerScience.html", 1, false)
        .unwrap();
    assert_eq!(regs.len(), 4, "hub + 3 linked pages: {regs:?}");

    tracker.poll_all();
    // One linked page changes; only it shows as new after a mark-seen sweep.
    for s in tracker.whats_new(&alice).unwrap() {
        tracker.mark_seen(&alice, &s.url).unwrap();
    }
    web.clock().advance(Duration::days(1));
    web.touch_page(
        "http://site-b/languages.html",
        "<HTML>subject page v2</HTML>",
        web.clock().now(),
    )
    .unwrap();
    tracker.poll_all();
    let news: Vec<_> = tracker
        .whats_new(&alice)
        .unwrap()
        .into_iter()
        .filter(|s| s.changed_for_user)
        .collect();
    assert_eq!(news.len(), 1);
    assert_eq!(news[0].url, "http://site-b/languages.html");
}

#[test]
fn decoupled_history_wart() {
    // §8.3: "centralized tracking... would have the disadvantage of being
    // decoupled from a given user's W3 browser history; i.e., if a user
    // views a page directly, the snapshot facility would have no
    // indication of this and might present the page as having been
    // modified." Reproduce exactly that.
    let (web, tracker) = setup();
    web.set_page("http://h/p.html", "<HTML>v1</HTML>", Timestamp(100))
        .unwrap();
    let user = UserId::new("u@x");
    tracker.register(&user, "http://h/p.html");
    tracker.poll_all();

    // The user views the page directly in their browser...
    let browser = aide_simweb::browser::Browser::new(web.clone());
    browser.visit("http://h/p.html").unwrap();
    // ...but the server-side tracker still reports it as new-to-them.
    let status = &tracker.whats_new(&user).unwrap()[0];
    assert!(
        status.changed_for_user,
        "server-side tracking cannot see direct browser visits"
    );
}

#[test]
fn archival_happens_at_change_detection() {
    let (web, tracker) = setup();
    web.set_page("http://h/p.html", "<HTML>v1</HTML>", Timestamp(100))
        .unwrap();
    tracker.register(&UserId::new("u@x"), "http://h/p.html");
    tracker.poll_all();
    // Page changes twice between polls: only the state at poll time is
    // captured (polling is sampling, not a change log).
    web.clock().advance(Duration::hours(1));
    web.touch_page("http://h/p.html", "<HTML>v2</HTML>", web.clock().now())
        .unwrap();
    web.clock().advance(Duration::hours(1));
    web.touch_page("http://h/p.html", "<HTML>v3</HTML>", web.clock().now())
        .unwrap();
    let s = tracker.poll_all();
    assert_eq!(s.changed, 1);
}
