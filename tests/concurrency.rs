//! Concurrency integration: the §4.2 synchronization story under real
//! threads.
//!
//! Simultaneous users hammer one snapshot service: per-URL and per-user
//! locks must keep the archives consistent, the diff cache must dedup
//! HtmlDiff work, and the single-flight lock queue must prevent repeated
//! work for the same page.

use aide_htmldiff::Options as DiffOptions;
use aide_rcs::archive::RevId;
use aide_rcs::repo::MemRepository;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};
use std::sync::Arc;

fn service() -> (Clock, Arc<SnapshotService<MemRepository>>) {
    let clock = Clock::starting_at(Timestamp(1_000_000));
    let s = Arc::new(SnapshotService::new(
        MemRepository::new(),
        clock.clone(),
        256,
        Duration::hours(8),
    ));
    (clock, s)
}

#[test]
fn concurrent_remembers_of_same_content_store_once() {
    let (_, service) = service();
    let mut handles = Vec::new();
    for i in 0..16 {
        let s = service.clone();
        handles.push(std::thread::spawn(move || {
            let user = UserId::new(&format!("user{i}@x"));
            s.remember(&user, "http://hot/page.html", "<HTML>identical body</HTML>")
                .unwrap()
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = service.storage().unwrap();
    assert_eq!(stats.archives, 1);
    assert_eq!(stats.revisions, 1, "16 users, one revision");
    // Every user's control file recorded the revision.
    for i in 0..16 {
        let user = UserId::new(&format!("user{i}@x"));
        assert_eq!(
            service.last_seen(&user, "http://hot/page.html"),
            Some(RevId(1))
        );
    }
}

#[test]
fn concurrent_remembers_of_distinct_urls_do_not_interfere() {
    let (_, service) = service();
    let mut handles = Vec::new();
    for i in 0..8 {
        let s = service.clone();
        handles.push(std::thread::spawn(move || {
            let user = UserId::new("worker@x");
            for k in 0..10 {
                s.remember(
                    &user,
                    &format!("http://host{i}/page{k}.html"),
                    &format!("<HTML>content {i}-{k}</HTML>"),
                )
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = service.storage().unwrap();
    assert_eq!(stats.archives, 80);
    assert_eq!(stats.revisions, 80);
}

#[test]
fn interleaved_checkins_keep_every_version_retrievable() {
    let (clock, service) = service();
    // Two writers alternate distinct bodies on one URL; whatever the
    // interleaving, every stored revision must check out to a body one of
    // them wrote.
    let mut handles = Vec::new();
    for w in 0..2 {
        let s = service.clone();
        let clock = clock.clone();
        handles.push(std::thread::spawn(move || {
            let user = UserId::new(&format!("writer{w}@x"));
            for k in 0..25 {
                clock.advance(Duration::seconds(1));
                let _ = s.remember(
                    &user,
                    "http://contended/page.html",
                    &format!("<HTML>writer {w} iteration {k}</HTML>"),
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let history = service
        .history(&UserId::new("writer0@x"), "http://contended/page.html")
        .unwrap();
    assert!(!history.is_empty());
    for (meta, _) in &history {
        let body = service
            .revision_text("http://contended/page.html", meta.id)
            .unwrap();
        assert!(
            body.starts_with("<HTML>writer "),
            "corrupted body at {}: {body}",
            meta.id
        );
    }
}

#[test]
fn diff_cache_dedups_concurrent_renderings() {
    let (clock, service) = service();
    let user = UserId::new("seed@x");
    service
        .remember(
            &user,
            "http://d/p.html",
            "<HTML><P>first version text.</HTML>",
        )
        .unwrap();
    clock.advance(Duration::hours(1));
    service
        .remember(
            &user,
            "http://d/p.html",
            "<HTML><P>second version text, changed!</HTML>",
        )
        .unwrap();

    let mut handles = Vec::new();
    for _ in 0..12 {
        let s = service.clone();
        handles.push(std::thread::spawn(move || {
            s.diff_versions(
                "http://d/p.html",
                RevId(1),
                RevId(2),
                &DiffOptions::default(),
            )
            .unwrap()
            .html
        }));
    }
    let outputs: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "all renderings identical"
    );
    let stats = service.service_stats();
    assert!(
        stats.htmldiff_invocations <= 3,
        "HtmlDiff ran {} times for 12 concurrent requests",
        stats.htmldiff_invocations
    );
}

/// One thread's slice of the stress workload: `revs` revisions of each
/// of its `urls` URLs, then a diff and a full history walk per URL.
fn stress_thread_workload(
    service: &SnapshotService<MemRepository>,
    thread: usize,
    urls: usize,
    revs: usize,
) {
    let user = UserId::new(&format!("stress{thread}@x"));
    for r in 0..revs {
        for m in 0..urls {
            service
                .remember(
                    &user,
                    &format!("http://stress{thread}/doc{m}.html"),
                    &format!("<HTML><P>thread {thread} doc {m} revision {r} text.</HTML>"),
                )
                .unwrap();
        }
    }
    for m in 0..urls {
        let url = format!("http://stress{thread}/doc{m}.html");
        let diff = service
            .diff_versions(&url, RevId(1), RevId(revs as u32), &DiffOptions::default())
            .unwrap();
        assert!(!diff.html.is_empty());
        let history = service.history(&user, &url).unwrap();
        assert_eq!(history.len(), revs);
        for (meta, _) in &history {
            service.revision_text(&url, meta.id).unwrap();
        }
    }
}

/// Everything observable about the service, in canonical order, for
/// comparing a concurrent run against a serial one.
fn observable_state(
    service: &SnapshotService<MemRepository>,
    threads: usize,
    urls: usize,
) -> Vec<String> {
    let mut state = Vec::new();
    let storage = service.storage().unwrap();
    state.push(format!(
        "archives={} revisions={}",
        storage.archives, storage.revisions
    ));
    let mut by_url = service.storage_by_url().unwrap();
    by_url.sort();
    for (url, bytes) in by_url {
        state.push(format!("size {url} {bytes}"));
    }
    for t in 0..threads {
        let user = UserId::new(&format!("stress{t}@x"));
        for m in 0..urls {
            let url = format!("http://stress{t}/doc{m}.html");
            state.push(format!(
                "last_seen {url} {:?}",
                service.last_seen(&user, &url)
            ));
            for (meta, seen) in service.history(&user, &url).unwrap() {
                state.push(format!(
                    "rev {url} {} seen={seen} body={:?}",
                    meta.id,
                    service.revision_text(&url, meta.id).unwrap()
                ));
            }
        }
    }
    let stats = service.snapshot_stats();
    state.push(format!(
        "stats htmldiff={} remembers={} unchanged={}",
        stats.htmldiff_invocations, stats.remembers, stats.unchanged_remembers
    ));
    state
}

/// The tentpole stress test: N threads × M URLs of remembers, diffs and
/// history walks, run once concurrently and once serially. The run must
/// complete (no deadlock) and every observable — archive sizes, revision
/// bodies, control files, counters — must come out identical to the
/// serial execution, because distinct URLs never share an exclusive lock
/// and same-URL work is serialized by the per-URL lock.
#[test]
fn stress_n_threads_m_urls_matches_serial_execution() {
    const THREADS: usize = 8;
    const URLS: usize = 6;
    const REVS: usize = 4;

    let (_, concurrent) = service();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let s = &concurrent;
            scope.spawn(move || stress_thread_workload(s, t, URLS, REVS));
        }
    });

    let (_, serial) = service();
    for t in 0..THREADS {
        stress_thread_workload(&serial, t, URLS, REVS);
    }

    assert_eq!(
        observable_state(&concurrent, THREADS, URLS),
        observable_state(&serial, THREADS, URLS),
        "concurrent final state diverged from serial execution"
    );
    // Distinct-URL threads must not have contended on any exclusive lock.
    assert_eq!(concurrent.locks().stats().contended, 0);
}

mod revid_monotonicity {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Per-URL sharding preserves RevId monotonicity: however a
        /// random workload of remembers is interleaved across threads,
        /// (a) the revision numbers any one thread observes for a given
        /// URL never decrease, and (b) every URL's final history is the
        /// dense ascending sequence 1.1, 1.2, ... with no gaps or
        /// duplicates — sharding the repository never splits one URL's
        /// revision counter.
        #[test]
        fn per_url_sharding_preserves_revid_monotonicity(
            ops in proptest::collection::vec((0usize..5, 0u32..3), 4..48)
        ) {
            const WORKERS: usize = 4;
            let (_, service) = super::service();
            let mut per_thread: Vec<Vec<(usize, u32)>> = vec![Vec::new(); WORKERS];
            for (i, op) in ops.iter().enumerate() {
                per_thread[i % WORKERS].push(*op);
            }

            let observed: Vec<Vec<(usize, RevId)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = per_thread
                    .iter()
                    .enumerate()
                    .map(|(t, thread_ops)| {
                        let s = &service;
                        scope.spawn(move || {
                            let user = UserId::new(&format!("prop{t}@x"));
                            thread_ops
                                .iter()
                                .map(|&(u, b)| {
                                    let out = s
                                        .remember(
                                            &user,
                                            &format!("http://prop/u{u}.html"),
                                            &format!("<HTML>url {u} body variant {b}</HTML>"),
                                        )
                                        .unwrap();
                                    (u, out.rev)
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            // (a) Thread-local monotonicity.
            for (t, seq) in observed.iter().enumerate() {
                let mut last: HashMap<usize, RevId> = HashMap::new();
                for &(u, rev) in seq {
                    if let Some(&prev) = last.get(&u) {
                        prop_assert!(
                            rev >= prev,
                            "thread {t} saw url {u} go backwards: {prev} then {rev}"
                        );
                    }
                    last.insert(u, rev);
                }
            }

            // (b) Dense ascending histories.
            let reader = UserId::new("prop0@x");
            for u in 0..5usize {
                let url = format!("http://prop/u{u}.html");
                let touched = ops.iter().any(|&(o, _)| o == u);
                match service.history(&reader, &url) {
                    Ok(history) => {
                        prop_assert!(touched, "untouched url {u} has an archive");
                        // history() reports newest first: n, n-1, ..., 1.
                        let n = history.len() as u32;
                        for (k, (meta, _)) in history.iter().enumerate() {
                            prop_assert_eq!(meta.id, RevId(n - k as u32));
                        }
                    }
                    Err(_) => prop_assert!(!touched || ops.is_empty(), "touched url {u} missing"),
                }
            }
        }
    }
}

#[test]
fn lock_table_single_flight_under_threads() {
    use aide_snapshot::locks::LockTable;
    use std::sync::atomic::{AtomicUsize, Ordering};
    let table = LockTable::new();
    let executed = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..10 {
        let t = table.clone();
        let e = executed.clone();
        handles.push(std::thread::spawn(move || {
            t.once("htmldiff:http://x/:1.1:1.2", 0, || {
                e.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                "output".to_string()
            })
        }));
    }
    let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(executed.load(Ordering::SeqCst), 1);
    assert!(results.iter().all(|r| r == "output"));
}
