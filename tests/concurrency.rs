//! Concurrency integration: the §4.2 synchronization story under real
//! threads.
//!
//! Simultaneous users hammer one snapshot service: per-URL and per-user
//! locks must keep the archives consistent, the diff cache must dedup
//! HtmlDiff work, and the single-flight lock queue must prevent repeated
//! work for the same page.

use aide_htmldiff::Options as DiffOptions;
use aide_rcs::archive::RevId;
use aide_rcs::repo::MemRepository;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};
use std::sync::Arc;

fn service() -> (Clock, Arc<SnapshotService<MemRepository>>) {
    let clock = Clock::starting_at(Timestamp(1_000_000));
    let s = Arc::new(SnapshotService::new(
        MemRepository::new(),
        clock.clone(),
        256,
        Duration::hours(8),
    ));
    (clock, s)
}

#[test]
fn concurrent_remembers_of_same_content_store_once() {
    let (_, service) = service();
    let mut handles = Vec::new();
    for i in 0..16 {
        let s = service.clone();
        handles.push(std::thread::spawn(move || {
            let user = UserId::new(&format!("user{i}@x"));
            s.remember(&user, "http://hot/page.html", "<HTML>identical body</HTML>")
                .unwrap()
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = service.storage().unwrap();
    assert_eq!(stats.archives, 1);
    assert_eq!(stats.revisions, 1, "16 users, one revision");
    // Every user's control file recorded the revision.
    for i in 0..16 {
        let user = UserId::new(&format!("user{i}@x"));
        assert_eq!(service.last_seen(&user, "http://hot/page.html"), Some(RevId(1)));
    }
}

#[test]
fn concurrent_remembers_of_distinct_urls_do_not_interfere() {
    let (_, service) = service();
    let mut handles = Vec::new();
    for i in 0..8 {
        let s = service.clone();
        handles.push(std::thread::spawn(move || {
            let user = UserId::new("worker@x");
            for k in 0..10 {
                s.remember(
                    &user,
                    &format!("http://host{i}/page{k}.html"),
                    &format!("<HTML>content {i}-{k}</HTML>"),
                )
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = service.storage().unwrap();
    assert_eq!(stats.archives, 80);
    assert_eq!(stats.revisions, 80);
}

#[test]
fn interleaved_checkins_keep_every_version_retrievable() {
    let (clock, service) = service();
    // Two writers alternate distinct bodies on one URL; whatever the
    // interleaving, every stored revision must check out to a body one of
    // them wrote.
    let mut handles = Vec::new();
    for w in 0..2 {
        let s = service.clone();
        let clock = clock.clone();
        handles.push(std::thread::spawn(move || {
            let user = UserId::new(&format!("writer{w}@x"));
            for k in 0..25 {
                clock.advance(Duration::seconds(1));
                let _ = s.remember(
                    &user,
                    "http://contended/page.html",
                    &format!("<HTML>writer {w} iteration {k}</HTML>"),
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let history = service
        .history(&UserId::new("writer0@x"), "http://contended/page.html")
        .unwrap();
    assert!(!history.is_empty());
    for (meta, _) in &history {
        let body = service.revision_text("http://contended/page.html", meta.id).unwrap();
        assert!(
            body.starts_with("<HTML>writer "),
            "corrupted body at {}: {body}",
            meta.id
        );
    }
}

#[test]
fn diff_cache_dedups_concurrent_renderings() {
    let (clock, service) = service();
    let user = UserId::new("seed@x");
    service.remember(&user, "http://d/p.html", "<HTML><P>first version text.</HTML>").unwrap();
    clock.advance(Duration::hours(1));
    service
        .remember(&user, "http://d/p.html", "<HTML><P>second version text, changed!</HTML>")
        .unwrap();

    let mut handles = Vec::new();
    for _ in 0..12 {
        let s = service.clone();
        handles.push(std::thread::spawn(move || {
            s.diff_versions("http://d/p.html", RevId(1), RevId(2), &DiffOptions::default())
                .unwrap()
                .html
        }));
    }
    let outputs: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(outputs.windows(2).all(|w| w[0] == w[1]), "all renderings identical");
    let stats = service.service_stats();
    assert!(
        stats.htmldiff_invocations <= 3,
        "HtmlDiff ran {} times for 12 concurrent requests",
        stats.htmldiff_invocations
    );
}

#[test]
fn lock_table_single_flight_under_threads() {
    use aide_snapshot::locks::LockTable;
    use std::sync::atomic::{AtomicUsize, Ordering};
    let table = LockTable::new();
    let executed = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..10 {
        let t = table.clone();
        let e = executed.clone();
        handles.push(std::thread::spawn(move || {
            t.once("htmldiff:http://x/:1.1:1.2", 0, || {
                e.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                "output".to_string()
            })
        }));
    }
    let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(executed.load(Ordering::SeqCst), 1);
    assert!(results.iter().all(|r| r == "output"));
}
