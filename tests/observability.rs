//! Observability integration suite: the `aide_obs` metrics layer
//! against the full tracker/snapshot/diff pipeline.
//!
//! Invariants enforced here (the ISSUE 4 acceptance criteria):
//! - two identically-seeded runs record *identical* metrics snapshots —
//!   every counter, gauge, histogram bucket, and span, byte-for-byte in
//!   the JSON export;
//! - with no subscriber installed, rendered reports are byte-identical
//!   to an uninstrumented build (no "Observability" section, nothing
//!   recorded anywhere);
//! - installing a subscriber adds the report footer; uninstalling
//!   restores the original bytes exactly.
//!
//! The global subscriber is process-wide state, so every test that
//! installs one serializes on `OBS_GATE`.
//!
//! Knob: `AIDE_OBS_JSON` — path to write the storm run's JSON snapshot,
//! which `ci.sh` exploits by running this suite twice and diffing the
//! dumps.

use aide::AideEngine;
use aide_obs::{MetricsRegistry, MetricsSnapshot};
use aide_simweb::browser::Bookmark;
use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
use aide_simweb::http::Status;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::config::ThresholdConfig;
use aide_w3newer::report::{render_report, ReportOptions};
use aide_w3newer::retry::RetryPolicy;
use aide_w3newer::W3Newer;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes tests that install the process-wide subscriber.
static OBS_GATE: Mutex<()> = Mutex::new(());

fn obs_gate() -> MutexGuard<'static, ()> {
    OBS_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// The fault-tolerance suite's quiet world: 5 hosts x 4 pages, all old
/// and visited yesterday, so every "changed" under faults is fabricated.
fn quiet_world() -> (Clock, Web, Vec<Bookmark>, HashMap<String, Timestamp>) {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 9, 0, 0));
    let web = Web::new(clock.clone());
    let mut hotlist = Vec::new();
    let mut history = HashMap::new();
    let visited = clock.now() - Duration::days(1);
    for h in 0..5 {
        for p in 0..4 {
            let url = format!("http://host{h}.example.com/page{p}.html");
            web.set_page(
                &url,
                &format!("<HTML><P>stable body {h}/{p}</HTML>"),
                clock.now() - Duration::days(10),
            )
            .unwrap();
            history.insert(url.clone(), visited);
            hotlist.push(Bookmark {
                title: format!("Page {h}/{p}"),
                url,
            });
        }
    }
    (clock, web, hotlist, history)
}

fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .everywhere(FaultEpisode::rate(0.15, FaultKind::Timeout))
        .for_host(
            "host2.example.com",
            FaultEpisode::rate(
                0.5,
                FaultKind::Transient {
                    status: Status::ServiceUnavailable,
                    retry_after_secs: Some(20),
                },
            ),
        )
}

fn robust_tracker() -> W3Newer {
    let mut w = W3Newer::new(ThresholdConfig::default());
    w.retry = RetryPolicy::standard(7);
    w.flags.staleness = Duration::ZERO;
    w.flags.abort_after_consecutive_errors = None;
    w
}

/// One instrumented storm run: fresh world, fresh registry, serial
/// tracker pass, aggregates published, subscriber removed again.
fn instrumented_storm(seed: u64) -> MetricsSnapshot {
    let registry = Arc::new(MetricsRegistry::new());
    aide_obs::install(registry.clone());
    let (_clock, web, hotlist, history) = quiet_world();
    web.install_fault_plan(storm_plan(seed));
    let mut w = robust_tracker();
    let report = w.run_serial(&hotlist, &move |u| history.get(u).copied(), &web, None);
    report.net.publish_obs();
    web.stats().publish_obs();
    aide_obs::uninstall();
    registry.snapshot()
}

#[test]
fn same_seed_storms_record_identical_metrics() {
    let snap_a;
    let snap_b;
    {
        let _gate = obs_gate();
        snap_a = instrumented_storm(42);
        snap_b = instrumented_storm(42);
    }
    assert_eq!(snap_a, snap_b, "same seed must replay the same metrics");
    assert_eq!(snap_a.render_json(), snap_b.render_json());
    assert_eq!(snap_a.render_text(), snap_b.render_text());

    // The run actually measured something at every layer it touched.
    assert!(snap_a.counters["simweb.fault.timeout"] > 0);
    assert!(snap_a.gauges["simweb.requests"] > 0);
    assert!(snap_a.counters["w3newer.url.unchanged"] > 0);
    assert!(
        snap_a.histograms.contains_key("w3newer.retry.backoff_secs"),
        "the storm forced backoff sleeps"
    );
    assert!(snap_a.gauges["w3newer.retry.attempts"] > 0);
    assert!(snap_a
        .spans
        .iter()
        .any(|s| s.name == "w3newer.run" && s.end_secs >= s.start_secs));

    if let Ok(path) = std::env::var("AIDE_OBS_JSON") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, snap_a.render_json()).expect("write AIDE_OBS_JSON dump");
    }
}

#[test]
fn different_seeds_record_different_metrics() {
    let _gate = obs_gate();
    let a = instrumented_storm(42);
    let b = instrumented_storm(42 ^ 0xDEAD_BEEF);
    assert_ne!(a, b, "a different fault seed replays different metrics");
}

/// One instrumented end-to-end engine pass: track, remember two
/// revisions, diff them, read the history, view the old text. Exercises
/// the snapshot, rcs, htmldiff, and diffcore instrumentation.
fn instrumented_pipeline() -> MetricsSnapshot {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 9, 0, 0));
    let web = Web::new(clock.clone());
    let url = "http://host0.example.com/page.html";
    web.set_page(
        url,
        "<HTML><P>First sentence. Second sentence.</HTML>",
        clock.now() - Duration::days(3),
    )
    .unwrap();
    let engine = AideEngine::new(web);
    let registry = engine.enable_observability();
    engine.register_user("fred", ThresholdConfig::default());
    engine.browser("fred").unwrap().add_bookmark("Page", url);
    engine.run_tracker("fred").unwrap();
    let v1 = engine.remember("fred", url).unwrap().rev;
    clock.advance(Duration::days(1));
    engine
        .web()
        .set_page(
            url,
            "<HTML><P>First sentence. A different second sentence.</HTML>",
            clock.now(),
        )
        .unwrap();
    let v2 = engine.remember("fred", url).unwrap().rev;
    let diff = engine
        .diff_versions(url, v1, v2, &Default::default())
        .unwrap();
    assert!(!diff.from_cache);
    // A second identical diff must come from the cache.
    let again = engine
        .diff_versions(url, v1, v2, &Default::default())
        .unwrap();
    assert!(again.from_cache);
    engine.history("fred", url).unwrap();
    engine.view(url, v1).unwrap();
    engine.publish_obs();
    aide_obs::uninstall();
    registry.snapshot()
}

#[test]
fn pipeline_metrics_cover_every_layer_and_replay_identically() {
    let snap_a;
    let snap_b;
    {
        let _gate = obs_gate();
        snap_a = instrumented_pipeline();
        snap_b = instrumented_pipeline();
    }
    assert_eq!(snap_a, snap_b, "the pipeline is deterministic end to end");

    assert_eq!(snap_a.counters["snapshot.remember"], 2);
    assert_eq!(snap_a.counters["snapshot.diff"], 2);
    assert_eq!(snap_a.counters["snapshot.diff.cache_miss"], 1);
    assert_eq!(snap_a.counters["snapshot.diff.cache_hit.primary"], 1);
    assert_eq!(snap_a.counters["snapshot.history"], 1);
    assert_eq!(snap_a.counters["snapshot.view"], 1);
    assert!(snap_a.counters["htmldiff.tokenize"] >= 2);
    assert!(snap_a.counters["htmldiff.compare"] >= 1);
    assert!(snap_a
        .histograms
        .contains_key("htmldiff.anchor.coverage_permille"));
    assert!(snap_a.histograms.contains_key("snapshot.diff.delta_chain"));
    assert!(snap_a.histograms.contains_key("rcs.checkout.chain"));
    assert!(snap_a.spans.iter().any(|s| s.name == "aide.run_tracker"));
    assert_eq!(snap_a.gauges["snapshot.remembers"], 2);
    assert_eq!(snap_a.gauges["snapshot.htmldiff_invocations"], 1);
}

#[test]
fn reports_are_byte_identical_without_a_subscriber() {
    let _gate = obs_gate();
    let render = || {
        let (_clock, web, hotlist, history) = quiet_world();
        let mut w = W3Newer::new(ThresholdConfig::default());
        let report = w.run_serial(&hotlist, &move |u| history.get(u).copied(), &web, None);
        render_report(&report, &ReportOptions::default())
    };

    let plain = render();
    assert!(!plain.contains("Observability"), "no subscriber, no footer");

    let registry = Arc::new(MetricsRegistry::new());
    aide_obs::install(registry);
    let instrumented = render();
    aide_obs::uninstall();
    assert!(instrumented.contains("<H2>Observability</H2>"));
    assert!(instrumented.contains("counter w3newer.url.unchanged"));

    let restored = render();
    assert_eq!(
        plain, restored,
        "uninstalling must restore the exact pre-instrumentation bytes"
    );
}
