//! End-to-end integration: a six-month simulated AIDE deployment.
//!
//! Builds the Table 1 world, registers users, and replays daily w3newer
//! runs, Remember/Diff cycles and page evolution across a simulated
//! half-year — the span §7 reports on — checking the cross-crate
//! invariants along the way.

use aide::engine::AideEngine;
use aide_htmldiff::Options as DiffOptions;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::checker::UrlStatus;
use aide_w3newer::config::ThresholdConfig;
use aide_workloads::evolve::tick_all;
use aide_workloads::sites::table1_scenario;

fn start_clock() -> Clock {
    Clock::starting_at(Timestamp::from_ymd_hms(1995, 9, 1, 8, 0, 0))
}

#[test]
fn six_month_deployment_runs_clean() {
    let clock = start_clock();
    let web = Web::new(clock.clone());
    let mut scenario = table1_scenario(&web, 1234);
    let engine = AideEngine::new(web.clone()).with_proxy(Duration::hours(6));
    let browser = engine.register_user("fred@research.att.com", ThresholdConfig::table1());
    for mark in &scenario.hotlist {
        browser.add_bookmark(&mark.title, &mark.url);
    }
    // Remember everything once at the start.
    for mark in &scenario.hotlist {
        if mark.url.starts_with("http:") {
            engine.remember("fred@research.att.com", &mark.url).unwrap();
        }
    }

    let mut total_changed_reports = 0usize;
    let mut diffs_rendered = 0usize;
    for day in 0..180u64 {
        clock.advance(Duration::days(1));
        tick_all(&mut scenario.pages, &web);
        let report = engine.run_tracker("fred@research.att.com").unwrap();
        assert!(!report.aborted, "day {day}: run aborted");
        assert_eq!(report.entries.len(), scenario.hotlist.len());
        for entry in &report.entries {
            if entry.status.is_changed() && entry.url.starts_with("http:") {
                total_changed_reports += 1;
                // Exercise the Diff path on a sample of changes.
                if day % 13 == 0 {
                    let out = engine
                        .diff("fred@research.att.com", &entry.url, &DiffOptions::default())
                        .unwrap();
                    assert!(out.to >= out.from);
                    diffs_rendered += 1;
                }
                // Visiting the page clears the changed flag next run.
                if day % 3 == 0 {
                    browser.visit(&entry.url).unwrap();
                }
            }
        }
    }
    assert!(
        total_changed_reports > 50,
        "got {total_changed_reports} change reports"
    );
    assert!(diffs_rendered > 3, "got {diffs_rendered} diffs");

    // The archive holds history for the remembered URLs.
    let stats = engine.snapshot().storage().unwrap();
    assert!(stats.archives >= 6, "archives: {}", stats.archives);
    assert!(stats.revisions > stats.archives, "revisions accrued");
}

#[test]
fn dilbert_never_checked_but_archive_still_grows_if_remembered() {
    let clock = start_clock();
    let web = Web::new(clock.clone());
    let mut scenario = table1_scenario(&web, 99);
    let engine = AideEngine::new(web.clone());
    let browser = engine.register_user("u@x", ThresholdConfig::table1());
    for mark in &scenario.hotlist {
        browser.add_bookmark(&mark.title, &mark.url);
    }
    let dilbert = "http://www.unitedmedia.com/comics/dilbert/";
    for _ in 0..14 {
        clock.advance(Duration::days(1));
        tick_all(&mut scenario.pages, &web);
        let report = engine.run_tracker("u@x").unwrap();
        let entry = report.entries.iter().find(|e| e.url == dilbert).unwrap();
        assert!(
            matches!(entry.status, UrlStatus::NotChecked { .. }),
            "dilbert must never be polled: {:?}",
            entry.status
        );
        // But an explicit Remember works and captures each day's strip.
        engine.remember("u@x", dilbert).unwrap();
    }
    let h = engine.history("u@x", dilbert).unwrap();
    assert!(
        h.len() >= 13,
        "daily full replacements archived: {}",
        h.len()
    );
}

#[test]
fn two_users_share_archives_but_see_personal_diffs() {
    let clock = start_clock();
    let web = Web::new(clock.clone());
    web.set_page(
        "http://shared/page.html",
        "<HTML><P>day zero content.</HTML>",
        clock.now(),
    )
    .unwrap();
    let engine = AideEngine::new(web.clone());
    engine.register_user("alice@x", ThresholdConfig::default());
    engine.register_user("bob@x", ThresholdConfig::default());

    engine
        .remember("alice@x", "http://shared/page.html")
        .unwrap();

    clock.advance(Duration::days(1));
    web.touch_page(
        "http://shared/page.html",
        "<HTML><P>day zero content. day one addition!</HTML>",
        clock.now(),
    )
    .unwrap();
    engine.remember("bob@x", "http://shared/page.html").unwrap();

    clock.advance(Duration::days(1));
    web.touch_page(
        "http://shared/page.html",
        "<HTML><P>day zero content. day one addition! day two more?</HTML>",
        clock.now(),
    )
    .unwrap();

    // Alice diffs from rev 1 (sees both additions); Bob from rev 2.
    let a = engine
        .diff(
            "alice@x",
            "http://shared/page.html",
            &DiffOptions::default(),
        )
        .unwrap();
    assert!(a.html.contains("day one addition!"));
    assert!(a.html.contains("day two more?"));
    let b = engine
        .diff("bob@x", "http://shared/page.html", &DiffOptions::default())
        .unwrap();
    assert!(!b.html.contains("<STRONG><I>day one addition!</I></STRONG>"));
    assert!(b.html.contains("day two more?"));

    // One archive, three revisions, despite two users.
    let stats = engine.snapshot().storage().unwrap();
    assert_eq!(stats.archives, 1);
    assert_eq!(stats.revisions, 3);
}

#[test]
fn error_conditions_survive_a_full_run() {
    let clock = start_clock();
    let web = Web::new(clock.clone());
    web.set_page(
        "http://good/a.html",
        "<HTML>fine</HTML>",
        clock.now() - Duration::days(1),
    )
    .unwrap();
    web.set_resource(
        "http://good/moved.html",
        aide_simweb::resource::Resource::Moved {
            location: "http://good/a.html".into(),
        },
    )
    .unwrap();
    web.set_resource(
        "http://good/gone.html",
        aide_simweb::resource::Resource::Gone,
    )
    .unwrap();
    web.set_robots_txt("fortress", "User-agent: *\nDisallow: /\n");
    web.set_page("http://fortress/secret.html", "<HTML>x</HTML>", clock.now())
        .unwrap();

    let engine = AideEngine::new(web.clone());
    let browser = engine.register_user("u@x", ThresholdConfig::default());
    browser.add_bookmark("ok", "http://good/a.html");
    browser.add_bookmark("moved", "http://good/moved.html");
    browser.add_bookmark("gone", "http://good/gone.html");
    browser.add_bookmark("unknown", "http://no-such-host/x");
    browser.add_bookmark("excluded", "http://fortress/secret.html");

    let report = engine.run_tracker("u@x").unwrap();
    let by_url = |u: &str| {
        report
            .entries
            .iter()
            .find(|e| e.url == u)
            .unwrap_or_else(|| panic!("missing {u}"))
    };
    assert!(by_url("http://good/a.html").status.is_changed());
    assert!(
        matches!(&by_url("http://good/moved.html").status, UrlStatus::Error { message } if message.contains("moved"))
    );
    assert!(
        matches!(&by_url("http://good/gone.html").status, UrlStatus::Error { message } if message.contains("410"))
    );
    assert!(matches!(
        &by_url("http://no-such-host/x").status,
        UrlStatus::Error { .. }
    ));
    assert_eq!(
        by_url("http://fortress/secret.html").status,
        UrlStatus::RobotExcluded
    );

    // The rendered report presents all of them.
    let html = engine.tracker_report_html("u@x").unwrap();
    assert!(html.contains("Problems"));
    assert!(html.contains("robot exclusion"));
}
