//! Storage-shape integration test: the §7 disk-usage claims.
//!
//! The paper reports "over 500 URLs archived... under 8 Mbytes of disk
//! storage (an average of 14.3 Kbytes/URL). Three files account for 2.7
//! Mbytes of that total, and each file is a URL that changes every 1–3
//! days and is being automatically archived upon each change." The exact
//! bytes depend on 1995's pages; the *shape* — modest per-URL average,
//! heavy concentration in a few churners, delta storage far below full
//! copies — must reproduce.
//!
//! The shape suite runs against **both** repository backends — the
//! in-memory reference and the persistent `aide-store` engine (over an
//! in-memory VFS, with thresholds low enough that checkpoints and
//! compactions fire mid-workload) — and the two must agree byte for
//! byte, because `StorageStats` accounts the same `,v` serialization
//! either way.

use aide_rcs::repo::{MemRepository, Repository, StorageStats};
use aide_simweb::net::Web;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_store::{DiskRepository, StoreOptions};
use aide_util::time::{Clock, Duration, Timestamp};
use aide_util::vfs::{MemVfs, Vfs};
use aide_workloads::evolve::tick_all;
use aide_workloads::sites::{population, PopulationConfig};
use std::sync::Arc;

/// A disk repository over a fresh in-memory VFS, tuned so the §7
/// workload actually exercises checkpointing and compaction.
fn disk_repo() -> DiskRepository {
    let opts = StoreOptions {
        checkpoint_wal_bytes: 256 << 10,
        compact_min_dead_bytes: 128 << 10,
        max_segments: 4,
        ..StoreOptions::default()
    };
    DiskRepository::open(MemVfs::shared() as Arc<dyn Vfs>, "aide", opts).unwrap()
}

/// Runs the scaled-down §7 archival workload (120 URLs, 3 churners,
/// 90 days at weekly polling) against `repo`, asserts the three shape
/// claims, and returns the final stats for cross-backend comparison.
fn section7_shape_on<R: Repository>(repo: R) -> StorageStats {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 6, 1, 0, 0, 0));
    let web = Web::new(clock.clone());
    let cfg = PopulationConfig {
        urls: 120,
        hosts: 12,
        typical_bytes: 5_000,
        churners: 3,
        churner_bytes: 40_000,
    };
    let mut pages = population(&web, 2025, &cfg);
    let service = SnapshotService::new(repo, clock.clone(), 16, Duration::hours(1));
    let daemon = UserId::new("archive@daemon");

    // 90 days of automatic archival on change (weekly polling cadence).
    let mut full_copy_bytes = 0usize;
    for day in 0..90u64 {
        clock.advance(Duration::days(1));
        tick_all(&mut pages, &web);
        if day % 7 == 0 {
            for p in &pages {
                let body = web
                    .request(&aide_simweb::http::Request::get(&p.url))
                    .unwrap()
                    .body;
                let out = service.remember(&daemon, &p.url, &body).unwrap();
                if out.stored_new_revision {
                    full_copy_bytes += body.len();
                }
            }
        }
    }

    let stats = service.storage().unwrap();
    assert_eq!(stats.archives, 120);
    assert!(stats.revisions > 200, "revisions {}", stats.revisions);

    // Shape 1: delta storage is well below storing every revision fully.
    assert!(
        stats.bytes < full_copy_bytes,
        "delta {} vs full copies {}",
        stats.bytes,
        full_copy_bytes
    );

    // Shape 2: a modest per-URL average (paper: 14.3 KB/URL).
    let avg = stats.bytes_per_archive();
    assert!(avg < 40_000.0, "avg {avg} bytes/URL");
    assert!(avg > 1_000.0, "avg {avg} bytes/URL suspiciously small");

    // Shape 3: the churners dominate — the top 3 URLs hold a grossly
    // disproportionate share (paper: 3 of 500+ URLs held ~1/3 of bytes).
    let sizes = service.storage_by_url().unwrap();
    let top3: usize = sizes.iter().take(3).map(|(_, b)| b).sum();
    let share = top3 as f64 / stats.bytes as f64;
    assert!(
        share > 0.25,
        "top-3 share {share:.2} (top: {:?})",
        &sizes[..3.min(sizes.len())]
    );
    // And the top-3 are indeed the configured churners.
    for (url, _) in sizes.iter().take(3) {
        let idx: usize = url
            .rsplit("page")
            .next()
            .and_then(|s| s.strip_suffix(".html"))
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(idx < 3, "top-3 by size should be the churners, got {url}");
    }
    stats
}

#[test]
fn archive_storage_has_the_section7_shape() {
    let mem = section7_shape_on(MemRepository::new());
    let disk = section7_shape_on(disk_repo());
    // Same seeded workload, same accounting rules: the persistent
    // backend must agree with the in-memory reference to the byte.
    assert_eq!(mem, disk, "backends disagree on §7 accounting");
}

#[test]
fn unchanged_pages_cost_one_revision_forever() {
    for repo in [
        Box::new(MemRepository::new()) as Box<dyn Repository>,
        Box::new(disk_repo()) as Box<dyn Repository>,
    ] {
        let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 6, 1, 0, 0, 0));
        let web = Web::new(clock.clone());
        web.set_page(
            "http://quiet/page.html",
            "<HTML>never changes</HTML>",
            clock.now(),
        )
        .unwrap();
        let service = SnapshotService::new(repo, clock.clone(), 16, Duration::hours(1));
        let daemon = UserId::new("archive@daemon");
        let mut size_after_first = 0;
        for day in 0..30 {
            clock.advance(Duration::days(1));
            let body = web
                .request(&aide_simweb::http::Request::get("http://quiet/page.html"))
                .unwrap()
                .body;
            service
                .remember(&daemon, "http://quiet/page.html", &body)
                .unwrap();
            if day == 0 {
                size_after_first = service.storage().unwrap().bytes;
            }
        }
        let stats = service.storage().unwrap();
        assert_eq!(stats.revisions, 1, "no-op check-ins stored nothing");
        assert_eq!(stats.bytes, size_after_first);
    }
}

#[test]
fn disk_repository_roundtrips_a_small_deployment() {
    let dir = std::env::temp_dir().join(format!("aide-storage-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 6, 1, 0, 0, 0));
    let web = Web::new(clock.clone());
    let cfg = PopulationConfig {
        urls: 10,
        hosts: 2,
        typical_bytes: 3_000,
        churners: 1,
        churner_bytes: 9_000,
    };
    let mut pages = population(&web, 77, &cfg);
    // Real filesystem this time: the whole WAL/segment/recovery stack
    // runs against actual files under a temp directory.
    let service = SnapshotService::new(
        DiskRepository::open_dir(&dir).unwrap(),
        clock.clone(),
        16,
        Duration::hours(1),
    );
    let daemon = UserId::new("archive@daemon");
    for _ in 0..6 {
        clock.advance(Duration::days(5));
        tick_all(&mut pages, &web);
        for p in &pages {
            let body = web
                .request(&aide_simweb::http::Request::get(&p.url))
                .unwrap()
                .body;
            service.remember(&daemon, &p.url, &body).unwrap();
        }
    }
    drop(service);
    // A fresh repository over the same directory recovers everything.
    let reopened = DiskRepository::open_dir(&dir).unwrap();
    let stats = reopened.stats().unwrap();
    assert_eq!(stats.archives, 10);
    assert!(stats.revisions >= 10);
    for key in reopened.keys().unwrap() {
        let archive = reopened.load(&key).unwrap().unwrap();
        // Every revision checks out.
        for meta in archive.metas() {
            archive.checkout(meta.id).unwrap();
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
