//! OBSERVABILITY.md catalog ⇄ code consistency.
//!
//! The metric catalog is operator documentation, and documentation
//! drifts: a renamed counter leaves a stale table row, a new counter
//! ships undocumented. This suite greps both directions:
//!
//! - every name in the catalog tables (after `{a,b,c}` expansion) must
//!   still exist in some `crates/*/src` source — as a full string
//!   literal, or (for names assembled at runtime, like
//!   `capacity.latency_us.{kind}`) as its dotted prefix plus its final
//!   segment;
//! - every *literal* metric name recorded through the `aide_obs`
//!   emission APIs must appear in the catalog.
//!
//! Names are compared as plain strings, so this needs no registry at
//! runtime and cannot be fooled by code that never executes in tests.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Every `.rs` file under `crates/*/src`, with contents.
fn rs_sources() -> Vec<(PathBuf, String)> {
    fn walk(dir: &Path, out: &mut Vec<(PathBuf, String)>) {
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(text) = fs::read_to_string(&path) {
                    out.push((path, text));
                }
            }
        }
    }
    let mut out = Vec::new();
    let crates = repo_root().join("crates");
    for entry in fs::read_dir(&crates).expect("crates/ must exist").flatten() {
        walk(&entry.path().join("src"), &mut out);
    }
    assert!(
        out.len() > 50,
        "source walk looks broken: {} files",
        out.len()
    );
    out
}

/// Expands one level of `{a,b,c}` alternation (recursively, so nested
/// or repeated groups would also work).
fn expand(name: &str) -> Vec<String> {
    let (Some(open), Some(close)) = (name.find('{'), name.find('}')) else {
        return vec![name.to_string()];
    };
    let (prefix, suffix) = (&name[..open], &name[close + 1..]);
    name[open + 1..close]
        .split(',')
        .flat_map(|alt| expand(&format!("{prefix}{alt}{suffix}")))
        .collect()
}

fn is_name_char(ch: char) -> bool {
    ch.is_ascii_lowercase() || ch.is_ascii_digit() || matches!(ch, '.' | '_' | '{' | '}' | ',')
}

/// Metric names from OBSERVABILITY.md's catalog tables: the backticked
/// spans of each row's first column, brace-expanded.
fn doc_catalog() -> BTreeSet<String> {
    let md = fs::read_to_string(repo_root().join("OBSERVABILITY.md"))
        .expect("OBSERVABILITY.md must exist");
    let mut names = BTreeSet::new();
    for line in md.lines() {
        let line = line.trim();
        // Catalog rows look like `| `name` | unit | source |`.
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some(first_cell) = rest.split('|').next() else {
            continue;
        };
        // The cell may hold several names (`a` / `b`); take every
        // backtick span. The stripped leading tick is restored so the
        // odd split positions are exactly the quoted spans.
        for span in format!("`{first_cell}").split('`').skip(1).step_by(2) {
            if span.contains('.') && !span.is_empty() && span.chars().all(is_name_char) {
                for n in expand(span) {
                    names.insert(n);
                }
            }
        }
    }
    assert!(
        names.len() > 80,
        "catalog parse looks broken: only {} names",
        names.len()
    );
    names
}

/// The metric namespaces the catalog documents. Literals outside these
/// (test fixtures, examples with toy names) are ignored.
const NAMESPACES: &[&str] = &[
    "simweb.",
    "w3newer.",
    "snapshot.",
    "htmldiff.",
    "diff.",
    "rcs.",
    "store.",
    "serve.",
    "sched.",
    "capacity.",
];

fn in_namespace(name: &str) -> bool {
    NAMESPACES.iter().any(|p| name.starts_with(p))
}

#[test]
fn every_documented_metric_exists_in_code() {
    let sources = rs_sources();
    let found = |needle: &str| sources.iter().any(|(_, text)| text.contains(needle));
    let mut stale = Vec::new();
    for name in doc_catalog() {
        if found(&name) {
            continue;
        }
        // Runtime-assembled names: the dotted prefix and the final
        // segment must both still exist somewhere.
        let Some((prefix, last)) = name.rsplit_once('.') else {
            stale.push(name);
            continue;
        };
        if !(found(prefix) && found(last)) {
            stale.push(name);
        }
    }
    assert!(
        stale.is_empty(),
        "OBSERVABILITY.md documents metrics no source file mentions \
         (renamed or removed?): {stale:?}"
    );
}

#[test]
fn every_emitted_metric_literal_is_documented() {
    let catalog = doc_catalog();
    // Emission APIs whose first argument is the metric name; covers
    // both the free functions (`aide_obs::counter(...)`) and the
    // registry methods (`reg.counter(...)`).
    let calls = ["counter(\"", "gauge(\"", "observe(\"", "observe_with(\""];
    let mut undocumented = Vec::new();
    for (path, text) in rs_sources() {
        // The obs crate's own sources use placeholder names in API
        // docs and tests; every real site lives in the other crates.
        if path.components().any(|c| c.as_os_str() == "obs") {
            continue;
        }
        for call in calls {
            for (at, _) in text.match_indices(call) {
                let lit = &text[at + call.len()..];
                let Some(end) = lit.find('"') else { continue };
                let name = &lit[..end];
                if !name.contains('.') || !name.chars().all(is_name_char) {
                    continue;
                }
                if in_namespace(name) && !catalog.contains(name) {
                    undocumented.push(format!("{name} ({})", path.display()));
                }
            }
        }
    }
    undocumented.sort();
    undocumented.dedup();
    assert!(
        undocumented.is_empty(),
        "metric names recorded in code but missing from the \
         OBSERVABILITY.md catalog: {undocumented:?}"
    );
}
