//! Fault-tolerance integration suite: scripted fault injection on the
//! simulated Web versus the tracker's retry/backoff/circuit-breaker
//! robustness layer.
//!
//! Everything here is deterministic: fault decisions are pure functions
//! of `(seed, host, path, draw-index, episode-index)` and the virtual
//! clock, and backoff jitter is a pure function of `(seed, url,
//! attempt)`. The same seed therefore produces byte-identical HTML
//! reports, which `ci.sh` exploits by running this suite twice and
//! diffing the dumped reports.
//!
//! Knobs (both optional):
//! - `AIDE_FAULT_SEED`: fault-plan seed (default 42);
//! - `AIDE_FAULT_DUMP`: path to write the rendered determinism report.

use aide_simweb::browser::Bookmark;
use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
use aide_simweb::http::Status;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::breaker::{BreakerConfig, CircuitBreaker};
use aide_w3newer::checker::UrlStatus;
use aide_w3newer::config::ThresholdConfig;
use aide_w3newer::report::{render_report, ReportOptions};
use aide_w3newer::retry::RetryPolicy;
use aide_w3newer::W3Newer;
use std::collections::HashMap;
use std::sync::Arc;

fn fault_seed() -> u64 {
    std::env::var("AIDE_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A mid-sized world: 5 hosts x 4 pages, all modified well in the past
/// and visited yesterday, so a fault-free run reports every page
/// unchanged. Any "changed" entry under fault injection is a fabrication.
fn quiet_world() -> (Clock, Web, Vec<Bookmark>, HashMap<String, Timestamp>) {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 9, 0, 0));
    let web = Web::new(clock.clone());
    let mut hotlist = Vec::new();
    let mut history = HashMap::new();
    let visited = clock.now() - Duration::days(1);
    for h in 0..5 {
        for p in 0..4 {
            let url = format!("http://host{h}.example.com/page{p}.html");
            web.set_page(
                &url,
                &format!("<HTML><P>stable body {h}/{p}</HTML>"),
                clock.now() - Duration::days(10),
            )
            .unwrap();
            history.insert(url.clone(), visited);
            hotlist.push(Bookmark {
                title: format!("Page {h}/{p}"),
                url,
            });
        }
    }
    (clock, web, hotlist, history)
}

/// The >=10% transient-fault storm from the acceptance criteria: global
/// timeouts plus one host serving 503s with Retry-After.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .everywhere(FaultEpisode::rate(0.15, FaultKind::Timeout))
        .for_host(
            "host2.example.com",
            FaultEpisode::rate(
                0.5,
                FaultKind::Transient {
                    status: Status::ServiceUnavailable,
                    retry_after_secs: Some(20),
                },
            ),
        )
}

fn robust_tracker() -> W3Newer {
    let mut w = W3Newer::new(ThresholdConfig::default());
    w.retry = RetryPolicy::standard(7);
    w.flags.staleness = Duration::ZERO;
    w.flags.abort_after_consecutive_errors = None;
    w
}

fn run_storm(seed: u64) -> String {
    let (_clock, web, hotlist, history) = quiet_world();
    web.install_fault_plan(storm_plan(seed));
    let mut w = robust_tracker();
    let report = w.run_serial(&hotlist, &move |u| history.get(u).copied(), &web, None);
    render_report(&report, &ReportOptions::default())
}

#[test]
fn same_seed_yields_byte_identical_reports() {
    let seed = fault_seed();
    let a = run_storm(seed);
    let b = run_storm(seed);
    assert_eq!(a, b, "two identically-seeded runs must render identically");
    if let Ok(path) = std::env::var("AIDE_FAULT_DUMP") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, &a).expect("write AIDE_FAULT_DUMP report");
    }
}

#[test]
fn different_seeds_change_the_fault_pattern() {
    let a = run_storm(fault_seed());
    let b = run_storm(fault_seed() ^ 0xDEAD_BEEF);
    assert_ne!(a, b, "a different seed replays different faults");
}

#[test]
fn transient_faults_never_render_as_content_changes() {
    let (_clock, web, hotlist, history) = quiet_world();
    web.install_fault_plan(storm_plan(fault_seed()));
    let mut w = robust_tracker();
    let report = w.run_serial(&hotlist, &move |u| history.get(u).copied(), &web, None);
    assert!(
        web.stats().faults_injected > 0,
        "the storm actually injected faults"
    );
    assert_eq!(
        report.changed_count(),
        0,
        "no transient fault may be reported as a change: {:?}",
        report
            .entries
            .iter()
            .filter(|e| e.status.is_changed())
            .map(|e| &e.url)
            .collect::<Vec<_>>()
    );
    let html = render_report(&report, &ReportOptions::default());
    assert!(!html.contains("Changed pages"));

    // Every entry that could not be verified is explicitly labeled
    // stale, never silently folded into "unchanged".
    let degraded = report
        .entries
        .iter()
        .filter(|e| matches!(e.status, UrlStatus::Degraded { .. }))
        .count();
    if degraded > 0 {
        assert!(html.contains("Stale pages"));
        assert!(html.contains("<B>stale</B>"));
    }
    assert_eq!(report.net.degraded as usize, degraded);
}

#[test]
fn windowed_outage_degrades_then_recovers() {
    let (clock, web, hotlist, history) = quiet_world();
    let now = clock.now();
    // host1 drops off the network for an hour.
    web.install_fault_plan(FaultPlan::new(fault_seed()).for_host(
        "host1.example.com",
        FaultEpisode::outage(now, now + Duration::hours(1), FaultKind::HostUnreachable),
    ));
    let mut w = robust_tracker();
    let hist = move |u: &str| history.get(u).copied();
    let during = w.run_serial(&hotlist, &hist, &web, None);
    let stale_during = during
        .entries
        .iter()
        .filter(|e| matches!(e.status, UrlStatus::Degraded { .. }))
        .count();
    assert_eq!(stale_during, 4, "all four host1 pages degraded");
    assert_eq!(during.changed_count(), 0);

    // Past the outage window everything verifies again.
    clock.advance(Duration::hours(2));
    let after = w.run_serial(&hotlist, &hist, &web, None);
    let stale_after = after
        .entries
        .iter()
        .filter(|e| matches!(e.status, UrlStatus::Degraded { .. }))
        .count();
    assert_eq!(stale_after, 0, "outage over, no stale entries");
    assert!(after
        .entries
        .iter()
        .all(|e| matches!(e.status, UrlStatus::Unchanged { .. })));
    // Recovery also clears the per-URL degradation counters.
    assert!(hotlist
        .iter()
        .all(|m| w.cache.get(&m.url).map(|r| r.degraded_count) == Some(0)));
}

#[test]
fn breaker_bounds_traffic_to_a_dead_host() {
    let (_clock, web, hotlist, history) = quiet_world();
    web.install_fault_plan(FaultPlan::new(fault_seed()).for_host(
        "host3.example.com",
        FaultEpisode::rate(1.0, FaultKind::ConnectionRefused),
    ));
    let mut w = robust_tracker();
    w.breaker = Some(Arc::new(CircuitBreaker::new(BreakerConfig {
        failure_threshold: 3,
        cooldown: Duration::hours(4),
        max_cooldown: Duration::hours(8),
    })));
    let hist = move |u: &str| history.get(u).copied();
    let report = w.run_serial(&hotlist, &hist, &web, None);
    // The dead host absorbed at most threshold attempts per retry cycle;
    // once open, the remaining URLs there were denied without traffic.
    assert!(report.net.breaker_denied > 0, "{:?}", report.net);
    let dead_traffic = web.server_stats("host3.example.com").unwrap().total();
    assert!(
        dead_traffic <= 3,
        "dead host saw {dead_traffic} requests despite an open circuit"
    );
    // Healthy hosts were checked normally.
    assert!(report
        .entries
        .iter()
        .filter(|e| !e.url.contains("host3"))
        .all(|e| matches!(e.status, UrlStatus::Unchanged { .. })));
}

#[test]
fn retry_accounting_reconciles_with_web_accounting() {
    let (_clock, web, hotlist, history) = quiet_world();
    web.install_fault_plan(storm_plan(fault_seed()));
    let mut w = robust_tracker();
    let report = w.run_serial(&hotlist, &move |u| history.get(u).copied(), &web, None);
    let net = web.stats();
    assert_eq!(
        report.net.net_failures, net.net_errors,
        "all tracker traffic flows through the retry layer, so its \
         failure count must reconcile with the Web's"
    );
    assert_eq!(
        report.net.attempts, net.requests,
        "every attempt the retry layer made is a request the Web saw"
    );
    assert!(report.net.attempts > hotlist.len() as u64);
}

#[test]
fn faults_disabled_is_byte_identical_to_no_fault_layer() {
    // An installed-then-cleared plan (and an empty plan) must leave the
    // Web indistinguishable from one that never had a fault layer.
    let run = |configure: &dyn Fn(&Web)| {
        let (_clock, web, hotlist, history) = quiet_world();
        configure(&web);
        let mut w = W3Newer::new(ThresholdConfig::default());
        let report = w.run_serial(&hotlist, &move |u| history.get(u).copied(), &web, None);
        (
            render_report(&report, &ReportOptions::default()),
            web.stats(),
        )
    };
    let (plain_html, plain_stats) = run(&|_| {});
    let (empty_html, empty_stats) = run(&|web| web.install_fault_plan(FaultPlan::new(9)));
    let (cleared_html, cleared_stats) = run(&|web| {
        web.install_fault_plan(storm_plan(fault_seed()));
        web.clear_fault_plan();
    });
    assert_eq!(plain_html, empty_html);
    assert_eq!(plain_html, cleared_html);
    assert_eq!(plain_stats, empty_stats);
    assert_eq!(plain_stats, cleared_stats);
    assert_eq!(plain_stats.faults_injected, 0);
}
