//! Integration of the implemented future-work features: a power-user
//! deployment where the junk filter, priorities, entity checksums,
//! stored forms and the recursive differ all run against one simulated
//! Web and one snapshot service.

use aide::entities::{EntityChecker, EntityStatus};
use aide::forms::{FormRegistry, FormStatus};
use aide::junk::classify;
use aide::recursive::RecursiveDiffer;
use aide_htmldiff::{Options as DiffOptions, Presentation};
use aide_rcs::repo::MemRepository;
use aide_simweb::http::Request;
use aide_simweb::net::Web;
use aide_simweb::resource::Resource;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};
use std::sync::Arc;

fn setup() -> (Web, Arc<SnapshotService<MemRepository>>, UserId) {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1996, 2, 1, 0, 0, 0));
    let web = Web::new(clock.clone());
    let snapshot = Arc::new(SnapshotService::new(
        MemRepository::new(),
        clock,
        128,
        Duration::hours(8),
    ));
    (web, snapshot, UserId::new("power@att.com"))
}

#[test]
fn junk_filter_suppresses_only_noise_in_mixed_tracking() {
    let (web, _, _) = setup();
    web.set_resource(
        "http://noisy/counter",
        Resource::hit_counter("<HTML><P>Accesses: {HITS}. Content is stable here.</HTML>"),
    )
    .unwrap();
    web.set_page(
        "http://honest/page.html",
        "<HTML><P>Original statement.</HTML>",
        web.clock().now(),
    )
    .unwrap();

    let grab = |url: &str| web.request(&Request::get(url)).unwrap().body;
    let noisy_a = grab("http://noisy/counter");
    let honest_a = grab("http://honest/page.html");

    web.clock().advance(Duration::days(1));
    web.touch_page(
        "http://honest/page.html",
        "<HTML><P>Revised statement entirely rewritten!</HTML>",
        web.clock().now(),
    )
    .unwrap();
    let noisy_b = grab("http://noisy/counter");
    let honest_b = grab("http://honest/page.html");

    assert!(classify(&noisy_a, &noisy_b).junk);
    assert!(!classify(&honest_a, &honest_b).junk);
}

#[test]
fn entity_change_invisible_to_htmldiff_caught_by_checksums() {
    let (web, _, _) = setup();
    let page = r#"<HTML><P>The weather map: <IMG SRC="/map.gif"></HTML>"#;
    web.set_page("http://wx/index.html", page, web.clock().now())
        .unwrap();
    web.set_page("http://wx/map.gif", "GIF-monday", web.clock().now())
        .unwrap();

    let checker = EntityChecker::new(web.clone());
    checker.check_entities("http://wx/index.html", page);

    web.clock().advance(Duration::days(1));
    web.touch_page("http://wx/map.gif", "GIF-tuesday", web.clock().now())
        .unwrap();

    // HtmlDiff sees nothing: the page text is identical.
    let diff = aide_htmldiff::html_diff(page, page, &DiffOptions::default());
    assert!(diff.stats.is_identical());
    // The checksum layer sees the swap.
    let reports = checker.check_entities("http://wx/index.html", page);
    assert_eq!(reports[0].status, EntityStatus::ContentChanged);
}

#[test]
fn stored_form_tracks_post_service_into_archive() {
    let (web, snapshot, user) = setup();
    web.set_resource(
        "http://svc/cgi-bin/report",
        Resource::Cgi {
            template: "<HTML><P>Report for {INPUT}: status nominal.</HTML>".to_string(),
            hits: 0,
        },
    )
    .unwrap();
    let forms = FormRegistry::new(web.clone());
    forms.register("weekly", "http://svc/cgi-bin/report", "dept=ssr");
    let (s, body) = forms.poll("weekly").unwrap();
    assert_eq!(s, FormStatus::Baseline);
    snapshot.remember(&user, "aide-form:weekly", &body).unwrap();

    web.clock().advance(Duration::days(7));
    web.set_resource(
        "http://svc/cgi-bin/report",
        Resource::Cgi {
            template: "<HTML><P>Report for {INPUT}: status degraded, two incidents!</HTML>"
                .to_string(),
            hits: 0,
        },
    )
    .unwrap();
    let (s, body) = forms.poll("weekly").unwrap();
    assert_eq!(s, FormStatus::Changed);
    let out = snapshot
        .diff_since_last(&user, "aide-form:weekly", &body, &DiffOptions::default())
        .unwrap();
    assert!(out.html.contains("degraded"));
    // The POST input itself reached the service.
    assert!(out.html.contains("dept=ssr"));
}

#[test]
fn recursive_diff_with_side_by_side_rendering() {
    let (web, snapshot, user) = setup();
    web.set_page(
        "http://hub/",
        r#"<HTML><A HREF="/child.html">child</A></HTML>"#,
        web.clock().now(),
    )
    .unwrap();
    web.set_page(
        "http://hub/child.html",
        "<HTML><P>Child page, first words.</HTML>",
        web.clock().now(),
    )
    .unwrap();
    let differ = RecursiveDiffer::new(web.clone(), snapshot);
    let opts = DiffOptions {
        presentation: Presentation::SideBySide,
        ..DiffOptions::default()
    };
    differ.diff_hub(&user, "http://hub/", true, &opts).unwrap();
    web.clock().advance(Duration::days(1));
    web.touch_page(
        "http://hub/child.html",
        "<HTML><P>Child page, utterly different content now!</HTML>",
        web.clock().now(),
    )
    .unwrap();
    let sweep = differ.diff_hub(&user, "http://hub/", true, &opts).unwrap();
    assert_eq!(sweep.changed_urls(), vec!["http://hub/child.html"]);
    let html = sweep.render();
    assert!(
        html.contains("<TABLE"),
        "side-by-side options flow through: {html}"
    );
}
